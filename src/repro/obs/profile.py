"""Profiling views over finished trace spans.

The tracer records *what happened*; this module answers *where the
time went*: per-span self time (wall and simulated), top-N hot spans,
and per-(kind, name) aggregates.  Everything operates on plain
:class:`~repro.obs.trace.Span` lists so it works equally on a live
tracer's ``spans`` and on spans re-loaded from JSONL by
``repro.experiments.trace_report``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.obs.trace import Span

__all__ = [
    "SpanTiming",
    "aggregate_spans",
    "profile_report",
    "span_timings",
    "top_spans",
]


@dataclass(frozen=True, slots=True)
class SpanTiming:
    """One span's total and self time (children's time subtracted)."""

    span: Span
    wall_total: float
    wall_self: float
    sim_total: float | None
    sim_self: float | None


def span_timings(spans: Sequence[Span]) -> list[SpanTiming]:
    """Total and self durations for every finished span.

    Self time is total minus the direct children's totals — the time a
    span spent in its own level of the hierarchy (e.g. a round span's
    self time is dispatch overhead around its DHT primitives).
    """
    child_wall: dict[int, float] = defaultdict(float)
    child_sim: dict[int, float] = defaultdict(float)
    for span in spans:
        if span.parent_id is None:
            continue
        child_wall[span.parent_id] += span.wall_duration
        if span.sim_duration is not None:
            child_sim[span.parent_id] += span.sim_duration
    timings = []
    for span in spans:
        wall_total = span.wall_duration
        sim_total = span.sim_duration
        timings.append(
            SpanTiming(
                span=span,
                wall_total=wall_total,
                wall_self=max(0.0, wall_total - child_wall[span.span_id]),
                sim_total=sim_total,
                sim_self=(
                    None
                    if sim_total is None
                    else max(0.0, sim_total - child_sim[span.span_id])
                ),
            )
        )
    return timings


def top_spans(spans: Sequence[Span], n: int = 10) -> list[SpanTiming]:
    """The *n* spans with the largest wall self time, descending."""
    timings = span_timings(spans)
    timings.sort(key=lambda t: t.wall_self, reverse=True)
    return timings[:n]


def aggregate_spans(
    spans: Sequence[Span],
) -> dict[tuple[str, str], dict[str, float]]:
    """Per-(kind, name) aggregate: count, total/mean/max wall seconds."""
    grouped: dict[tuple[str, str], list[float]] = defaultdict(list)
    for span in spans:
        grouped[(span.kind, span.name)].append(span.wall_duration)
    return {
        key: {
            "count": len(durations),
            "wall_total": sum(durations),
            "wall_mean": sum(durations) / len(durations),
            "wall_max": max(durations),
        }
        for key, durations in grouped.items()
    }


def profile_report(spans: Sequence[Span], n: int = 10) -> str:
    """Human-readable profile: top-N self-time spans plus aggregates."""
    if not spans:
        return "no spans recorded"
    lines = [f"Top {n} spans by wall self time"]
    header = (
        f"{'kind':<7} {'name':<18} {'self ms':>9} {'total ms':>9} "
        f"{'sim':>8}  attrs"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for timing in top_spans(spans, n):
        span = timing.span
        sim = "-" if timing.sim_total is None else f"{timing.sim_total:.2f}"
        attrs = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        lines.append(
            f"{span.kind:<7} {span.name:<18} "
            f"{timing.wall_self * 1e3:>9.3f} {timing.wall_total * 1e3:>9.3f} "
            f"{sim:>8}  {attrs[:48]}"
        )
    lines.append("")
    lines.append("Aggregate by span type")
    agg_header = (
        f"{'kind':<7} {'name':<18} {'count':>6} {'total ms':>9} "
        f"{'mean ms':>9} {'max ms':>9}"
    )
    lines.append(agg_header)
    lines.append("-" * len(agg_header))
    aggregates = aggregate_spans(spans)
    for (kind, name), stats in sorted(
        aggregates.items(), key=lambda item: -item[1]["wall_total"]
    ):
        lines.append(
            f"{kind:<7} {name:<18} {stats['count']:>6.0f} "
            f"{stats['wall_total'] * 1e3:>9.3f} "
            f"{stats['wall_mean'] * 1e3:>9.3f} "
            f"{stats['wall_max'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)
