"""One registry over every counter the system keeps.

The cost counters live where the costs are paid —
:class:`~repro.dht.api.DhtStats` on the substrate facade,
:class:`~repro.net.stats.NetworkStats` on the simulated wire, cache
tallies next to the DHT meters — which is right for the hot path but
wrong for experiments, which want *one* ``snapshot()``/``reset()``
surface.  :class:`MetricsRegistry` supplies it: existing stats objects
register as named sources (anything exposing ``snapshot()`` is
adaptable; ``reset()`` is honoured when present), gauges register as
callables evaluated at snapshot time, and the registry's own labeled
:class:`Counter`/:class:`Histogram` instruments carry whatever the
observability plane measures on top (span timings, report tallies).

Snapshot keys are dotted: ``"<source>.<counter>"`` for adapted
sources, the instrument name (plus ``{label=value,...}``) for native
instruments.  ``reset()`` zeroes every resettable source and every
native instrument in one call — the fix for the phase-leak class of
bugs where an experiment resets ``DhtStats`` but forgets the network
counters (or vice versa) and the next phase inherits the residue.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Callable, Mapping
from typing import Any

from repro.common.errors import ReproError

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


def _render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing labeled counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    @property
    def key(self) -> str:
        """The snapshot key, ``name{label=value,...}``."""
        return self.name + _render_labels(self.labels)


class Histogram:
    """A labeled distribution: count/total/min/max plus quantiles.

    Observations are kept sorted (``bisect.insort``) so quantiles are
    exact; the retained list is capped at *max_samples* (oldest-ignored
    reservoir is unnecessary at experiment scale — once full, new
    observations still update count/total/min/max but are not stored).
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_samples", "_max_samples")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, Any],
        max_samples: int = 8192,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self._max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self._max_samples:
            insort(self._samples, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0 <= q <= 1) of retained observations."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        position = min(
            len(self._samples) - 1, int(q * (len(self._samples) - 1) + 0.5)
        )
        return self._samples[position]

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples.clear()

    @property
    def key(self) -> str:
        return self.name + _render_labels(self.labels)


class MetricsRegistry:
    """Labeled counters/histograms plus adapters over existing stats.

    Usage::

        registry = MetricsRegistry.for_index(index)
        before = registry.snapshot()
        index.range_query(region)
        increments = registry.delta(before)   # {"dht.lookups": 9, ...}
        registry.reset()                      # every source, one call
    """

    def __init__(self) -> None:
        self._sources: dict[str, Any] = {}
        self._gauges: dict[str, Callable[[], Mapping[str, float]]] = {}
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, source: Any) -> None:
        """Adapt *source* (must expose ``snapshot() -> mapping``).

        Its keys appear in this registry's snapshot as
        ``"<name>.<key>"``; a ``reset()`` method, when present, is
        called by :meth:`reset`.
        """
        if name in self._sources or name in self._gauges:
            raise ReproError(f"metrics source {name!r} already registered")
        if not callable(getattr(source, "snapshot", None)):
            raise ReproError(
                f"metrics source {name!r} has no snapshot() method"
            )
        self._sources[name] = source

    def register_gauges(
        self, name: str, read: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a read-only gauge group evaluated at snapshot time.

        Gauges describe current state (cache occupancy, tree size);
        :meth:`reset` never touches them.
        """
        if name in self._sources or name in self._gauges:
            raise ReproError(f"metrics source {name!r} already registered")
        self._gauges[name] = read

    def counter(self, name: str, /, **labels: Any) -> Counter:
        """Get or create the native counter ``name{labels}``."""
        key = name + _render_labels(labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, labels)
        return instrument

    def histogram(self, name: str, /, **labels: Any) -> Histogram:
        """Get or create the native histogram ``name{labels}``."""
        key = name + _render_labels(labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, labels)
        return instrument

    @classmethod
    def for_index(cls, index: Any) -> "MetricsRegistry":
        """A registry wired to one index's whole substrate stack.

        Registers the shared :class:`~repro.dht.api.DhtStats` as
        ``dht``, the simulated network's stats (when the substrate
        routes over one) as ``net``, and the client leaf cache (when
        configured) as the ``cache`` gauge group.
        """
        registry = cls()
        registry.register("dht", index.dht.stats)
        layer = index.dht
        while layer is not None:
            network = getattr(layer, "network", None)
            if network is not None:
                registry.register("net", network.stats)
                break
            layer = getattr(layer, "inner", None)
        layer = index.dht
        while layer is not None:
            stats = getattr(layer, "adaptive_stats", None)
            if stats is not None:
                registry.register("adaptive", stats)
                break
            layer = getattr(layer, "inner", None)
        cache = getattr(index, "cache", None)
        if cache is not None:
            registry.register_gauges(
                "cache",
                lambda: {
                    "size": len(cache),
                    "capacity": cache.capacity,
                    "generation": cache.generation,
                },
            )
        return registry

    # ------------------------------------------------------------------
    # The one snapshot()/reset() contract
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Every counter the registry knows, flat, dotted keys."""
        out: dict[str, float] = {}
        for name, source in self._sources.items():
            for key, value in source.snapshot().items():
                out[f"{name}.{key}"] = value
        for name, read in self._gauges.items():
            for key, value in read().items():
                out[f"{name}.{key}"] = value
        for counter in self._counters.values():
            out[counter.key] = counter.value
        for histogram in self._histograms.values():
            out[f"{histogram.key}.count"] = histogram.count
            out[f"{histogram.key}.total"] = histogram.total
        return out

    def delta(self, before: Mapping[str, float]) -> dict[str, float]:
        """Increments of the current snapshot over *before*.

        Keys absent from *before* count from zero; gauge keys are
        included as plain differences (they may go negative).
        """
        after = self.snapshot()
        return {
            key: value - before.get(key, 0)
            for key, value in after.items()
        }

    def reset(self) -> None:
        """Zero every resettable source and native instrument."""
        for source in self._sources.values():
            reset = getattr(source, "reset", None)
            if callable(reset):
                reset()
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    # ------------------------------------------------------------------
    # Tracer integration
    # ------------------------------------------------------------------

    def observe_span(self, span: Any) -> None:
        """Accumulate one finished span's wall time into histograms.

        Wired through ``Tracer(registry=...)``: per-(kind, name) wall
        durations land in ``span_seconds{kind=...,name=...}`` and span
        counts in ``spans{kind=...}``.
        """
        self.histogram(
            "span_seconds", kind=span.kind, name=span.name
        ).observe(span.wall_duration)
        self.counter("spans", kind=span.kind).inc()
