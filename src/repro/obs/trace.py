"""Hierarchical query tracing.

The paper's evaluation attributes every cost — DHT-lookups, record
movement, network rounds — to individual operations.  The counters in
:class:`~repro.dht.api.DhtStats` aggregate those costs; this module
records their *structure*: a :class:`Tracer` produces a tree of
:class:`Span` values mirroring how one query actually executed,

::

    query (range_query / knn / lookup / insert)
    └── plane round          (one per engine wave, both planes)
        └── DHT primitive    (get / get_many / put_many / ...)
            └── network message round   (routed overlays only)

with *events* — point-in-time annotations — attached along the way:
retry attempts and backoff waits from
:class:`~repro.dht.retry.RetryingDht`, injected faults from
:class:`~repro.dht.faults.FaultyDht`, cache hint outcomes from
:class:`~repro.core.lookup.PointLookupCursor`, and per-RPC messages
from :class:`~repro.net.simnet.SimNetwork`.

Design constraints, in order:

1. **Zero cost when disabled.**  Nothing in the hot path ever holds a
   no-op tracer object: a disabled component holds ``None`` and guards
   with one attribute load and one ``is None`` test.  The bench gate in
   ``benchmarks/test_trace_overhead.py`` verifies the disabled path
   stays within noise of the raw engine path.
2. **Deterministic structure.**  Span ids are sequential integers; the
   simulated clock (when one exists) is recorded next to wall time, so
   two traced runs of the same seeded workload produce the same tree
   with the same simulated timings.
3. **Answers never change.**  Tracing observes; it must not reorder,
   skip, or retry anything.  ``tests/test_obs.py`` asserts bit-identical
   query results with tracing on and off.

Spans export to JSONL through a :class:`TraceSink` (streaming) or
:meth:`Tracer.export_jsonl` (after the fact);
``repro.experiments.trace_report`` renders the timeline and critical
path back out of the JSONL.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any, TextIO

from repro.common.errors import ReproError

__all__ = [
    "JsonlTraceSink",
    "Span",
    "TraceSink",
    "Tracer",
]

#: Span kinds, outermost to innermost level of the hierarchy.
SPAN_KINDS = ("query", "update", "round", "dht", "net")


@dataclass(slots=True)
class Span:
    """One timed node of a trace tree.

    ``wall_*`` times come from :func:`time.perf_counter` (seconds);
    ``sim_*`` from the simulated clock when the tracer has one, else
    ``None``.  ``attrs`` are set at open or via
    :meth:`Tracer.annotate`; ``events`` are ``(name, wall_offset,
    attrs)`` point annotations.  ``status`` is ``"ok"`` or ``"error"``
    (the span body raised; the error's repr lands in
    ``attrs["error"]``).
    """

    span_id: int
    parent_id: int | None
    kind: str
    name: str
    wall_start: float
    wall_end: float | None = None
    sim_start: float | None = None
    sim_end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span (0.0 while open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> float | None:
        """Simulated-clock time spent inside the span, when clocked."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one JSONL line per span)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "status": self.status,
            "attrs": self.attrs,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (used by ``trace_report``)."""
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            kind=data["kind"],
            name=data["name"],
            wall_start=data["wall_start"],
            wall_end=data["wall_end"],
            sim_start=data["sim_start"],
            sim_end=data["sim_end"],
            status=data.get("status", "ok"),
            attrs=dict(data.get("attrs", ())),
            events=list(data.get("events", ())),
        )


class TraceSink:
    """Receives each finished span; base class is a discard sink."""

    def emit(self, span: Span) -> None:
        """Called once per span, at close, in completion order."""

    def close(self) -> None:
        """Flush and release any underlying resource."""


class JsonlTraceSink(TraceSink):
    """Stream finished spans to a JSONL file (one span per line)."""

    def __init__(self, target: str | TextIO) -> None:
        if isinstance(target, str):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._file = target
            self._owned = False

    def emit(self, span: Span) -> None:
        self._file.write(json.dumps(span.to_dict()) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owned:
            self._file.close()


class Tracer:
    """Produces the span tree; one instance per traced client.

    *clock* is the simulated :class:`~repro.net.events.EventScheduler`
    whose ``now`` is recorded next to wall time (resolved automatically
    by :meth:`attach` when the substrate routes over a simulated
    network).  *sink* receives each span as it finishes; *keep* retains
    finished spans in :attr:`spans` for in-process inspection (the
    default — turn it off for unbounded streaming runs).  *registry*,
    when given, receives every finished span's timing via
    :meth:`~repro.obs.registry.MetricsRegistry.observe_span` so span
    durations accumulate into labeled histograms.
    """

    def __init__(
        self,
        *,
        clock: Any | None = None,
        sink: TraceSink | None = None,
        keep: bool = True,
        registry: Any | None = None,
    ) -> None:
        self.clock = clock
        self.sink = sink
        self.registry = registry
        self._keep = keep
        self._ids = itertools.count(1)
        self._stack: list[Span] = []
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def _now_sim(self) -> float | None:
        clock = self.clock
        return None if clock is None else clock.now

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent,
            kind=kind,
            name=name,
            wall_start=time.perf_counter(),
            sim_start=self._now_sim(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.status = "error"
            span.attrs.setdefault("error", repr(error))
            raise
        finally:
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted"
            span.wall_end = time.perf_counter()
            span.sim_end = self._now_sim()
            if self._keep:
                self.spans.append(span)
            if self.sink is not None:
                self.sink.emit(span)
            if self.registry is not None:
                self.registry.observe_span(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the current span.

        Dropped silently outside any span — wrappers emit retry/fault
        events unconditionally and a bare (un-spanned) DHT call has no
        tree to hang them on.
        """
        if not self._stack:
            return
        span = self._stack[-1]
        span.events.append(
            {
                "name": name,
                "wall_offset": time.perf_counter() - span.wall_start,
                "attrs": attrs,
            }
        )

    def annotate(self, **attrs: Any) -> None:
        """Merge *attrs* into the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # ------------------------------------------------------------------
    # Component wiring
    # ------------------------------------------------------------------

    def attach(self, dht: Any) -> "Tracer":
        """Point every layer of a substrate stack at this tracer.

        Walks the wrapper chain (``RetryingDht``/``FaultyDht`` expose
        ``inner``) setting each layer's ``tracer`` and, when a layer
        routes over a simulated network, the network's ``tracer`` too.
        The first simulated clock found becomes this tracer's clock
        unless one was set explicitly.  Returns self for chaining.
        """
        layer = dht
        while layer is not None:
            layer.tracer = self
            network = getattr(layer, "network", None)
            if network is not None:
                network.tracer = self
                if self.clock is None:
                    self.clock = network.clock
            layer = getattr(layer, "inner", None)
        return self

    def detach(self, dht: Any) -> None:
        """Undo :meth:`attach` on every layer of the stack."""
        layer = dht
        while layer is not None:
            if getattr(layer, "tracer", None) is self:
                layer.tracer = None
            network = getattr(layer, "network", None)
            if network is not None and getattr(network, "tracer", None) is self:
                network.tracer = None
            layer = getattr(layer, "inner", None)

    # ------------------------------------------------------------------
    # Inspection and export
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished spans with no parent, in completion order."""
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        """Finished direct children of *span*, in completion order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        """Drop retained spans (open spans are unaffected)."""
        self.spans.clear()

    def export_jsonl(self, path: str) -> int:
        """Write every retained span to *path*; returns the count."""
        if self._stack:
            raise ReproError(
                f"cannot export while {len(self._stack)} spans are open"
            )
        sink = JsonlTraceSink(path)
        try:
            for span in self.spans:
                sink.emit(span)
        finally:
            sink.close()
        return len(self.spans)
