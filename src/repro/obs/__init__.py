"""The observability plane: tracing, metrics registry, profiling.

Three pieces, designed to be zero-cost when unused:

* :mod:`repro.obs.trace` — hierarchical spans (query → plane round →
  DHT primitive → network message) with retry/backoff/fault/cache
  annotations, exported to JSONL;
* :mod:`repro.obs.registry` — one labeled ``snapshot()``/``reset()``
  surface over :class:`~repro.dht.api.DhtStats`,
  :class:`~repro.net.stats.NetworkStats`, cache gauges and native
  counters/histograms;
* :mod:`repro.obs.profile` — per-span self-time and top-N reports.

Enable per index with ``IndexConfig(tracing=True)`` or by passing a
:class:`Tracer` to :class:`~repro.core.index.MLightIndex` directly.
"""

from repro.obs.profile import profile_report, span_timings, top_spans
from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.trace import JsonlTraceSink, Span, TraceSink, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Span",
    "TraceSink",
    "Tracer",
    "profile_report",
    "span_timings",
    "top_spans",
]
