"""E15 — the dissemination plane: prefix multicast + continuous queries.

Two measurements over the same m-LIGHT tree:

* **Multicast efficiency** — the same range-query workload executed by
  client fan-out (every branch resolution is an initiator-originated
  message) and by prefix multicast (the initiator sends exactly one
  message; every further resolution originates at a forwarding peer).
  The gate: identical answers, identical DHT-lookup and round meters,
  and the initiator's message count collapsing from O(#branches) to 1.
* **Continuous queries** — a client subscribes to a region, the writer
  drives inserts (splits), deletes (merges), then a crash of a
  subscription-table rendezvous owner on a durable ring with inserts
  during the downtime, restart, and a flush.  The gate: every matching
  insert delivered exactly once — live pushes while the owner is up,
  queued-and-flushed delivery for downtime inserts, no duplicates from
  split re-homing.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.errors import IndexCorruptionError, NodeUnreachableError
from repro.common.geometry import (
    Point,
    Region,
    region_of_label,
)
from repro.core.distributed import DistributedQueryRuntime
from repro.core.index import MLightIndex
from repro.core.naming import naming_function
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.pastry import PastryDht
from repro.experiments.tables import format_table
from repro.mcast import ContinuousQueryPlane, MulticastRuntime, sub_key
from repro.workloads.queries import uniform_range_queries

OVERLAY_FACTORIES = {
    "chord": ChordDht.build,
    "kademlia": KademliaDht.build,
    "pastry": PastryDht.build,
}


@dataclass(frozen=True, slots=True)
class MulticastSample:
    """Fan-out vs multicast over one overlay, summed over the workload."""

    overlay: str
    queries: int
    fanout_initiator_msgs: int  # client-originated resolutions, total
    mcast_initiator_msgs: int  # stats.mcasts delta, total
    lookups_fanout: int
    lookups_mcast: int
    rounds_fanout: int
    rounds_mcast: int
    answers_equal: bool


@dataclass(frozen=True, slots=True)
class ContinuousSample:
    """One end-to-end continuous-query run on a durable ring."""

    inserts: int  # matching inserts issued across all phases
    delivered: int  # pushes that reached the subscriber
    duplicates: int
    missing: int
    invalidations: int  # proactive re-homing notifications received
    queued_down: int  # inserts queued while the rendezvous owner was down
    flushed: int  # queued inserts delivered after restart
    pushes: int  # stats.pushes (includes invalidation traffic)
    exactly_once: bool


def run_multicast_efficiency(
    points: Sequence[Point],
    config: IndexConfig,
    overlays: Sequence[str] = ("chord", "kademlia", "pastry"),
    n_peers: int = 12,
    n_queries: int = 10,
    span: float = 0.3,
    seed: int = 0,
) -> list[MulticastSample]:
    """The fan-out-vs-multicast comparison, one sample per overlay."""
    queries = uniform_range_queries(
        n_queries, span, dims=config.dims, seed=seed
    )
    samples = []
    for overlay in overlays:
        dht = OVERLAY_FACTORIES[overlay](n_peers)
        index = MLightIndex(dht, config)
        for point in points:
            index.insert(point)
        fanout = DistributedQueryRuntime(
            dht, config.dims, config.max_depth
        )
        mcast = MulticastRuntime(dht, config.dims, config.max_depth)
        stats = dht.stats
        fan_msgs = fan_lookups = fan_rounds = 0
        mc_msgs = mc_lookups = mc_rounds = 0
        answers_equal = True
        for query in queries:
            before = stats.snapshot()
            fan_result = fanout.query(query)
            mid = stats.snapshot()
            mc_result = mcast.query(query)
            after = stats.snapshot()
            # Fan-out: every owner resolution is a client-originated
            # message.  Multicast: only the ``mcasts`` frame is.
            fan_msgs += mid["lookups"] - before["lookups"]
            mc_msgs += after["mcasts"] - mid["mcasts"]
            fan_lookups += mid["lookups"] - before["lookups"]
            mc_lookups += after["lookups"] - mid["lookups"]
            fan_rounds += fan_result.rounds
            mc_rounds += mc_result.rounds
            answers_equal = answers_equal and sorted(
                r.key for r in fan_result.records
            ) == sorted(r.key for r in mc_result.records)
        samples.append(
            MulticastSample(
                overlay=overlay,
                queries=len(queries),
                fanout_initiator_msgs=fan_msgs,
                mcast_initiator_msgs=mc_msgs,
                lookups_fanout=fan_lookups,
                lookups_mcast=mc_lookups,
                rounds_fanout=fan_rounds,
                rounds_mcast=mc_rounds,
                answers_equal=answers_equal,
            )
        )
    return samples


def run_continuous_query(
    points: Sequence[Point],
    config: IndexConfig,
    n_peers: int = 10,
    seed: int = 0,
    region: Region | None = None,
) -> ContinuousSample:
    """Subscribe, churn the tree, crash-restart a rendezvous owner."""
    if region is None:
        region = Region(
            (0.2,) * config.dims, (0.7,) * config.dims
        )
    base = list(points[: max(len(points) // 3, 40)])
    live_batch = list(points[len(base): 2 * len(base)])
    with tempfile.TemporaryDirectory() as tmp:
        dht = ChordDht.build(n_peers, durability="log", data_dir=tmp)
        index = MLightIndex(dht, config)
        for point in base:
            index.insert(point)
        plane = ContinuousQueryPlane(index)
        subscriber = plane.subscribe(region)
        expected: list[Point] = []
        # Phase 1 — live inserts driving splits.
        for point in live_batch:
            index.insert(point)
            if region.contains_point_closed(point):
                expected.append(point)
        # Phase 2 — deletes driving merges (and proactive
        # invalidations at the subscriber).
        for point in live_batch[: int(len(live_batch) * 0.8)]:
            index.delete(point)
        # Phase 3 — crash the rendezvous owner of a covered leaf and
        # insert inside that leaf during the downtime.
        queued_down = 0
        victim = None
        for label in sorted(plane.covered):
            cell = region_of_label(label, config.dims)
            mid_point = tuple(
                min(max((lo + hi) / 2, 0.2001), 0.6999)
                for lo, hi in zip(cell.lows, cell.highs)
            )
            if not cell.contains_point(mid_point):
                continue
            candidate = dht.peer_of(
                sub_key(naming_function(label, config.dims))
            )
            dht.fail(candidate)
            try:
                index.insert(mid_point)
            except (NodeUnreachableError, IndexCorruptionError):
                # The victim also owned a bucket on the insert path
                # (unreachable on a static ring, a re-homed miss on
                # Chord) — restore it and try the next covered leaf.
                dht.restart(candidate)
                continue
            expected.append(mid_point)
            if plane.pending:
                queued_down = len(plane.pending)
                victim = candidate
                break
            dht.restart(candidate)
        # Phase 4 — restart and flush: downtime inserts delivered
        # exactly once from the replayed durable table.
        flushed = 0
        if victim is not None:
            dht.restart(victim)
            flushed = plane.flush_pending()
        delivered = subscriber.delivered_keys
        counts = {key: delivered.count(key) for key in set(delivered)}
        duplicates = sum(c - 1 for c in counts.values() if c > 1)
        missing = sum(1 for p in expected if counts.get(p, 0) == 0)
        return ContinuousSample(
            inserts=len(expected),
            delivered=len(delivered),
            duplicates=duplicates,
            missing=missing,
            invalidations=len(subscriber.invalidations),
            queued_down=queued_down,
            flushed=flushed,
            pushes=dht.stats.pushes,
            exactly_once=(duplicates == 0 and missing == 0),
        )


def render_multicast(samples: list[MulticastSample]) -> str:
    headers = [
        "overlay", "queries", "fan-out init msgs", "mcast init msgs",
        "lookups (fan/mc)", "rounds (fan/mc)", "answers equal",
    ]
    rows = [
        [
            s.overlay, s.queries, s.fanout_initiator_msgs,
            s.mcast_initiator_msgs,
            f"{s.lookups_fanout}/{s.lookups_mcast}",
            f"{s.rounds_fanout}/{s.rounds_mcast}",
            s.answers_equal,
        ]
        for s in samples
    ]
    return format_table(
        headers, rows,
        title="E15a: prefix multicast vs client fan-out",
    )


def render_continuous(sample: ContinuousSample) -> str:
    headers = [
        "matching inserts", "delivered", "dupes", "missing",
        "invalidations", "queued down", "flushed", "pushes",
        "exactly once",
    ]
    rows = [[
        sample.inserts, sample.delivered, sample.duplicates,
        sample.missing, sample.invalidations, sample.queued_down,
        sample.flushed, sample.pushes, sample.exactly_once,
    ]]
    return format_table(
        headers, rows,
        title="E15b: continuous query through churn and crash-restart",
    )
