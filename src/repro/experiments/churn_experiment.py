"""E10 — index availability under churn, by replication factor.

The paper runs over Bamboo for robustness but does not quantify what
the index loses under churn.  This experiment does: an m-LIGHT tree on
a Chord ring with DHash-style successor replication; a burst of peer
crashes (with stabilization and replica repair between them); and the
*recall* of a fixed set of range queries afterwards — the fraction of
the pre-churn answer still returned.

Expected shape: recall grows with the replication factor and reaches
1.0 once the factor exceeds the largest number of simultaneously failed
consecutive replica holders; without replication, recall drops roughly
with the fraction of peers crashed (their buckets vanish wholesale).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.common.rng import make_rng
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.experiments.tables import format_table
from repro.workloads.queries import uniform_range_queries


@dataclass(frozen=True, slots=True)
class ChurnAvailabilitySample:
    """Post-churn recall at one replication factor."""

    replication: int
    crashes: int
    recall: float
    queries_failed: int


def run_churn_availability(
    points: Sequence[Point],
    config: IndexConfig,
    replication_factors: Sequence[int] = (1, 2, 3),
    n_peers: int = 16,
    n_crashes: int = 3,
    n_queries: int = 12,
    span: float = 0.1,
    seed: int = 0,
) -> list[ChurnAvailabilitySample]:
    """Crash *n_crashes* peers under each replication factor."""
    queries = uniform_range_queries(
        n_queries, span, dims=config.dims, seed=seed
    )
    samples = []
    for replication in replication_factors:
        dht = ChordDht.build(n_peers, replication=replication)
        index = MLightIndex(dht, config)
        for point in points:
            index.insert(point)
        truth = [
            {record.key for record in index.range_query(query).records}
            for query in queries
        ]
        rng = make_rng(seed + 1)  # same crash victims for every factor
        for _ in range(n_crashes):
            victims = dht.peers()
            dht.fail(victims[rng.randrange(len(victims))])
            dht.stabilize_all(3)
            dht.repair_replicas()

        matched = 0
        total = 0
        failed = 0
        for query, expected in zip(queries, truth):
            try:
                got = {
                    record.key
                    for record in index.range_query(query).records
                }
            except ReproError:
                # Lost buckets can leave the tree unresolvable along
                # some paths; the query fails outright and contributes
                # zero recall for its expected answers.
                failed += 1
                total += len(expected)
                continue
            matched += len(got & expected)
            total += len(expected)
        recall = matched / total if total else 1.0
        samples.append(
            ChurnAvailabilitySample(
                replication=replication,
                crashes=n_crashes,
                recall=recall,
                queries_failed=failed,
            )
        )
    return samples


def render(samples: list[ChurnAvailabilitySample]) -> str:
    headers = ["replication", "crashes", "recall", "queries failed"]
    rows = [
        [s.replication, s.crashes, s.recall, s.queries_failed]
        for s in samples
    ]
    return format_table(
        headers, rows, title="E10: availability under churn"
    )
