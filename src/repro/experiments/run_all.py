"""Regenerate every evaluation table.

Usage::

    python -m repro.experiments.run_all            # reduced scale, ~1-2 min
    python -m repro.experiments.run_all --full     # paper scale (123,593 pts)
    python -m repro.experiments.run_all --size 50000

Prints the Fig. 5/6/7 tables and the ablations to stdout; pass
``--csv-dir results/`` to also dump CSV files.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.config import IndexConfig
from repro.datasets.northeast import NE_CARDINALITY, northeast_surrogate
from repro.experiments import (
    ablation,
    charts,
    churn_experiment,
    fault_experiment,
    mcast_experiment,
    restart_experiment,
    fig5,
    fig6,
    fig7,
    mixed_workload,
    scaling,
    skew_experiment,
)
from repro.experiments.tables import save_csv
from repro.workloads.queries import point_queries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=20_000,
        help="dataset cardinality (default 20000)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help=f"use the paper's full cardinality ({NE_CARDINALITY})",
    )
    parser.add_argument(
        "--queries", type=int, default=10,
        help="range queries per span (default 10)",
    )
    parser.add_argument("--csv-dir", default=None)
    parser.add_argument(
        "--charts", action="store_true",
        help="also render ASCII charts of each figure",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    size = NE_CARDINALITY if args.full else args.size
    config = IndexConfig(
        dims=2, max_depth=28, split_threshold=100,
        merge_threshold=50, expected_load=70,
    )
    print(f"dataset: NE surrogate, {size} points; D={config.max_depth}")
    points = northeast_surrogate(size)

    started = time.time()
    print("\n=== Figs. 5a/5b: maintenance cost vs data size ===")
    datasize = fig5.run_datasize_sweep(points, config)
    print(fig5.render(datasize, "data size"))
    if args.charts:
        print()
        print(charts.chart_maintenance(datasize, "lookups"))
        print()
        print(charts.chart_maintenance(datasize, "moved"))

    print("\n=== Figs. 5c/5d: maintenance cost vs theta_split ===")
    thresholds = fig5.run_threshold_sweep(points, config)
    print(fig5.render(thresholds, "theta_split"))

    print("\n=== Figs. 6a/6b: storage load balance ===")
    balance = fig6.run_loadbalance_experiment(points, config)
    print(fig6.render(balance))
    if args.charts:
        print()
        print(charts.chart_loadbalance(balance, "empty"))

    print("\n=== Figs. 7a/7b: range-query performance ===")
    ranges = fig7.run_rangequery_experiment(
        points, config, queries_per_span=args.queries, seed=args.seed
    )
    print(fig7.render(ranges))
    if args.charts:
        print()
        print(charts.chart_rangequery(ranges, "bandwidth"))
        print()
        print(charts.chart_rangequery(ranges, "latency"))

    print("\n=== Ablation A1: naming function ===")
    small = points[: min(len(points), 10_000)]
    print(ablation.render(
        ablation.run_naming_ablation(small, config), "naming function"
    ))

    print("\n=== Ablation A2: lookup search strategy ===")
    keys = point_queries(small, 200, seed=args.seed)
    print(ablation.render(
        ablation.run_lookup_ablation(small, keys, config), "lookup search"
    ))

    print("\n=== Ablation A3: DHT substrate swap ===")
    tiny = points[: min(len(points), 1_500)]
    print(ablation.render(
        ablation.run_substrate_ablation(tiny, config), "substrate swap"
    ))

    print("\n=== Ablation A4: bulk load vs incremental ===")
    print(ablation.render(
        ablation.run_bulkload_ablation(small, config),
        "bulk load vs incremental",
    ))

    print("\n=== Ablation A5: client leaf cache ===")
    print(ablation.render(
        ablation.run_cache_ablation(small, keys, config),
        "client leaf cache",
    ))

    print("\n=== Extension E9: scaling with dimensionality ===")
    print(scaling.render(
        scaling.run_dimensionality_sweep(min(3000, len(points)), config)
    ))

    print("\n=== Extension E10: availability under churn ===")
    print(churn_experiment.render(
        churn_experiment.run_churn_availability(tiny, config)
    ))

    print("\n=== Extension E11: mixed insert/delete maintenance ===")
    print(mixed_workload.render(
        mixed_workload.run_mixed_workload(small, config, seed=args.seed)
    ))

    print("\n=== Extension E12: recall and retry cost vs fault rate ===")
    print(fault_experiment.render(
        fault_experiment.run_fault_recall(tiny, config, seed=args.seed)
    ))

    print("\n=== Extension E13: skewed reads and the adaptive plane ===")
    print(skew_experiment.render(
        skew_experiment.run_skew_experiment(small, config, seed=args.seed)
    ))

    print("\n=== Extension E14: crash-restart recovery ===")
    print(restart_experiment.render(
        restart_experiment.run_restart_recovery(
            tiny, config, seed=args.seed
        )
    ))

    print("\n=== Extension E15: prefix multicast + continuous queries ===")
    print(mcast_experiment.render_multicast(
        mcast_experiment.run_multicast_efficiency(
            tiny, config, seed=args.seed
        )
    ))
    print(mcast_experiment.render_continuous(
        mcast_experiment.run_continuous_query(
            tiny, config, seed=args.seed
        )
    ))

    if args.csv_dir:
        for entry in datasize:
            save_csv(
                f"{args.csv_dir}/fig5_datasize_{entry.scheme}.csv",
                ["data_size", "lookups", "records_moved"],
                list(zip(entry.xs, entry.lookups, entry.records_moved)),
            )
        for entry in ranges:
            save_csv(
                f"{args.csv_dir}/fig7_{entry.variant}.csv",
                ["span", "bandwidth", "latency"],
                list(zip(entry.spans, entry.bandwidth, entry.latency)),
            )
    print(f"\ndone in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
