"""Fig. 7 — range-query performance.

Builds each index over the dataset, then runs batches of uniformly
placed rectangles per *range span* (rectangle area) and reports the two
measures of Section 7.4 per query: bandwidth (number of DHT-lookups)
and latency (rounds of DHT-lookups).  m-LIGHT appears three times:
basic, parallel-2 and parallel-4.

Expected shape (paper): DST's bandwidth an order of magnitude above
everyone (its virtual depth D fragments ranges); m-LIGHT basic the most
bandwidth-efficient; the parallel variants spend more bandwidth to cut
latency; DST latency lowest for tiny ranges but growing steeply with
span as saturated nodes force descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.common.rng import derive_seed
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table
from repro.workloads.queries import uniform_range_queries

#: (display name, scheme, lookahead) rows of Fig. 7.
FIG7_VARIANTS = (
    ("mlight-basic", "mlight", 1),
    ("mlight-parallel-2", "mlight", 2),
    ("mlight-parallel-4", "mlight", 4),
    ("pht", "pht", None),
    ("dst", "dst", None),
)

DEFAULT_SPANS = (0.05, 0.1, 0.2, 0.4, 0.6)


@dataclass(frozen=True, slots=True)
class RangeQuerySeries:
    """One curve: mean per-query costs by range span."""

    variant: str
    spans: tuple[float, ...]
    bandwidth: tuple[float, ...]
    latency: tuple[float, ...]


def run_rangequery_experiment(
    points: Sequence[Point],
    config: IndexConfig,
    spans: Sequence[float] = DEFAULT_SPANS,
    queries_per_span: int = 10,
    seed: int = 0,
) -> list[RangeQuerySeries]:
    """Reproduce Figs. 7a/7b over *points*."""
    # One index per scheme, reused across spans (the workload is
    # read-only).  m-LIGHT variants share a single index instance.
    indexes: dict[str, object] = {}
    for _, scheme, _ in FIG7_VARIANTS:
        if scheme not in indexes:
            index = build_index(scheme, config)
            for point in points:
                index.insert(point)
            indexes[scheme] = index

    workloads = {
        span: uniform_range_queries(
            queries_per_span,
            span,
            dims=config.dims,
            seed=derive_seed(seed, "fig7", span),
        )
        for span in spans
    }

    series = []
    for variant, scheme, lookahead in FIG7_VARIANTS:
        index = indexes[scheme]
        bandwidth: list[float] = []
        latency: list[float] = []
        for span in spans:
            total_lookups = 0
            total_rounds = 0
            for query in workloads[span]:
                if lookahead is None:
                    result = index.range_query(query)
                else:
                    result = index.range_query(query, lookahead=lookahead)
                total_lookups += result.lookups
                total_rounds += result.rounds
            count = len(workloads[span])
            bandwidth.append(total_lookups / count)
            latency.append(total_rounds / count)
        series.append(
            RangeQuerySeries(
                variant, tuple(spans), tuple(bandwidth), tuple(latency)
            )
        )
    return series


def render(series: list[RangeQuerySeries]) -> str:
    """Figs. 7a/7b as tables: rows = spans, columns = variants."""
    spans = series[0].spans
    headers = ["range span"] + [entry.variant for entry in series]
    bandwidth_rows = [
        [span] + [entry.bandwidth[position] for entry in series]
        for position, span in enumerate(spans)
    ]
    latency_rows = [
        [span] + [entry.latency[position] for entry in series]
        for position, span in enumerate(spans)
    ]
    return (
        format_table(
            headers, bandwidth_rows,
            title="Bandwidth (# of DHT-lookups per query)",
        )
        + "\n\n"
        + format_table(
            headers, latency_rows,
            title="Latency (rounds of DHT-lookups per query)",
        )
    )
