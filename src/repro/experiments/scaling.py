"""E9 — scaling with dimensionality.

The paper develops every algorithm for general m and evaluates at
m = 2.  This experiment exercises the claim "all the algorithms
presented can be extended to an m-dimensional space in a natural way":
the same workload at m = 1..4, measuring lookup probes (should stay
O(log D), independent of m), range-query costs (grow with m — boundary
cells multiply), and tree size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.rng import derive_seed
from repro.datasets.synthetic import uniform_points
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table
from repro.workloads.queries import point_queries, uniform_range_queries


@dataclass(frozen=True, slots=True)
class DimensionalitySample:
    """Costs of the standard workload at one dimensionality."""

    dims: int
    tree_size: int
    mean_lookup_probes: float
    mean_query_lookups: float
    mean_query_rounds: float


def run_dimensionality_sweep(
    n_points: int,
    config: IndexConfig,
    dims_list: Sequence[int] = (1, 2, 3, 4),
    span: float = 0.05,
    n_queries: int = 10,
    seed: int = 0,
) -> list[DimensionalitySample]:
    """Uniform data, fixed-volume queries, at each dimensionality."""
    samples = []
    for dims in dims_list:
        swept = replace(config, dims=dims)
        index = build_index("mlight", swept)
        points = uniform_points(
            n_points, dims=dims, seed=derive_seed(seed, "points", dims)
        )
        for point in points:
            index.insert(point)

        keys = point_queries(
            points, 50, seed=derive_seed(seed, "lookups", dims)
        )
        probes = sum(index.lookup(key).lookups for key in keys) / len(keys)

        queries = uniform_range_queries(
            n_queries, span, dims=dims,
            seed=derive_seed(seed, "queries", dims),
        )
        lookups = 0
        rounds = 0
        for query in queries:
            result = index.range_query(query)
            lookups += result.lookups
            rounds += result.rounds
        samples.append(
            DimensionalitySample(
                dims=dims,
                tree_size=index.tree_size(),
                mean_lookup_probes=probes,
                mean_query_lookups=lookups / n_queries,
                mean_query_rounds=rounds / n_queries,
            )
        )
    return samples


def render(samples: list[DimensionalitySample]) -> str:
    headers = [
        "dims", "tree size", "lookup probes",
        "query lookups", "query rounds",
    ]
    rows = [
        [
            sample.dims,
            sample.tree_size,
            sample.mean_lookup_probes,
            sample.mean_query_lookups,
            sample.mean_query_rounds,
        ]
        for sample in samples
    ]
    return format_table(
        headers, rows, title="E9: scaling with dimensionality"
    )
