"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            header.ljust(widths[column])
            for column, header in enumerate(headers)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(
                cell.rjust(widths[column]) for column, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def save_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write the same table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
