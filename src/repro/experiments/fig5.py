"""Fig. 5 — index maintenance cost.

Figs. 5a/5b: insert the dataset progressively and report cumulative
DHT-lookup and data-movement cost at increasing data sizes, for
m-LIGHT, PHT and DST.  Figs. 5c/5d: insert the full dataset once per
``theta_split`` value and report the totals.

Expected shape (paper): all curves linear in data size; DST an order
of magnitude above the others (replication); m-LIGHT ~40% below PHT;
both measures largely insensitive to ``theta_split`` except DST's
movement, which falls as smaller thresholds saturate its internal
nodes earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.experiments.harness import (
    build_index,
    default_sample_points,
    progressive_insert,
)
from repro.experiments.tables import format_table

#: The schemes Fig. 5 compares.
FIG5_SCHEMES = ("mlight", "pht", "dst")


@dataclass(frozen=True, slots=True)
class MaintenanceSeries:
    """One curve: cumulative costs per sampled x value."""

    scheme: str
    xs: tuple[int, ...]
    lookups: tuple[int, ...]
    records_moved: tuple[int, ...]


def run_datasize_sweep(
    points: Sequence[Point],
    config: IndexConfig,
    samples: int = 6,
    schemes: Sequence[str] = FIG5_SCHEMES,
) -> list[MaintenanceSeries]:
    """Figs. 5a/5b: cumulative maintenance cost vs data size."""
    sample_at = default_sample_points(len(points), samples)
    series = []
    for scheme in schemes:
        index = build_index(scheme, config)
        recorded = progressive_insert(index, points, sample_at)
        series.append(
            MaintenanceSeries(
                scheme,
                tuple(sample.inserted for sample in recorded),
                tuple(sample.lookups for sample in recorded),
                tuple(sample.records_moved for sample in recorded),
            )
        )
    return series


def run_threshold_sweep(
    points: Sequence[Point],
    config: IndexConfig,
    thresholds: Sequence[int] = (50, 100, 300, 600, 900),
    schemes: Sequence[str] = FIG5_SCHEMES,
) -> list[MaintenanceSeries]:
    """Figs. 5c/5d: total maintenance cost vs ``theta_split``.

    DST's saturation cap follows ``theta_split``, as in the paper's
    setup, which produces the Fig. 5d dip at small thresholds.
    """
    series = []
    for scheme in schemes:
        xs: list[int] = []
        lookups: list[int] = []
        moved: list[int] = []
        for threshold in thresholds:
            swept = replace(
                config,
                split_threshold=threshold,
                merge_threshold=threshold // 2,
            )
            index = build_index(scheme, swept)
            for point in points:
                index.insert(point)
            stats = index.dht.stats
            xs.append(threshold)
            lookups.append(stats.lookups)
            moved.append(stats.records_moved)
        series.append(
            MaintenanceSeries(scheme, tuple(xs), tuple(lookups), tuple(moved))
        )
    return series


def render(series: list[MaintenanceSeries], x_name: str) -> str:
    """Two tables (5a/5b or 5c/5d): lookups and movement per scheme."""
    xs = series[0].xs
    headers = [x_name] + [entry.scheme for entry in series]
    lookup_rows = [
        [x] + [entry.lookups[position] for entry in series]
        for position, x in enumerate(xs)
    ]
    moved_rows = [
        [x] + [entry.records_moved[position] for entry in series]
        for position, x in enumerate(xs)
    ]
    return (
        format_table(headers, lookup_rows, title="DHT-lookup cost")
        + "\n\n"
        + format_table(headers, moved_rows, title="Data-movement cost")
    )
