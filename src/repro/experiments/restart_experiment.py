"""E14 — crash-restart recovery from durable per-peer storage.

E10/E12 quantify what churn costs an index whose peers lose their
state on a crash.  This experiment measures what the durability plane
(:mod:`repro.dht.durable`) buys back: an m-LIGHT tree on a Chord ring,
a crash burst drawn by :func:`repro.dht.churn.run_churn`, a trickle of
inserts while the victims are down, then :meth:`repro.dht.api.Dht.
restart` replaying each victim's durable log and reconciling with the
live ring.

Expected shape: while the victims are down recall degrades exactly as
in E10 (replication=1: their buckets are unreachable); after restart
recall returns to 1.0 **and** the repair traffic is proportional to the
keys whose ownership moved while the peer was down (the inserts that
landed on its neighbours), not to the size of its store — with nothing
written during the outage, restart moves zero bytes.  That is the
restart analogue of the paper's Theorem 5 locality argument: recovery
work tracks ownership churn, never data size.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.dht.api import request_wire_size
from repro.dht.chord import ChordDht
from repro.dht.churn import run_churn
from repro.core.index import MLightIndex
from repro.experiments.tables import format_table
from repro.workloads.queries import uniform_range_queries


@dataclass(frozen=True, slots=True)
class RestartSample:
    """Recovery outcome for one (durability, downtime-writes) cell."""

    durability: str  # backend kind, or "none" (rejoin empty)
    crashes: int
    inserts_down: int  # points inserted while the victims were down
    recall_down: float  # recall with the victims down
    recall_after: float  # recall after every victim came back
    replayed: int  # keys rebuilt from local durable logs
    repaired: int  # keys moved over the wire (reconciled + re-homed)
    repair_bytes: int  # wire bytes of that repair traffic
    store_keys: int  # distinct keys stored ring-wide after recovery
    store_bytes: int  # wire size of the whole store (repair bound)


def _recall(index: MLightIndex, queries, truth) -> float:
    matched = 0
    total = 0
    for query, expected in zip(queries, truth):
        try:
            got = {
                record.key
                for record in index.range_query(query).records
            }
        except ReproError:
            # Unreachable buckets can make a query fail outright; it
            # contributes zero recall for its expected answers.
            total += len(expected)
            continue
        matched += len(got & expected)
        total += len(expected)
    return matched / total if total else 1.0


def run_restart_recovery(
    points: Sequence[Point],
    config: IndexConfig,
    durabilities: Sequence[str | None] = (None, "log"),
    inserts_down: Sequence[int] = (0, 500),
    n_peers: int = 16,
    n_crashes: int = 3,
    n_queries: int = 12,
    span: float = 0.1,
    seed: int = 0,
) -> list[RestartSample]:
    """Crash, optionally write during the outage, restart, measure.

    Every cell crashes the same victims (the ``run_churn`` schedule is
    seed-deterministic), holds out the last ``max(inserts_down)``
    points as the downtime writes, and then recovers: durable cells
    via :meth:`~repro.dht.api.Dht.restart`, the ``None`` baseline by
    rejoining the victims empty — routing comes back either way, lost
    state only with a durable backend.
    """
    # Clamp the downtime batch so tiny runs still leave a real base
    # tree to crash (the CLI smoke-tests this at a few hundred points).
    inserts_down = tuple(
        min(n, len(points) // 4) for n in inserts_down
    )
    held_out = max(inserts_down, default=0)
    base_points = points[: len(points) - held_out]
    down_points = points[len(points) - held_out:]
    queries = uniform_range_queries(
        n_queries, span, dims=config.dims, seed=seed
    )
    samples = []
    for durability in durabilities:
        for n_down_writes in inserts_down:
            dht = ChordDht.build(n_peers, durability=durability)
            index = MLightIndex(dht, config)
            for point in base_points:
                index.insert(point)
            truth = [
                {record.key for record in index.range_query(query).records}
                for query in queries
            ]
            report = run_churn(
                dht, n_crashes,
                join_weight=0.0, leave_weight=0.0, fail_weight=1.0,
                min_peers=n_peers - n_crashes - 1, seed=seed,
            )
            victims = [event.peer for event in report.events]
            for point in down_points[:n_down_writes]:
                try:
                    index.insert(point)
                except ReproError:
                    # A lost interior node can make an insert path
                    # unresolvable; skipped writes simply don't add to
                    # the reconciliation bill.
                    continue
            recall_down = _recall(index, queries, truth)
            dht.stats.reset()
            for victim in victims:
                if durability is None:
                    dht.join(victim)
                else:
                    dht.restart(victim)
                dht.stabilize_all(2)
            recall_after = _recall(index, queries, truth)
            stats = dht.stats
            store_bytes = sum(
                request_wire_size(key, value)
                for key, value in dht.items()
            )
            samples.append(
                RestartSample(
                    durability=durability or "none",
                    crashes=len(victims),
                    inserts_down=n_down_writes,
                    recall_down=recall_down,
                    recall_after=recall_after,
                    replayed=stats.restart_replayed,
                    repaired=(
                        stats.restart_reconciled + stats.restart_rehomed
                    ),
                    repair_bytes=stats.restart_repair_bytes,
                    store_keys=dht.key_count(),
                    store_bytes=store_bytes,
                )
            )
    return samples


def render(samples: list[RestartSample]) -> str:
    headers = [
        "durability", "crashes", "inserts down", "recall down",
        "recall after", "replayed", "repaired", "repair bytes",
        "store keys",
    ]
    rows = [
        [
            s.durability, s.crashes, s.inserts_down, s.recall_down,
            s.recall_after, s.replayed, s.repaired, s.repair_bytes,
            s.store_keys,
        ]
        for s in samples
    ]
    return format_table(
        headers, rows, title="E14: crash-restart recovery"
    )
