"""Self-checking markdown report generator.

Runs the full evaluation at a chosen scale and emits a markdown report
in the style of ``EXPERIMENTS.md``, with each paper claim *verified
programmatically* and stamped ``reproduced`` / ``NOT reproduced``.
Useful for checking that code changes keep every qualitative result
intact at a scale larger than the test suite's.

Usage::

    python -m repro.experiments.report --size 20000 -o report.md
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.datasets.northeast import northeast_surrogate
from repro.experiments import fig5, fig6, fig7


def _verdict(ok: bool) -> str:
    return "**reproduced**" if ok else "**NOT reproduced**"


def check_fig5(series: list[fig5.MaintenanceSeries]) -> list[tuple[str, bool]]:
    """The Fig. 5 claims as (description, holds?) pairs."""
    by_name = {entry.scheme: entry for entry in series}
    mlight = by_name["mlight"]
    pht = by_name["pht"]
    dst = by_name["dst"]
    checks = [
        (
            "cumulative costs grow monotonically (linear curves)",
            all(
                list(entry.lookups) == sorted(entry.lookups)
                for entry in series
            ),
        ),
        (
            "m-LIGHT spends fewer DHT-lookups than PHT",
            mlight.lookups[-1] < pht.lookups[-1],
        ),
        (
            "m-LIGHT saves >=20% of PHT's maintenance lookups "
            "(paper: ~40%)",
            mlight.lookups[-1] < 0.8 * pht.lookups[-1],
        ),
        (
            "DST is >=5x PHT in lookups (order of magnitude)",
            dst.lookups[-1] > 5 * pht.lookups[-1],
        ),
        (
            "DST is >=5x PHT in data movement",
            dst.records_moved[-1] > 5 * pht.records_moved[-1],
        ),
    ]
    return checks


def check_fig6(series: list[fig6.LoadBalanceSeries]) -> list[tuple[str, bool]]:
    by_name = {entry.strategy: entry for entry in series}
    threshold = by_name["threshold"].samples[-1]
    data_aware = by_name["data-aware"].samples[-1]
    return [
        (
            "trees of comparable size under epsilon=0.7*theta pairing",
            abs(threshold.tree_size - data_aware.tree_size)
            <= 0.15 * threshold.tree_size,
        ),
        (
            "data-aware splitting yields fewer empty buckets",
            data_aware.empty_fraction <= threshold.empty_fraction,
        ),
        (
            "data-aware bucket-load variance not worse",
            data_aware.bucket_variance
            <= 1.1 * threshold.bucket_variance,
        ),
    ]


def check_fig7(series: list[fig7.RangeQuerySeries]) -> list[tuple[str, bool]]:
    by_name = {entry.variant: entry for entry in series}
    basic = by_name["mlight-basic"]
    par2 = by_name["mlight-parallel-2"]
    par4 = by_name["mlight-parallel-4"]
    pht = by_name["pht"]
    dst = by_name["dst"]
    positions = range(len(basic.spans))
    return [
        (
            "m-LIGHT basic is the most bandwidth-efficient",
            all(
                basic.bandwidth[i] <= min(par2.bandwidth[i],
                                          pht.bandwidth[i])
                for i in positions
            ),
        ),
        (
            "DST bandwidth >=5x m-LIGHT basic at every span",
            all(
                dst.bandwidth[i] > 5 * basic.bandwidth[i]
                for i in positions
            ),
        ),
        (
            "latency ordering parallel-4 <= parallel-2 <= basic <= PHT",
            all(
                par4.latency[i] <= par2.latency[i]
                <= basic.latency[i] <= pht.latency[i]
                for i in positions
            ),
        ),
        (
            "DST latency best at the smallest span",
            dst.latency[0] <= basic.latency[0],
        ),
        (
            "DST latency degrades as the span grows",
            dst.latency[-1] > dst.latency[0],
        ),
    ]


def generate_report(
    points: Sequence[Point],
    config: IndexConfig,
    queries_per_span: int = 10,
    seed: int = 0,
) -> str:
    """Run Figs. 5-7 over *points* and return the markdown report."""
    sections: list[str] = [
        "# m-LIGHT reproduction report",
        "",
        f"dataset: {len(points)} points; D={config.max_depth}, "
        f"theta={config.split_threshold}, eps={config.expected_load}",
        "",
    ]

    datasize = fig5.run_datasize_sweep(points, config, samples=4)
    sections.append("## Fig. 5a/5b — maintenance vs data size\n")
    sections.append("```\n" + fig5.render(datasize, "data size") + "\n```\n")
    for description, ok in check_fig5(datasize):
        sections.append(f"- {description}: {_verdict(ok)}")
    sections.append("")

    balance = fig6.run_loadbalance_experiment(points, config, n_samples=4)
    sections.append("## Fig. 6a/6b — load balance\n")
    sections.append("```\n" + fig6.render(balance) + "\n```\n")
    for description, ok in check_fig6(balance):
        sections.append(f"- {description}: {_verdict(ok)}")
    sections.append("")

    ranges = fig7.run_rangequery_experiment(
        points, config, queries_per_span=queries_per_span, seed=seed
    )
    sections.append("## Fig. 7a/7b — range queries\n")
    sections.append("```\n" + fig7.render(ranges) + "\n```\n")
    for description, ok in check_fig7(ranges):
        sections.append(f"- {description}: {_verdict(ok)}")
    sections.append("")

    all_checks = (
        check_fig5(datasize) + check_fig6(balance) + check_fig7(ranges)
    )
    passed = sum(1 for _, ok in all_checks if ok)
    sections.append(
        f"## Summary: {passed}/{len(all_checks)} claims reproduced"
    )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20_000)
    parser.add_argument("--queries", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)

    config = IndexConfig(
        dims=2, max_depth=28, split_threshold=100,
        merge_threshold=50, expected_load=70,
    )
    report = generate_report(
        northeast_surrogate(args.size), config,
        queries_per_span=args.queries, seed=args.seed,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
