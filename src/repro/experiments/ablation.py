"""Ablations beyond the paper's figures.

A1 — **naming function**: m-LIGHT versus the identity label-to-key
mapping (:class:`~repro.baselines.naive.NaiveTreeIndex`).  Quantifies
what Theorem 5 buys: halved split transfers and O(log D) lookups.

A2 — **lookup search**: binary search over the candidate set versus
linear root-down probing, on the same m-LIGHT index.

A3 — **substrate swap**: the same insertion + query workload on
LocalDht, Chord, Kademlia and Pastry.  The index-level counters must
agree exactly (over-DHT layering); only overlay hops differ.

A4 — **bulk loading vs incremental insertion**: the static Theorem-6
construction against per-record maintenance, in both cost and balance.

A5 — **client leaf cache**: the same skewed lookup replay with no
cache, a cold cache, and a cache pre-warmed by a first replay pass.
Hint probes are metered DHT-gets, so the table reports honest costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.errors import IndexCorruptionError
from repro.common.geometry import Point
from repro.common.labels import candidate_string
from repro.core.index import MLightIndex
from repro.core.keys import bucket_key
from repro.core.naming import name_run_end, naming_function
from repro.dht.api import Dht
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table


@dataclass(frozen=True, slots=True)
class AblationRow:
    """One configuration's aggregate costs."""

    name: str
    lookups: int
    records_moved: int
    hops: int


def run_naming_ablation(
    points: Sequence[Point], config: IndexConfig
) -> list[AblationRow]:
    """A1: insert the dataset under m-LIGHT and the naive mapping."""
    rows = []
    for name, scheme in (("mlight", "mlight"), ("naive-mapping", "naive")):
        index = build_index(scheme, config)
        for point in points:
            index.insert(point)
        stats = index.dht.stats
        rows.append(
            AblationRow(name, stats.lookups, stats.records_moved, stats.hops)
        )
    return rows


def lookup_point_linear(
    dht: Dht, point: Point, dims: int, max_depth: int
) -> int:
    """Linear-probe lookup on an m-LIGHT index; returns probe count.

    Walks candidate lengths from the root downward, still skipping
    whole name runs (anything less would be a strawman).
    """
    candidate = candidate_string(point, max_depth)
    length = dims + 1
    probes = 0
    while length <= len(candidate):
        name = naming_function(candidate[:length], dims)
        probes += 1
        bucket = dht.get(bucket_key(name))
        if bucket is not None and bucket.covers(point):
            return probes
        length = name_run_end(candidate, len(name), dims) + 1
    raise IndexCorruptionError(f"linear lookup of {point} failed")


def run_lookup_ablation(
    points: Sequence[Point],
    lookup_keys: Sequence[Point],
    config: IndexConfig,
) -> list[AblationRow]:
    """A2: binary-search vs linear lookup probe counts."""
    index = build_index("mlight", config)
    for point in points:
        index.insert(point)

    binary_probes = 0
    for key in lookup_keys:
        binary_probes += index.lookup(key).lookups
    linear_probes = 0
    for key in lookup_keys:
        linear_probes += lookup_point_linear(
            index.dht, key, config.dims, config.max_depth
        )
    return [
        AblationRow("binary-search", binary_probes, 0, 0),
        AblationRow("linear-probing", linear_probes, 0, 0),
    ]


def run_substrate_ablation(
    points: Sequence[Point],
    config: IndexConfig,
    n_peers: int = 16,
) -> list[AblationRow]:
    """A3: identical workload over all four substrates.

    Raises :class:`IndexCorruptionError` if the index-level counters
    diverge across substrates — that would mean the index leaked
    substrate details through the facade.
    """
    substrates = (
        ("local", LocalDht(n_peers)),
        ("chord", ChordDht.build(n_peers)),
        ("kademlia", KademliaDht.build(n_peers)),
        ("pastry", PastryDht.build(n_peers)),
    )
    rows = []
    for name, dht in substrates:
        index = MLightIndex(dht, config)
        for point in points:
            index.insert(point)
        stats = index.dht.stats
        rows.append(
            AblationRow(name, stats.lookups, stats.records_moved, stats.hops)
        )
    reference = rows[0]
    for row in rows[1:]:
        if (
            row.lookups != reference.lookups
            or row.records_moved != reference.records_moved
        ):
            raise IndexCorruptionError(
                "index-level costs differ across substrates: "
                f"{reference} vs {row}"
            )
    return rows


def run_bulkload_ablation(
    points: Sequence[Point], config: IndexConfig
) -> list[AblationRow]:
    """A4: construction cost of bulk loading vs incremental inserts.

    Both use the data-aware strategy; bulk loading applies it once at
    the root (the static optimum of Theorem 6).
    """
    from repro.core.bulkload import bulk_load
    from repro.core.split import DataAwareSplit

    strategy = DataAwareSplit(config.expected_load)
    bulk_dht = LocalDht()
    bulk_load(bulk_dht, points, config, strategy)
    rows = [
        AblationRow(
            "bulk-load",
            bulk_dht.stats.lookups,
            bulk_dht.stats.records_moved,
            bulk_dht.stats.hops,
        )
    ]
    incremental = MLightIndex(
        LocalDht(), replace(config, strategy="data-aware")
    )
    for point in points:
        incremental.insert(point)
    stats = incremental.dht.stats
    rows.append(
        AblationRow(
            "incremental", stats.lookups, stats.records_moved, stats.hops
        )
    )
    return rows


def run_cache_ablation(
    points: Sequence[Point],
    lookup_keys: Sequence[Point],
    config: IndexConfig,
    cache_capacity: int = 512,
) -> list[AblationRow]:
    """A5: no cache vs cold cache vs warmed cache on a lookup replay.

    All three configurations replay the same *lookup_keys* against the
    same loaded index.  ``warm-cache`` replays them twice and reports
    only the second pass, so every hot leaf is already cached.
    """
    index = build_index("mlight", config)
    for point in points:
        index.insert(point)
    dht = index.dht

    def replay(client: MLightIndex) -> int:
        before = dht.stats.lookups
        for key in lookup_keys:
            client.lookup(key)
        return dht.stats.lookups - before

    rows = [AblationRow("no-cache", replay(index), 0, 0)]

    cached = MLightIndex(
        dht, replace(config, cache_capacity=cache_capacity)
    )
    rows.append(AblationRow("cold-cache", replay(cached), 0, 0))
    rows.append(AblationRow("warm-cache", replay(cached), 0, 0))
    return rows


def render(rows: list[AblationRow], title: str) -> str:
    headers = ["configuration", "DHT-lookups", "records moved", "hops"]
    return format_table(
        headers,
        [[row.name, row.lookups, row.records_moved, row.hops] for row in rows],
        title=title,
    )
