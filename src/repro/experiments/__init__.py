"""Experiment harness reproducing the paper's evaluation (Section 7).

One module per figure:

* :mod:`repro.experiments.fig5` — maintenance cost (Figs. 5a-5d);
* :mod:`repro.experiments.fig6` — storage load balance (Figs. 6a-6b);
* :mod:`repro.experiments.fig7` — range-query cost (Figs. 7a-7b);
* :mod:`repro.experiments.ablation` — additional ablations (naming
  function, lookup search, DHT substrate swap).

``python -m repro.experiments.run_all`` regenerates every table at a
configurable scale.
"""

from repro.experiments.harness import build_index, SCHEME_NAMES

__all__ = ["build_index", "SCHEME_NAMES"]
