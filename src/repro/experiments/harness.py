"""Shared experiment plumbing: index factories and progressive runs.

Figure runners use :func:`build_index` so every scheme is constructed
on an identical fresh substrate with identical parameters — the setup
of the paper's Section 7.1 (Bamboo/OpenDHT with >100 logical peers
becomes a 128-peer consistent-hashing substrate; see DESIGN.md on why
the metrics are substrate independent).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, replace

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.core.index import MLightIndex
from repro.baselines.dst import DstIndex
from repro.baselines.naive import NaiveTreeIndex
from repro.baselines.pht import PhtIndex
from repro.dht.api import Dht
from repro.runtime import RuntimeConfig, create_dht

#: Peers in the simulated substrate (the paper runs "more than one
#: hundred logical peers").
DEFAULT_PEERS = 128

SCHEME_NAMES = ("mlight", "mlight-da", "pht", "dst", "naive")


def build_index(
    scheme: str,
    config: IndexConfig,
    dht: Dht | None = None,
    n_peers: int = DEFAULT_PEERS,
    runtime: RuntimeConfig | None = None,
):
    """Construct one index instance of *scheme* on a fresh substrate.

    Schemes: ``mlight`` (threshold splitting), ``mlight-da``
    (data-aware splitting), ``pht``, ``dst``, ``naive`` (identity
    mapping ablation).

    The substrate comes from :func:`repro.runtime.create_dht`: by
    default the runtime kind named by ``config.runtime`` (``"sim"``
    unless an experiment opts into the service plane) with *n_peers*
    peers; pass *runtime* for full control, or *dht* to reuse an
    existing substrate.  Service substrates are the caller's to
    ``close()``.
    """
    if dht is None:
        if runtime is None:
            runtime = RuntimeConfig(
                kind=config.runtime,
                n_peers=n_peers,
                durability=config.durability,
            )
        dht = create_dht(runtime)
    if scheme == "mlight":
        return MLightIndex(dht, config)
    if scheme == "mlight-da":
        return MLightIndex(dht, replace(config, strategy="data-aware"))
    if scheme == "pht":
        return PhtIndex(dht, config)
    if scheme == "dst":
        return DstIndex(dht, config)
    if scheme == "naive":
        return NaiveTreeIndex(dht, config)
    raise ReproError(
        f"unknown scheme {scheme!r}; expected one of {SCHEME_NAMES}"
    )


@dataclass(slots=True)
class ProgressiveSample:
    """Cumulative maintenance costs after ``inserted`` insertions."""

    inserted: int
    lookups: int
    records_moved: int


def progressive_insert(
    index,
    points: Sequence[Point],
    sample_at: Iterable[int],
    callback: Callable[[int], None] | None = None,
) -> list[ProgressiveSample]:
    """Insert *points* in order, snapshotting cumulative costs.

    *sample_at* lists insertion counts (ascending) at which to record a
    :class:`ProgressiveSample`; *callback* additionally fires at each
    sample point (e.g. to measure load balance).
    """
    targets = sorted(set(sample_at))
    samples: list[ProgressiveSample] = []
    next_target = 0
    for count, point in enumerate(points, start=1):
        index.insert(point)
        if next_target < len(targets) and count == targets[next_target]:
            stats = index.dht.stats
            samples.append(
                ProgressiveSample(count, stats.lookups, stats.records_moved)
            )
            if callback is not None:
                callback(count)
            next_target += 1
    return samples


def default_sample_points(total: int, samples: int = 6) -> list[int]:
    """Evenly spaced sample sizes ending at *total* (Fig. 5a style)."""
    if total < 1:
        raise ReproError("total must be >= 1")
    samples = max(1, min(samples, total))
    return [round(total * (index + 1) / samples) for index in range(samples)]
