"""ASCII line charts for experiment series.

The evaluation environment has no plotting stack, so the harness can
render each figure as a terminal chart: one mark per series, linear or
log y-axis, values scaled into a fixed-size character grid.  Good
enough to eyeball the shapes the paper's figures show (linearity,
order-of-magnitude gaps, crossovers).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.common.errors import ReproError

#: Marks assigned to series, in order.
MARKS = "oxv*#@+%"


def render_chart(
    series: dict[str, Sequence[float]],
    xs: Sequence[float],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render *series* (name -> y values over shared *xs*) as text.

    ``log_y=True`` plots log10(y) — the right view for Fig. 5/7, where
    DST sits an order of magnitude above the rest.
    """
    if not series:
        raise ReproError("nothing to chart")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(xs)}:
        raise ReproError(
            f"series lengths {lengths} do not match {len(xs)} x values"
        )
    if len(xs) < 2:
        raise ReproError("need at least two x values")
    if width < 8 or height < 4:
        raise ReproError("chart too small to draw")

    def transform(value: float) -> float:
        if not log_y:
            return value
        if value <= 0:
            return 0.0
        return math.log10(value)

    all_values = [
        transform(value) for values in series.values() for value in values
    ]
    y_low, y_high = min(all_values), max(all_values)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        mark = MARKS[index % len(MARKS)]
        for x, y in zip(xs, values):
            column = round(
                (x - x_low) / (x_high - x_low) * (width - 1)
            )
            row = round(
                (transform(y) - y_low) / (y_high - y_low) * (height - 1)
            )
            grid[height - 1 - row][column] = mark

    lines = []
    if title:
        lines.append(title)
    axis_label = "log10(y)" if log_y else "y"
    top = f"{y_high:.3g}"
    bottom = f"{y_low:.3g}"
    label_width = max(len(top), len(bottom), len(axis_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top
        elif row_index == height - 1:
            label = bottom
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  x: {x_low:g} .. {x_high:g}"
        + (f"   ({axis_label})" if log_y else "")
    )
    legend = "   ".join(
        f"{MARKS[index % len(MARKS)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def chart_maintenance(series_list, measure: str = "lookups") -> str:
    """Chart Fig. 5 output (list of MaintenanceSeries)."""
    xs = series_list[0].xs
    series = {
        entry.scheme: (
            entry.lookups if measure == "lookups" else entry.records_moved
        )
        for entry in series_list
    }
    title = (
        "DHT-lookup cost" if measure == "lookups" else "Data-movement cost"
    )
    return render_chart(series, xs, title=title, log_y=True)


def chart_rangequery(series_list, measure: str = "bandwidth") -> str:
    """Chart Fig. 7 output (list of RangeQuerySeries)."""
    xs = series_list[0].spans
    series = {
        entry.variant: (
            entry.bandwidth if measure == "bandwidth" else entry.latency
        )
        for entry in series_list
    }
    log_y = measure == "bandwidth"
    title = (
        "Bandwidth (#DHT-lookups/query)"
        if measure == "bandwidth"
        else "Latency (rounds/query)"
    )
    return render_chart(series, xs, title=title, log_y=log_y)


def chart_loadbalance(series_list, measure: str = "empty") -> str:
    """Chart Fig. 6 output (list of LoadBalanceSeries).

    Plotted against inserted records (shared across strategies; the
    tree sizes differ slightly per strategy, see the tables).
    """
    xs = [sample.inserted for sample in series_list[0].samples]
    if measure == "empty":
        series = {
            entry.strategy: [
                100.0 * sample.empty_fraction for sample in entry.samples
            ]
            for entry in series_list
        }
        title = "% empty buckets vs inserted records"
    else:
        series = {
            entry.strategy: [
                sample.bucket_variance for sample in entry.samples
            ]
            for entry in series_list
        }
        title = "bucket load variance vs inserted records"
    return render_chart(series, xs, title=title)
