"""Render traced queries: per-query timeline and critical-path table.

Consumes the JSONL a :class:`~repro.obs.trace.Tracer` exports (one
span per line) and renders, per root span:

* an indented **timeline** — the span tree in start order, each node
  with its simulated and wall durations, attributes and events;
* the **critical path** — the chain of child spans that dominates the
  root's simulated time (falling back to wall time when no simulated
  clock was attached), which is exactly the paper's latency model: a
  query costs its longest dependent chain, not the sum of its rounds.

Plus a cross-query profile (top self-time spans) from
:mod:`repro.obs.profile`.

Usage::

    python -m repro.experiments.trace_report trace.jsonl -o timeline.txt
    python -m repro.experiments.trace_report --smoke

``--smoke`` runs a self-contained traced end-to-end query (a seeded
m-LIGHT index over Chord) and writes ``results/trace_query.jsonl``
plus ``results/trace_timeline.txt`` — the ``make trace-smoke`` target.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from collections.abc import Sequence

from repro.common.errors import ReproError
from repro.obs.profile import profile_report
from repro.obs.trace import Span

__all__ = [
    "critical_path",
    "load_spans",
    "render_report",
    "render_timeline",
    "run_traced_query",
]


def load_spans(path: str) -> list[Span]:
    """Parse one tracer's JSONL export back into spans."""
    spans: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError) as error:
                raise ReproError(
                    f"{path}:{lineno}: not a span record ({error})"
                ) from error
    return spans


def _index_children(spans: Sequence[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = defaultdict(list)
    for span in spans:
        children[span.parent_id].append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.wall_start, span.span_id))
    return children


def _duration_text(span: Span) -> str:
    sim = span.sim_duration
    wall = f"{span.wall_duration * 1e3:.3f}ms wall"
    if sim is None:
        return wall
    return f"{sim:.3f} sim, {wall}"


def _attr_text(span: Span) -> str:
    if not span.attrs:
        return ""
    inner = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    return f"  [{inner}]"


def render_timeline(spans: Sequence[Span]) -> str:
    """The span forest as an indented start-ordered timeline."""
    if not spans:
        return "no spans recorded"
    children = _index_children(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        marker = "! " if span.status == "error" else ""
        lines.append(
            f"{'  ' * depth}{marker}{span.kind}:{span.name} "
            f"({_duration_text(span)}){_attr_text(span)}"
        )
        for event in span.events:
            attrs = ", ".join(
                f"{key}={value}"
                for key, value in sorted(event["attrs"].items())
            )
            lines.append(
                f"{'  ' * (depth + 1)}* {event['name']}"
                + (f" [{attrs}]" if attrs else "")
            )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def _span_cost(span: Span) -> float:
    sim = span.sim_duration
    return span.wall_duration if sim is None else sim


def critical_path(spans: Sequence[Span], root: Span) -> list[Span]:
    """The chain of spans dominating *root*'s time, root first.

    At each level the child with the largest simulated duration (wall
    when unclocked) is followed — the longest dependent chain, the
    paper's ``rounds`` latency measure made concrete.
    """
    children = _index_children(spans)
    path = [root]
    cursor = root
    while True:
        options = children.get(cursor.span_id, ())
        if not options:
            return path
        cursor = max(options, key=_span_cost)
        path.append(cursor)


def _critical_path_table(spans: Sequence[Span]) -> str:
    children = _index_children(spans)
    roots = children.get(None, ())
    lines = ["Critical path per root span"]
    header = f"{'root':<24} {'cost':>12}  dominant chain"
    lines.append(header)
    lines.append("-" * len(header))
    for root in roots:
        chain = critical_path(spans, root)
        rendered = " > ".join(f"{s.kind}:{s.name}" for s in chain)
        lines.append(
            f"{root.kind + ':' + root.name:<24} "
            f"{_span_cost(root):>12.4f}  {rendered}"
        )
    return "\n".join(lines)


def render_report(spans: Sequence[Span], top: int = 10) -> str:
    """Timeline + critical paths + profile, one text artifact."""
    return "\n\n".join(
        [
            "== Timeline ==",
            render_timeline(spans),
            "== Critical paths ==",
            _critical_path_table(spans),
            "== Profile ==",
            profile_report(spans, top),
        ]
    )


def run_traced_query(
    n_peers: int = 32, n_points: int = 400, seed: int = 7
) -> tuple[list[Span], dict[str, float]]:
    """One traced end-to-end range query on a seeded Chord index.

    Returns the spans plus the query's headline meters — the smoke
    payload behind ``make trace-smoke``.
    """
    from repro.common.config import IndexConfig
    from repro.common.rng import make_rng
    from repro.core.bulkload import bulk_load
    from repro.core.index import MLightIndex
    from repro.dht.chord import ChordDht
    from repro.metrics.counters import CostMeter

    rng = make_rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n_points)]
    config = IndexConfig(dims=2, cache_capacity=64, tracing=True)
    dht = ChordDht.build(n_peers)
    bulk_load(dht, points, config)
    index = MLightIndex(dht, config)
    index.tracer.clear()  # keep only the query's spans in the artifact

    with CostMeter(index.dht) as meter:
        result = index.range_query(((0.2, 0.2), (0.6, 0.6)))
    index.knn((0.5, 0.5), k=3)
    meters = {
        "records": len(result.records),
        "lookups": result.lookups,
        "rounds": result.rounds,
        "batch_rounds": result.batch_rounds,
        "meter_lookups": meter.delta.lookups,
        "meter_batch_rounds": meter.delta.batch_rounds,
    }
    return list(index.tracer.spans), meters


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace export to render",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the report here instead of stdout",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a traced end-to-end query and write results/ artifacts",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        os.makedirs("results", exist_ok=True)
        spans, meters = run_traced_query()
        from repro.obs.trace import JsonlTraceSink

        sink = JsonlTraceSink("results/trace_query.jsonl")
        try:
            for span in spans:
                sink.emit(span)
        finally:
            sink.close()
        report = render_report(spans, args.top)
        output = args.output or "results/trace_timeline.txt"
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(
            f"traced query: {meters['records']} records, "
            f"{meters['lookups']} lookups, {meters['rounds']} rounds "
            f"({len(spans)} spans)"
        )
        print(f"wrote results/trace_query.jsonl and {output}")
        return 0

    if args.trace is None:
        parser.error("a trace file is required unless --smoke is given")
    report = render_report(load_spans(args.trace), args.top)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
