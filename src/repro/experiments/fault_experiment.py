"""E12 — recall and retry cost vs injected fault rate (degraded mode).

E10 measures what *peer loss* costs the index; this experiment
measures what *message loss* costs it, and what the resilience stack
(retries with backoff below, partial results above) buys back.  The
setup stacks the fault plane under the retry wrapper::

    MLightIndex -> RetryingDht -> FaultyDht -> ChordDht

and sweeps the injected fault rate (half drops, half timeouts) against
the replication factor.  Each run also crashes one peer mid-way — with
stabilization and replica repair — so the replication axis is
exercised the way E10 exercises it, while the fault axis stresses the
query path on top.

Ground truth is collected with injection suspended; the fault plan is
seeded per cell, so every cell (and the whole table) is reproducible
bit-for-bit from the experiment seed.

Expected shape: at rate 0 the table reduces to E10's story
(replication >= 2 repairs the crash; recall 1.0).  As the rate grows,
a probe only stays unanswered when *every* retry attempt faults, so
recall erodes slowly (≈ rate^attempts per probe) while the retry and
backoff counters — the price paid for that recall — grow steeply.
Queries never abort: unreachable subregions surface as
``complete=False`` partial results, counted in the ``degraded``
column.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.common.config import IndexConfig
from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Point
from repro.common.rng import derive_seed, make_rng
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.dht.faults import FaultPlan, FaultyDht
from repro.dht.retry import RetryingDht
from repro.experiments.tables import format_table
from repro.workloads.queries import uniform_range_queries

__all__ = ["FaultRecallSample", "run_fault_recall", "render"]


@dataclass(frozen=True, slots=True)
class FaultRecallSample:
    """One (replication, fault-rate) cell of the E12 sweep."""

    replication: int
    fault_rate: float
    recall: float
    degraded: int  # queries answered with complete=False
    failed: int  # queries lost to tree damage (crash, replication 1)
    retries: int
    backoff_waits: int
    faults_injected: int
    backoff_time: float


def run_fault_recall(
    points: Sequence[Point],
    config: IndexConfig,
    fault_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    replication_factors: Sequence[int] = (1, 2, 3),
    n_peers: int = 16,
    n_queries: int = 12,
    span: float = 0.1,
    attempts: int = 3,
    seed: int = 0,
) -> list[FaultRecallSample]:
    """Sweep injected fault rate x replication factor.

    Each cell builds a fresh index, crashes one peer (stabilizing and
    repairing replicas), then answers *n_queries* range queries with
    faults injected at *fault_rates* — reads, writes and lookups alike
    — through a retry wrapper with exponential backoff.  Recall is the
    fraction of the fault-free answer still returned.
    """
    queries = uniform_range_queries(
        n_queries, span, dims=config.dims, seed=seed
    )
    samples = []
    for replication in replication_factors:
        for rate in fault_rates:
            chord = ChordDht.build(n_peers, replication=replication)
            plan = FaultPlan(
                derive_seed(seed, "e12", replication, rate),
                drop_rate=rate / 2.0,
                timeout_rate=rate / 2.0,
            )
            faulty = FaultyDht(chord, plan)
            dht = RetryingDht(
                faulty,
                attempts=attempts,
                backoff_base=0.05,
                jitter=0.01,
                seed=derive_seed(seed, "e12-backoff", replication, rate),
            )
            index = MLightIndex(dht, config)
            with faulty.suspended():
                for point in points:
                    index.insert(point)
                truth = [
                    {
                        record.key
                        for record in index.range_query(query).records
                    }
                    for query in queries
                ]
            # One mid-run crash, repaired when replication allows, so
            # the replication axis carries E10's meaning here too.
            rng = make_rng(seed + 1)  # same victim for every cell
            victims = chord.peers()
            chord.fail(victims[rng.randrange(len(victims))])
            chord.stabilize_all(3)
            chord.repair_replicas()

            before = dht.stats.snapshot()
            backoff_before = dht.backoff_time
            matched = 0
            total = 0
            degraded = 0
            failed = 0
            for query, expected in zip(queries, truth):
                try:
                    result = index.range_query(query)
                except NodeUnreachableError:  # pragma: no cover
                    raise AssertionError(
                        "degraded mode must never surface unreachability"
                    ) from None
                except ReproError:
                    # Tree damage from the crash (replication 1): some
                    # descent path is unresolvable outright.
                    failed += 1
                    total += len(expected)
                    continue
                got = {record.key for record in result.records}
                matched += len(got & expected)
                total += len(expected)
                if not result.complete:
                    degraded += 1
            after = dht.stats.snapshot()
            samples.append(
                FaultRecallSample(
                    replication=replication,
                    fault_rate=rate,
                    recall=matched / total if total else 1.0,
                    degraded=degraded,
                    failed=failed,
                    retries=after["retries"] - before["retries"],
                    backoff_waits=(
                        after["backoff_waits"] - before["backoff_waits"]
                    ),
                    faults_injected=(
                        after["faults_dropped"]
                        + after["faults_timed_out"]
                        + after["faults_slowed"]
                        + after["faults_stale"]
                        - before["faults_dropped"]
                        - before["faults_timed_out"]
                        - before["faults_slowed"]
                        - before["faults_stale"]
                    ),
                    backoff_time=dht.backoff_time - backoff_before,
                )
            )
    return samples


def render(samples: list[FaultRecallSample]) -> str:
    headers = [
        "replication",
        "fault rate",
        "recall",
        "degraded",
        "failed",
        "retries",
        "backoff waits",
        "faults injected",
        "backoff time",
    ]
    rows = [
        [
            s.replication,
            s.fault_rate,
            s.recall,
            s.degraded,
            s.failed,
            s.retries,
            s.backoff_waits,
            s.faults_injected,
            s.backoff_time,
        ]
        for s in samples
    ]
    return format_table(
        headers, rows, title="E12: recall and retry cost vs fault rate"
    )
