"""Fig. 6 — storage load balance of the splitting strategies.

Inserts the dataset progressively under (a) threshold-based splitting
with ``theta_split = 100`` and (b) data-aware splitting with
``epsilon = 70`` — the paper's pairing, chosen so the two trees reach
comparable sizes — and samples, as the tree grows, the variance of
per-peer storage and the fraction of empty buckets.

Expected shape (paper): the data-aware strategy lowers load variance
(~15%) and empty buckets (~35%) at matched tree sizes.

Alongside the paper's storage measures, each grown tree also gets a
**query balance** measurement: a Zipf-skewed lookup phase counted by an
observe-only adaptive plane (:mod:`repro.adaptive`), reported as the
max/mean ratio and Gini coefficient of per-peer *served reads* — the
load Theorem 6 does not balance, and the adaptive plane exists to
relieve (E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.plane import AdaptiveDht
from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.common.rng import derive_seed, make_rng
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table
from repro.metrics.loadbalance import (
    empty_bucket_fraction,
    gini_coefficient,
    max_mean_ratio,
    normalized_load_variance,
    peer_query_loads,
    peer_record_loads,
)
from repro.workloads.traces import zipf_sampler

#: Strategy label -> scheme name.
FIG6_STRATEGIES = (
    ("threshold", "mlight"),
    ("data-aware", "mlight-da"),
)


@dataclass(frozen=True, slots=True)
class LoadBalanceSample:
    """One measurement along the insertion.

    ``bucket_variance`` is the normalised variance of per-bucket loads
    (the splitting strategy's direct footprint); ``peer_variance`` is
    the normalised variance of per-peer storage, the paper's stated
    measure, which additionally carries placement granularity noise
    (fewer, larger buckets spread less evenly over peers).
    """

    inserted: int
    tree_size: int
    bucket_variance: float
    peer_variance: float
    empty_fraction: float


@dataclass(frozen=True, slots=True)
class QueryBalanceSample:
    """Per-peer *query* load imbalance of one grown tree.

    Measured over a Zipf-skewed lookup phase: ``max_mean`` is the
    hottest peer's served reads over the mean, ``gini`` the Gini
    coefficient of per-peer served reads.
    """

    skew: float
    queries: int
    max_mean: float
    gini: float


@dataclass(frozen=True, slots=True)
class LoadBalanceSeries:
    """One curve of Fig. 6a/6b."""

    strategy: str
    samples: tuple[LoadBalanceSample, ...]
    query: QueryBalanceSample | None = None


def measure_query_balance(
    index,
    points: Sequence[Point],
    *,
    skew: float = 1.1,
    n_queries: int = 2000,
    seed: int = 0,
) -> QueryBalanceSample:
    """Per-peer query-load imbalance of *index* under skewed lookups.

    Wraps the index's substrate in an observe-only adaptive plane
    (read counting only: no replication, no shortcuts) behind a second
    index view over the *same* tree, runs *n_queries* Zipf(*skew*)
    point lookups through it, and attributes every counted bucket read
    to the peer that served it.  The measured index is untouched — the
    plane never writes, and the view index skips bootstrap because the
    tree already exists.
    """
    plane = AdaptiveDht(
        index.dht,
        AdaptiveConfig(max_replicas=0, shortcut_capacity=0),
    )
    view = MLightIndex(plane, index.config)
    rng = make_rng(derive_seed(seed, "fig6-query-balance"))
    sample_rank = zipf_sampler(len(points), skew, rng)
    for _ in range(n_queries):
        view.lookup(points[sample_rank()])
    loads = peer_query_loads(index.dht, plane.read_counts())
    return QueryBalanceSample(
        skew=skew,
        queries=n_queries,
        max_mean=max_mean_ratio(loads),
        gini=gini_coefficient(loads),
    )


def run_loadbalance_experiment(
    points: Sequence[Point],
    config: IndexConfig,
    n_samples: int = 8,
    n_peers: int = 128,
    virtual_nodes: int = 64,
    query_skew: float = 1.1,
    n_queries: int = 2000,
) -> list[LoadBalanceSeries]:
    """Progressive insertion with periodic balance measurements.

    The substrate uses virtual hosts so that per-peer variance measures
    the splitting strategy rather than consistent-hashing arc luck (see
    EXPERIMENTS.md).  After each tree is fully grown, a skewed lookup
    phase measures its per-peer *query* balance (see
    :func:`measure_query_balance`).
    """
    checkpoints = [
        round(len(points) * (index + 1) / n_samples)
        for index in range(n_samples)
    ]
    series = []
    for strategy_name, scheme in FIG6_STRATEGIES:
        index = build_index(
            scheme,
            config,
            dht=LocalDht(n_peers, virtual_nodes=virtual_nodes),
        )
        samples: list[LoadBalanceSample] = []
        target = 0
        for count, point in enumerate(points, start=1):
            index.insert(point)
            if target < len(checkpoints) and count == checkpoints[target]:
                buckets = list(index.buckets())
                peer_loads = peer_record_loads(index.dht)
                bucket_loads = [bucket.load for bucket in buckets]
                samples.append(
                    LoadBalanceSample(
                        inserted=count,
                        tree_size=len(buckets),
                        bucket_variance=normalized_load_variance(
                            bucket_loads
                        ),
                        peer_variance=normalized_load_variance(peer_loads),
                        empty_fraction=empty_bucket_fraction(buckets),
                    )
                )
                target += 1
        series.append(
            LoadBalanceSeries(
                strategy_name,
                tuple(samples),
                query=measure_query_balance(
                    index, points, skew=query_skew, n_queries=n_queries
                ),
            )
        )
    return series


def render(series: list[LoadBalanceSeries]) -> str:
    """Fig. 6a and 6b as tables keyed by tree size."""
    headers = ["strategy", "inserted", "tree size", "bucket variance",
               "peer variance", "% empty buckets"]
    rows = [
        [
            entry.strategy,
            sample.inserted,
            sample.tree_size,
            sample.bucket_variance,
            sample.peer_variance,
            100.0 * sample.empty_fraction,
        ]
        for entry in series
        for sample in entry.samples
    ]
    storage = format_table(headers, rows, title="Storage load balance")
    query_rows = [
        [
            entry.strategy,
            entry.query.skew,
            entry.query.queries,
            entry.query.max_mean,
            entry.query.gini,
        ]
        for entry in series
        if entry.query is not None
    ]
    if not query_rows:
        return storage
    query = format_table(
        ["strategy", "zipf skew", "queries", "max/mean", "gini"],
        query_rows,
        title="Query load balance (skewed lookups)",
    )
    return storage + "\n" + query
