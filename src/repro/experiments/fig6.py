"""Fig. 6 — storage load balance of the splitting strategies.

Inserts the dataset progressively under (a) threshold-based splitting
with ``theta_split = 100`` and (b) data-aware splitting with
``epsilon = 70`` — the paper's pairing, chosen so the two trees reach
comparable sizes — and samples, as the tree grows, the variance of
per-peer storage and the fraction of empty buckets.

Expected shape (paper): the data-aware strategy lowers load variance
(~15%) and empty buckets (~35%) at matched tree sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.dht.localhash import LocalDht
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table
from repro.metrics.loadbalance import (
    empty_bucket_fraction,
    normalized_load_variance,
    peer_record_loads,
)

#: Strategy label -> scheme name.
FIG6_STRATEGIES = (
    ("threshold", "mlight"),
    ("data-aware", "mlight-da"),
)


@dataclass(frozen=True, slots=True)
class LoadBalanceSample:
    """One measurement along the insertion.

    ``bucket_variance`` is the normalised variance of per-bucket loads
    (the splitting strategy's direct footprint); ``peer_variance`` is
    the normalised variance of per-peer storage, the paper's stated
    measure, which additionally carries placement granularity noise
    (fewer, larger buckets spread less evenly over peers).
    """

    inserted: int
    tree_size: int
    bucket_variance: float
    peer_variance: float
    empty_fraction: float


@dataclass(frozen=True, slots=True)
class LoadBalanceSeries:
    """One curve of Fig. 6a/6b."""

    strategy: str
    samples: tuple[LoadBalanceSample, ...]


def run_loadbalance_experiment(
    points: Sequence[Point],
    config: IndexConfig,
    n_samples: int = 8,
    n_peers: int = 128,
    virtual_nodes: int = 64,
) -> list[LoadBalanceSeries]:
    """Progressive insertion with periodic balance measurements.

    The substrate uses virtual hosts so that per-peer variance measures
    the splitting strategy rather than consistent-hashing arc luck (see
    EXPERIMENTS.md).
    """
    checkpoints = [
        round(len(points) * (index + 1) / n_samples)
        for index in range(n_samples)
    ]
    series = []
    for strategy_name, scheme in FIG6_STRATEGIES:
        index = build_index(
            scheme,
            config,
            dht=LocalDht(n_peers, virtual_nodes=virtual_nodes),
        )
        samples: list[LoadBalanceSample] = []
        target = 0
        for count, point in enumerate(points, start=1):
            index.insert(point)
            if target < len(checkpoints) and count == checkpoints[target]:
                buckets = list(index.buckets())
                peer_loads = peer_record_loads(index.dht)
                bucket_loads = [bucket.load for bucket in buckets]
                samples.append(
                    LoadBalanceSample(
                        inserted=count,
                        tree_size=len(buckets),
                        bucket_variance=normalized_load_variance(
                            bucket_loads
                        ),
                        peer_variance=normalized_load_variance(peer_loads),
                        empty_fraction=empty_bucket_fraction(buckets),
                    )
                )
                target += 1
        series.append(LoadBalanceSeries(strategy_name, tuple(samples)))
    return series


def render(series: list[LoadBalanceSeries]) -> str:
    """Fig. 6a and 6b as tables keyed by tree size."""
    headers = ["strategy", "inserted", "tree size", "bucket variance",
               "peer variance", "% empty buckets"]
    rows = [
        [
            entry.strategy,
            sample.inserted,
            sample.tree_size,
            sample.bucket_variance,
            sample.peer_variance,
            100.0 * sample.empty_fraction,
        ]
        for entry in series
        for sample in entry.samples
    ]
    return format_table(headers, rows, title="Storage load balance")
