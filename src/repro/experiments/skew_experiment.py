"""E13 — tail latency and query balance under Zipf-skewed reads.

Theorem 6 balances what peers *store*; it says nothing about what
peers *serve*.  Under a skewed request stream a handful of leaf
buckets — hence a handful of owner peers, plus the routing gateway
every overlay hop funnels through — absorb most of the read traffic.
This experiment makes that hurt and then relieves it:

* the substrate is a Chord ring over a :class:`~repro.net.latency.
  QueueingLatency` network, where each peer is a single-server FIFO
  queue — a peer serving more RPCs per unit time than it can drain
  builds a backlog, and operation latency grows with the backlog;
* the workload is an open-loop ``request_trace(skew=1.1)`` stream
  (90% point lookups, 10% inserts) arriving at a fixed rate, so a
  slow server cannot slow the arrivals down — queueing delay lands in
  the measured tail, as it would for real clients;
* the **baseline** mode runs the index as-is (leaf cache on, adaptive
  plane off); the **adaptive** mode enables
  :class:`~repro.adaptive.plane.AdaptiveDht` via
  ``IndexConfig(adaptive=...)`` — hot buckets get read replicas,
  repeat lookups learn owner shortcuts and skip overlay routing.

Reported per mode: lookup-latency percentiles over the measured
window (the first fifth of the stream is adaptation warm-up), the
per-peer served-RPC distribution (max, max/mean,
:func:`~repro.metrics.loadbalance.gini_coefficient`), lookup recall,
and a digest of every query answer — the two modes must produce
bit-identical answers, adaptivity is a pure performance layer.

``benchmarks/test_adaptive.py`` gates on this experiment: at
``skew=1.1`` the adaptive mode must improve p99 lookup latency *and*
max-peer query load by >= 2x with equal digests and recall 1.0.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.adaptive.config import AdaptiveConfig
from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.common.rng import derive_seed
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.experiments.tables import format_table
from repro.metrics.loadbalance import gini_coefficient, max_mean_ratio
from repro.net.latency import QueueingLatency
from repro.net.simnet import SimNetwork
from repro.service.loadgen import percentile
from repro.workloads.traces import request_trace, run_operation


def default_adaptive_config(seed: int = 0) -> AdaptiveConfig:
    """The E13 adaptive-plane tuning.

    The shortcut table is sized to cover the whole hot region — under
    Zipf(1.1) the head is heavy but *wide* (the top hundred ranks only
    carry ~58% of the draws), so shortcut coverage, not replication
    alone, is what drains the routing gateway; replication then spreads
    the few truly hot owners.
    """
    return AdaptiveConfig(
        sample_every=128,
        window_samples=4,
        hot_share=0.02,
        min_window_reads=32,
        max_replicas=2,
        cool_windows=3,
        shortcut_capacity=4096,
        learn_after=1,
        seed=seed,
    )


@dataclass(frozen=True, slots=True)
class SkewSample:
    """One mode's measured behaviour under the skewed stream."""

    mode: str
    skew: float
    operations: int
    measured: int
    latency: dict[str, float]
    max_peer_load: int
    max_mean: float
    gini: float
    recall: float
    answers_digest: str
    shortcut_hits: int
    replica_reads: int
    promotions: int
    demotions: int


def _run_mode(
    mode: str,
    adaptive: AdaptiveConfig | None,
    points: Sequence[Point],
    config: IndexConfig,
    *,
    n_peers: int,
    n_ops: int,
    skew: float,
    qps: float,
    base: float,
    service: float,
    cache_capacity: int,
    seed: int,
) -> SkewSample:
    latency = QueueingLatency(base=base, service=service)
    dht = ChordDht.build(n_peers, network=SimNetwork(latency))
    cfg = replace(config, adaptive=adaptive, cache_capacity=cache_capacity)
    bulk_load(dht, points, cfg)
    index = MLightIndex(dht, cfg)

    trace = request_trace(
        list(points),
        n_ops,
        lookup_fraction=0.9,
        range_fraction=0.0,
        insert_fraction=0.1,
        skew=skew,
        dims=cfg.dims,
        seed=derive_seed(seed, "e13-trace"),
    )

    # Measurement starts from idle servers: the bulk load is not part
    # of the serving story, and the first fifth of the stream is the
    # adaptive plane's warm-up (detection windows fill, shortcuts get
    # learned) — excluded from latencies and from served counts alike.
    latency.reset()
    warmup = n_ops // 5
    digest = hashlib.sha256()
    lookup_latencies: list[float] = []
    covered = 0
    lookups = 0
    served_at_warmup: dict[str, int] = {}
    for position, operation in enumerate(trace):
        if position == warmup:
            served_at_warmup = dict(latency.served)
        latency.begin_op(position / qps)
        answer = run_operation(index, operation)
        if operation.kind != "lookup":
            continue
        bucket = answer.bucket
        if position < warmup:
            continue
        lookups += 1
        lookup_latencies.append(latency.op_latency())
        if bucket.covers(operation.key):
            covered += 1
        digest.update(
            f"{operation.kind}:{bucket.label}:{bucket.load}\n".encode()
        )

    ordered = sorted(lookup_latencies)
    summary = {
        f"p{q}": percentile(ordered, q) for q in (50, 95, 99)
    }
    summary["mean"] = (
        sum(ordered) / len(ordered) if ordered else 0.0
    )
    summary["max"] = ordered[-1] if ordered else 0.0

    loads = [
        latency.served.get(peer, 0) - served_at_warmup.get(peer, 0)
        for peer in dht.peers()
    ]
    plane = index.adaptive
    tallies = (
        plane.adaptive_stats.snapshot()
        if plane is not None
        else {
            "shortcut_hits": 0,
            "replica_reads": 0,
            "promotions": 0,
            "demotions": 0,
        }
    )
    return SkewSample(
        mode=mode,
        skew=skew,
        operations=n_ops,
        measured=lookups,
        latency=summary,
        max_peer_load=max(loads),
        max_mean=max_mean_ratio(loads),
        gini=gini_coefficient(loads),
        recall=covered / lookups if lookups else 0.0,
        answers_digest=digest.hexdigest(),
        shortcut_hits=tallies["shortcut_hits"],
        replica_reads=tallies["replica_reads"],
        promotions=tallies["promotions"],
        demotions=tallies["demotions"],
    )


def run_skew_experiment(
    points: Sequence[Point],
    config: IndexConfig,
    *,
    n_peers: int = 8,
    n_ops: int = 4000,
    skew: float = 1.1,
    qps: float = 0.35,
    base: float = 0.05,
    service: float = 1.0,
    cache_capacity: int = 4096,
    adaptive: AdaptiveConfig | None = None,
    seed: int = 0,
) -> list[SkewSample]:
    """Run the baseline and adaptive cells over the same stream.

    *qps* is the open-loop arrival rate in operations per virtual time
    unit; with *service* = 1 a peer saturates at 1 RPC per unit, so
    the default rate overloads the baseline's routing gateway (several
    routing RPCs per lookup land on it) while staying well inside one
    peer's capacity once shortcuts bypass routing.

    Both cells run with the client leaf cache (*cache_capacity*), the
    stack the adaptive shortcuts layer under: a hinted lookup probes
    the actual leaf key in one get, which is what makes the probe
    shortcut-learnable — without the cache, binary-search miss probes
    (no bucket at the candidate name, so nothing to learn an owner
    for) would keep routing through the gateway in both modes.
    """
    cells = [
        ("baseline", None),
        (
            "adaptive",
            adaptive
            if adaptive is not None
            else default_adaptive_config(seed),
        ),
    ]
    return [
        _run_mode(
            mode,
            plane_config,
            points,
            config,
            n_peers=n_peers,
            n_ops=n_ops,
            skew=skew,
            qps=qps,
            base=base,
            service=service,
            cache_capacity=cache_capacity,
            seed=seed,
        )
        for mode, plane_config in cells
    ]


def render(samples: list[SkewSample]) -> str:
    """The E13 table (one row per mode)."""
    headers = [
        "mode", "ops", "p50", "p95", "p99", "max peer",
        "max/mean", "gini", "recall", "answers",
    ]
    rows = [
        [
            sample.mode,
            sample.operations,
            sample.latency["p50"],
            sample.latency["p95"],
            sample.latency["p99"],
            sample.max_peer_load,
            sample.max_mean,
            sample.gini,
            sample.recall,
            sample.answers_digest[:12],
        ]
        for sample in samples
    ]
    table = format_table(
        headers,
        rows,
        title=f"E13: skewed reads (zipf s={samples[0].skew})"
        if samples
        else "E13: skewed reads",
    )
    tallies = [
        f"{sample.mode}: {sample.shortcut_hits} shortcut hits, "
        f"{sample.replica_reads} replica reads, "
        f"{sample.promotions} promotions, {sample.demotions} demotions"
        for sample in samples
        if sample.mode == "adaptive"
    ]
    if tallies:
        table += "\n" + "\n".join(tallies)
    return table


__all__ = [
    "SkewSample",
    "default_adaptive_config",
    "render",
    "run_skew_experiment",
]
