"""E11 — maintenance under a mixed insert/delete workload.

The paper's maintenance experiment (Fig. 5) only inserts, so merges
never fire.  This extension measures the full maintenance loop: a trace
that interleaves deletions of live keys with insertions, driving both
splits and cascading merges.  m-LIGHT's incremental property covers
merges symmetrically (one bucket transferred per merge, Theorem 5),
whereas PHT must move *both* sibling buckets to the parent's key and
re-stitch its leaf list, and DST pays a full root-to-leaf pass per
delete.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.common.config import IndexConfig
from repro.common.geometry import Point
from repro.experiments.harness import build_index
from repro.experiments.tables import format_table
from repro.workloads.traces import apply_trace, mixed_trace

#: Schemes compared (the naive mapping is omitted: Fig. 5 already
#: established its handicap and its merges are not implemented).
E11_SCHEMES = ("mlight", "pht", "dst")


@dataclass(frozen=True, slots=True)
class MixedWorkloadSample:
    """Total maintenance cost of one scheme over the trace."""

    scheme: str
    inserts: int
    deletes: int
    lookups: int
    records_moved: int
    final_records: int


def run_mixed_workload(
    points: Sequence[Point],
    config: IndexConfig,
    delete_fraction: float = 0.4,
    seed: int = 0,
    schemes: Sequence[str] = E11_SCHEMES,
) -> list[MixedWorkloadSample]:
    """Apply the same mixed trace to each scheme and total the costs."""
    trace = mixed_trace(list(points), delete_fraction, seed)
    samples = []
    for scheme in schemes:
        index = build_index(scheme, config)
        inserts, deletes = apply_trace(index, trace)
        stats = index.dht.stats
        samples.append(
            MixedWorkloadSample(
                scheme=scheme,
                inserts=inserts,
                deletes=deletes,
                lookups=stats.lookups,
                records_moved=stats.records_moved,
                final_records=index.total_records(),
            )
        )
    return samples


def render(samples: list[MixedWorkloadSample]) -> str:
    headers = [
        "scheme", "inserts", "deletes", "DHT-lookups",
        "records moved", "records left",
    ]
    rows = [
        [
            sample.scheme,
            sample.inserts,
            sample.deletes,
            sample.lookups,
            sample.records_moved,
            sample.final_records,
        ]
        for sample in samples
    ]
    return format_table(
        headers, rows,
        title="E11: mixed insert/delete maintenance",
    )
