"""The asyncio service runtime: every peer an independent actor.

Where :class:`~repro.net.simnet.SimNetwork` runs all peers in one
thread of control under a virtual clock, this runtime gives each peer
its own asyncio task draining an inbox of wire frames — real
concurrency under a real clock — and optionally a real TCP listener
(``transport="tcp"``) so the frames cross actual loopback sockets.

The whole thing hides behind the standard :class:`~repro.dht.api.Dht`
facade: the index layers, both execution planes, the retry/fault
wrappers and the tracer attach unchanged.  The facade's synchronous
``_do_*`` primitives bridge into a dedicated event-loop thread, so any
number of caller threads (the load generator's workers, say) issue
requests concurrently and the actors interleave them per-frame.

Placement is runtime-neutral consistent hashing
(:class:`~repro.dht.peer.HashRing` — successor-on-ring, the ownership
rule Chord applies to live node identifiers).  Routed overlay
*protocols* remain a simulated-runtime concern; what this runtime
reproduces is the service boundary: wire format, per-peer concurrency,
and wall-clock latency.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.dht.api import BatchFailure, Dht, data_wire_size
from repro.dht.durable import (
    backend_path,
    create_store_backend,
    resolve_data_dir,
)
from repro.dht.peer import HashRing, KeyValuePeer
from repro.dht.storage import PeerStore
from repro.net.stats import NetworkStats
from repro.service.wire import (
    Frame,
    FrameDecoder,
    Op,
    decode_frame,
    encode_error,
    encode_frame,
    encode_reply,
    encode_request,
    frame_wire_cost,
    rebuild_error,
)

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

#: Dht primitive name per request opcode (KeyValuePeer.serve dispatch).
_OP_NAMES = {
    Op.LOOKUP: "lookup",
    Op.GET: "get",
    Op.PUT: "put",
    Op.REMOVE: "remove",
    Op.CONTAINS: "contains",
}

TRANSPORTS = ("asyncio", "tcp")

_READ_CHUNK = 64 * 1024


class WallClock:
    """Real time behind the simulated clock's ``now``/``advance`` shape.

    ``now`` is seconds since the runtime started; ``advance`` — what a
    backoff wrapper calls to wait — actually sleeps, because on this
    runtime waiting costs wall time instead of virtual time.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def now(self) -> float:
        return time.perf_counter() - self._t0

    def advance(self, delay: float) -> None:
        if delay > 0:
            time.sleep(delay)


class ServiceTransport:
    """What the service runtime exposes where a ``SimNetwork`` would be.

    Ducks the attributes the rest of the stack reaches for on
    ``dht.network`` — ``stats`` (a :class:`NetworkStats` fed wall-clock
    spans and modelled frame bytes), ``clock`` (a :class:`WallClock`)
    and ``tracer`` — so :meth:`repro.obs.trace.Tracer.attach`,
    :class:`~repro.obs.registry.MetricsRegistry` and
    :class:`~repro.dht.retry.RetryingDht` wire up without knowing which
    runtime they landed on.
    """

    __slots__ = ("stats", "clock", "tracer")

    def __init__(self) -> None:
        self.stats = NetworkStats()
        self.clock = WallClock()
        self.tracer: "Tracer | None" = None


def serve_request(peer: KeyValuePeer, frame: Frame) -> bytes:
    """Execute one request frame against *peer*; returns the reply frame.

    Every failure — protocol or storage — becomes a ``REPLY_ERR``
    frame: a service peer answers, it never lets an exception escape
    into its serving task or connection handler.
    """
    try:
        op_name = _OP_NAMES.get(frame.op)
        if op_name is None:
            raise ReproError(f"frame opcode {frame.op!r} is not a request")
        key, value = frame.body
        return encode_reply(frame.request_id, peer.serve(op_name, key, value))
    except Exception as exc:
        return encode_error(frame.request_id, exc)


class _ActorNode:
    """One service peer: storage, an inbox task, optionally a listener.

    Constructed inside the runtime's event loop.  The inbox carries
    ``(frame_bytes, reply_future)`` pairs — the in-process equivalent
    of a datagram transport — while the TCP listener speaks the same
    frames over real sockets, one connection handler per client.
    """

    def __init__(
        self,
        peer: KeyValuePeer,
        handlers: dict[int, Any] | None = None,
    ) -> None:
        self.peer = peer
        self.inbox: asyncio.Queue = asyncio.Queue()
        #: Extension dispatch: ``Op -> async handler(peer, frame) ->
        #: reply bytes``.  Extension frames run as *spawned tasks* so a
        #: handler that forwards to other actors (prefix multicast, and
        #: in particular to *this* actor again) never deadlocks the
        #: sequential inbox/connection loop behind its own reply.
        self.handlers: dict[int, Any] = dict(handlers or {})
        #: In-process delivery target for unsolicited frames (the
        #: asyncio-transport stand-in for a server->client socket
        #: write); installed by the runtime's ``set_push_sink``.
        self.push_sink: Any | None = None
        self._connections: set[tuple[Any, asyncio.Lock]] = set()
        self._ext_tasks: set[asyncio.Task] = set()
        self.task = asyncio.create_task(
            self._serve(), name=f"repro-node-{peer.name}"
        )
        self.server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start_listener(self) -> None:
        self.server = await asyncio.start_server(
            self._handle_connection, host="127.0.0.1", port=0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def call(self, frame_bytes: bytes) -> Frame:
        """In-process transport: enqueue a frame, await its reply."""
        if self.task.done():
            raise NodeUnreachableError(
                f"service peer {self.peer.name!r} has shut down"
            )
        future = asyncio.get_running_loop().create_future()
        self.inbox.put_nowait((frame_bytes, future))
        return decode_frame(await future)

    async def _serve(self) -> None:
        while True:
            item = await self.inbox.get()
            if item is None:
                break
            frame_bytes, future = item
            try:
                frame = decode_frame(frame_bytes)
            except Exception as exc:  # undecodable request frame
                if not future.done():
                    future.set_result(encode_error(0, exc))
                continue
            handler = self.handlers.get(frame.op)
            if handler is not None:
                self._spawn_ext(handler, frame, future)
                continue
            reply = serve_request(self.peer, frame)
            if not future.done():
                future.set_result(reply)

    def _spawn_ext(self, handler, frame: Frame, future) -> None:
        task = asyncio.create_task(
            self._serve_ext(handler, frame, future),
            name=f"repro-ext-{self.peer.name}-{frame.op}",
        )
        self._ext_tasks.add(task)
        task.add_done_callback(self._ext_tasks.discard)

    async def _serve_ext(self, handler, frame: Frame, future) -> None:
        try:
            reply = await handler(self.peer, frame)
        except Exception as exc:
            reply = encode_error(frame.request_id, exc)
        if future is not None and not future.done():
            future.set_result(reply)

    async def _handle_connection(self, reader, writer) -> None:
        decoder = FrameDecoder()
        # Extension handlers reply out of order from spawned tasks, so
        # socket writes interleave behind one lock per connection.
        lock = asyncio.Lock()
        entry = (writer, lock)
        self._connections.add(entry)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    handler = self.handlers.get(frame.op)
                    if handler is not None:
                        task = asyncio.create_task(
                            self._serve_connection_ext(
                                handler, frame, writer, lock
                            )
                        )
                        self._ext_tasks.add(task)
                        task.add_done_callback(self._ext_tasks.discard)
                        continue
                    async with lock:
                        writer.write(serve_request(self.peer, frame))
                        await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(entry)
            writer.close()

    async def _serve_connection_ext(
        self, handler, frame: Frame, writer, lock: asyncio.Lock
    ) -> None:
        try:
            reply = await handler(self.peer, frame)
        except Exception as exc:
            reply = encode_error(frame.request_id, exc)
        try:
            async with lock:
                writer.write(reply)
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def push(self, frame_bytes: bytes) -> int:
        """Deliver one unsolicited frame (``request_id == 0``) to the
        connected client(s), or to the in-process push sink on the
        inbox transport.  Returns the number of deliveries."""
        delivered = 0
        if self._connections:
            for writer, lock in list(self._connections):
                try:
                    async with lock:
                        writer.write(frame_bytes)
                        await writer.drain()
                    delivered += 1
                except (ConnectionError, OSError):
                    continue
        elif self.push_sink is not None:
            self.push_sink(decode_frame(frame_bytes))
            delivered += 1
        return delivered

    async def stop(self) -> None:
        self.inbox.put_nowait(None)
        await self.task
        if self._ext_tasks:
            await asyncio.gather(
                *list(self._ext_tasks), return_exceptions=True
            )
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()


class _TcpChannel:
    """Client side of one node's TCP listener.

    Writes request frames down one connection and demultiplexes replies
    by request id, so concurrent requests to the same peer share the
    socket instead of a connection storm.
    """

    def __init__(self) -> None:
        self._reader = None
        self._writer = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        #: Receives frames with no pending request (unsolicited
        #: server-to-client pushes, ``request_id == 0``).
        self.push_sink: Any | None = None

    async def connect(self, port: int) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        self._reader_task = asyncio.create_task(self._read_loop())

    async def call(self, frame_bytes: bytes, request_id: int) -> Frame:
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(frame_bytes)
        await self._writer.drain()
        return await future

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    future = self._pending.pop(frame.request_id, None)
                    if future is not None:
                        if not future.done():
                            future.set_result(frame)
                    elif self.push_sink is not None:
                        self.push_sink(frame)
        except (ConnectionError, OSError):
            pass
        finally:
            error = NodeUnreachableError("service connection closed")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            await self._reader_task


class _LoopThread:
    """A dedicated event-loop thread plus a sync bridge into it."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._main, daemon=True, name="repro-service-loop"
        )
        self._thread.start()

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def run(self, coro) -> Any:
        """Run *coro* on the loop from any caller thread, blocking."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)


class ServiceDht(Dht):
    """The :class:`Dht` facade over the asyncio/TCP service runtime.

    ``transport="asyncio"`` passes frames through per-actor inboxes;
    ``transport="tcp"`` sends the same frames through real loopback
    sockets (one listener per peer, one multiplexed client connection
    each).  Either way the runtime starts lazily on first use; call
    :meth:`close` (or use the instance as a context manager) to tear
    the actors, sockets and loop thread down deterministically.
    """

    def __init__(
        self,
        n_peers: int = 8,
        *,
        transport: str = "asyncio",
        virtual_nodes: int = 1,
        peer_prefix: str = "peer",
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> None:
        super().__init__()
        if n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {n_peers}")
        if transport not in TRANSPORTS:
            raise ReproError(
                f"unknown service transport {transport!r}; expected one "
                f"of {TRANSPORTS}"
            )
        self._transport_kind = transport
        #: Durable backend kind each actor's store journals into
        #: (``None``: in-memory only; :meth:`restart` unavailable).
        self.durability = durability
        self.data_dir = (
            resolve_data_dir(data_dir, "service")
            if durability is not None
            else None
        )
        self._ring = HashRing(
            [f"{peer_prefix}-{index:04d}" for index in range(n_peers)],
            virtual_nodes,
        )
        self.network = ServiceTransport()
        self._request_ids = itertools.count(1)
        self._loop_thread: _LoopThread | None = None
        self._actors: dict[str, _ActorNode] = {}
        self._channels: dict[str, _TcpChannel] = {}
        #: Extension handlers / push sink, re-applied on (re)start so a
        #: restarted actor keeps serving the dissemination opcodes.
        self._handlers: dict[int, Any] = {}
        self._push_sink: Any | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ServiceDht":
        """Spin up the loop thread and every actor (idempotent)."""
        if self._closed:
            raise ReproError("this ServiceDht has been closed")
        if self._loop_thread is None:
            self._loop_thread = _LoopThread()
            self._loop_thread.run(self._start_nodes())
        return self

    def _new_store(self, name: str) -> PeerStore:
        if self.durability is None:
            return PeerStore()
        return PeerStore(
            backend=create_store_backend(
                self.durability, backend_path(self.data_dir, name)
            )
        )

    async def _start_nodes(self) -> None:
        for name in self._ring.peers():
            actor = _ActorNode(
                KeyValuePeer(name, self._new_store(name)), self._handlers
            )
            actor.push_sink = self._push_sink
            self._actors[name] = actor
            if self._transport_kind == "tcp":
                await actor.start_listener()
                channel = _TcpChannel()
                channel.push_sink = self._push_sink
                await channel.connect(actor.port)
                self._channels[name] = channel

    def close(self) -> None:
        """Stop actors, close sockets, and join the loop thread."""
        if self._closed:
            return
        self._closed = True
        if self._loop_thread is not None:
            self._loop_thread.run(self._stop_nodes())
            self._loop_thread.stop()
            self._loop_thread = None

    async def _stop_nodes(self) -> None:
        for channel in self._channels.values():
            await channel.close()
        for actor in self._actors.values():
            if not actor.task.done():
                await actor.stop()
            actor.peer.store.close_backend()

    # ------------------------------------------------------------------
    # Membership-ish lifecycle: crash and durable restart
    # ------------------------------------------------------------------
    #
    # Placement is a fixed hash ring, so peers never join or leave —
    # but an actor can crash and, with durability enabled, come back
    # holding its pre-crash store.  Ownership never moves while a peer
    # is down (requests to it fail instead), so restart needs no
    # reconcile/re-home traffic here: recovery is replay-only.

    def fail(self, name: str) -> None:
        """Crash one service peer: its actor stops serving, requests to
        it raise :class:`NodeUnreachableError`, its in-memory store is
        gone.  Durable state stays on disk for :meth:`restart`."""
        actor = self._actors.get(name)
        if actor is None:
            raise ReproError(f"unknown service peer {name!r}")
        if actor.task.done():
            raise ReproError(f"service peer {name!r} is already down")
        self._bridge().run(self._fail_node(name))

    async def _fail_node(self, name: str) -> None:
        actor = self._actors[name]
        channel = self._channels.pop(name, None)
        if channel is not None:
            await channel.close()
        await actor.stop()
        actor.peer.store.close_backend()

    def _do_restart(self, name: str) -> None:
        if self.durability is None:
            raise ReproError(
                "restart requires a durable backend; build the runtime "
                "with durability=..."
            )
        actor = self._actors.get(name)
        if actor is None:
            raise ReproError(f"unknown service peer {name!r}")
        if not actor.task.done():
            raise ReproError(f"service peer {name!r} is already live")
        backend = create_store_backend(
            self.durability, backend_path(self.data_dir, name)
        )
        store = PeerStore.recover(backend)
        self.stats.restarts += 1
        self.stats.restart_replayed += len(store)
        self._bridge().run(self._restart_node(name, store))

    async def _restart_node(self, name: str, store: PeerStore) -> None:
        actor = _ActorNode(KeyValuePeer(name, store), self._handlers)
        actor.push_sink = self._push_sink
        self._actors[name] = actor
        if self._transport_kind == "tcp":
            await actor.start_listener()
            channel = _TcpChannel()
            channel.push_sink = self._push_sink
            await channel.connect(actor.port)
            self._channels[name] = channel

    # ------------------------------------------------------------------
    # Extension opcodes (the dissemination plane)
    # ------------------------------------------------------------------

    def install_handler(self, op: Op, handler: Any) -> None:
        """Serve extension opcode *op* with ``async handler(peer, frame)
        -> reply bytes`` on every actor, surviving crash/restart.

        Extension frames run as spawned tasks on the owning actor, so a
        handler may itself issue :meth:`_request` calls to other actors
        (or back to its own) without deadlocking the serve loop.
        """
        self._handlers[int(op)] = handler
        for actor in self._actors.values():
            actor.handlers[int(op)] = handler

    def set_push_sink(self, sink: Any) -> None:
        """Route unsolicited (``request_id == 0``) frames to *sink*.

        On the TCP transport the sink hangs off each client channel's
        read loop; on the inbox transport it stands in for the missing
        server-to-client socket direction.
        """
        self._push_sink = sink
        for actor in self._actors.values():
            actor.push_sink = sink
        for channel in self._channels.values():
            channel.push_sink = sink

    def push_to_clients(self, name: str, frame_bytes: bytes) -> "Any":
        """Awaitable: emit one unsolicited frame from peer *name*."""
        actor = self._actors.get(name)
        if actor is None or actor.task.done():
            raise NodeUnreachableError(f"service peer {name!r} is down")
        return actor.push(frame_bytes)

    def __enter__(self) -> "ServiceDht":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _bridge(self) -> _LoopThread:
        self.start()
        return self._loop_thread

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> str:
        return self._ring.peer_of(key)

    def peers(self) -> list[str]:
        return self._ring.peers()

    def items(self) -> Iterator[tuple[str, Any]]:
        if self._loop_thread is None:
            return iter(())
        return iter(self._bridge().run(self._snapshot_items()))

    async def _snapshot_items(self) -> list[tuple[str, Any]]:
        return [
            pair
            for actor in self._actors.values()
            for pair in actor.peer.store.items()
        ]

    def key_count(self) -> int:
        """Stored keys via the non-decoding ``keys()`` walk."""
        if self._loop_thread is None:
            return 0
        return self._bridge().run(self._count_keys())

    async def _count_keys(self) -> int:
        return sum(len(actor.peer.store) for actor in self._actors.values())

    def load_by_peer(self, weigh=None) -> dict[str, int]:
        """Per-peer storage load (same contract as ``LocalDht``)."""
        loads = dict.fromkeys(self._ring.peers(), 0)
        if self._loop_thread is None:
            return loads
        for name, actor in self._actors.items():
            total = 0
            for _, value in actor.peer.store.items():
                total += 1 if weigh is None else weigh(value)
            loads[name] = total
        return loads

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    async def _request(
        self, op: Op, key: str, value: Any = None, *, body: Any = None
    ) -> Any:
        stats = self.network.stats
        actor = self._actors[self._ring.peer_of(key)]
        request_id = next(self._request_ids)
        if body is not None:
            # Extension opcode: *key* routes the frame (peer_of above)
            # and prices it, but the payload is the opcode's own body.
            frame_bytes = encode_frame(op, request_id, body)
            cost_value = body
        else:
            frame_bytes = encode_request(op, request_id, key, value)
            cost_value = value
        stats.record_rpc()
        stats.record_message(
            op.name.lower(),
            frame_wire_cost(op, key, cost_value),
            payload=data_wire_size(cost_value),
        )
        if self._transport_kind == "tcp":
            channel = self._channels.get(actor.peer.name)
            if channel is None:  # crashed via fail(): listener is gone
                raise NodeUnreachableError(
                    f"service peer {actor.peer.name!r} is down"
                )
            reply = await channel.call(frame_bytes, request_id)
        else:
            reply = await actor.call(frame_bytes)
        stats.record_message(
            op.name.lower() + ":reply",
            frame_wire_cost(reply.op, "", reply.body),
            payload=data_wire_size(reply.body),
        )
        if reply.op is Op.REPLY_ERR:
            raise rebuild_error(reply.body)
        return reply.body

    async def _request_captured(
        self, op: Op, key: str, value: Any = None
    ) -> Any:
        try:
            return await self._request(op, key, value)
        except NodeUnreachableError as error:
            return BatchFailure(error)

    def _call(
        self, op: Op, key: str, value: Any = None, *, body: Any = None
    ) -> Any:
        bridge = self._bridge()
        clock = self.network.clock
        started = clock.now
        try:
            return bridge.run(self._request(op, key, value, body=body))
        finally:
            self.network.stats.record_wall_span(clock.now - started)

    async def _gather_round(self, calls: list[tuple]) -> list[Any]:
        clock = self.network.clock
        started = clock.now
        tracer = self.network.tracer
        if tracer is None:
            outcomes = await asyncio.gather(
                *(self._request_captured(*call) for call in calls)
            )
            elapsed = clock.now - started
        else:
            with tracer.span("net", "message_round") as span:
                outcomes = await asyncio.gather(
                    *(self._request_captured(*call) for call in calls)
                )
                elapsed = clock.now - started
                span.attrs["fanout"] = len(calls)
                span.attrs["critical_path"] = elapsed
        # The round's wall span is its critical path: the elements ran
        # concurrently, so the batch costs the slowest element, exactly
        # the accounting SimNetwork.message_round applies to the
        # simulated clock.  The simulated-latency axis stays untouched.
        self.network.stats.record_round(len(calls), 0.0)
        self.network.stats.record_wall_span(elapsed)
        return outcomes

    def _call_many(self, calls: list[tuple]) -> list[Any]:
        return self._bridge().run(self._gather_round(calls))

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    def _do_lookup(self, key: str) -> str:
        return self._call(Op.LOOKUP, key)

    def _do_get(self, key: str) -> Any | None:
        return self._call(Op.GET, key)

    def _do_put(self, key: str, value: Any) -> None:
        self._call(Op.PUT, key, value)

    def _do_remove(self, key: str) -> Any:
        return self._call(Op.REMOVE, key)

    def _do_contains(self, key: str) -> bool:
        return self._call(Op.CONTAINS, key)

    def _do_get_many(self, keys: Sequence[str]) -> list[Any]:
        return self._call_many([(Op.GET, key) for key in keys])

    def _do_put_many(self, items: Sequence[tuple[str, Any]]) -> list[Any]:
        return self._call_many(
            [(Op.PUT, key, value) for key, value in items]
        )

    def _do_lookup_many(self, keys: Sequence[str]) -> list[Any]:
        return self._call_many([(Op.LOOKUP, key) for key in keys])
