"""The framed wire protocol service peers speak.

One message = one frame::

    +--------+---------+--------+------------+-------------+---------+
    | magic  | version | opcode | request id | payload len | payload |
    | 4 B    | 1 B     | 1 B    | 4 B        | 4 B         | ...     |
    +--------+---------+--------+------------+-------------+---------+

The header is struct-packed big-endian; the payload is a pickled
``(key, value)`` request body or a reply body.  Frames are
self-delimiting, so a byte stream (an asyncio TCP connection) is cut
into messages by :class:`FrameDecoder` with no sentinel scanning, and a
datagram-style transport (the in-process actor inbox) passes one frame
per message.

Byte accounting deliberately has two faces:

* ``len(encode_frame(...))`` — the bytes actually crossing a socket
  (pickle is an implementation detail of this runtime);
* :func:`frame_wire_cost` — the *modelled* size used for
  ``NetworkStats.bytes_sent``, built from the same
  ``RECORD_WIRE_BYTES`` / :func:`~repro.dht.api.estimate_wire_size`
  accounting the simulated substrates charge, so byte counters stay
  comparable across runtimes.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from repro.common.errors import ReproError
from repro.dht.api import estimate_wire_size

#: Frame header: magic, version, opcode, request id, payload length.
HEADER = struct.Struct("!4sBBII")
MAGIC = b"mLGT"
VERSION = 1

#: Refuse absurd frames instead of allocating attacker-sized buffers.
MAX_PAYLOAD = 64 * 1024 * 1024


class WireError(ReproError):
    """A frame violated the protocol (bad magic, version, or length)."""


class Op(IntEnum):
    """Frame opcodes: the five Dht primitives, the dissemination-plane
    extensions, and the two replies.

    ``MCAST`` carries one prefix-multicast subquery — body
    ``(target_label, subquery, query)`` — answered with the subtree's
    aggregated ``(records, visited, rounds, unresolved)``.  ``PUSH``
    is dual-use: as a request it asks a subscription-table owner to
    deliver to a client; with ``request_id == 0`` it is the
    *unsolicited* server-to-client delivery frame itself (the one
    direction the request/reply protocol otherwise lacks).
    """

    LOOKUP = 1
    GET = 2
    PUT = 3
    REMOVE = 4
    CONTAINS = 5
    MCAST = 6
    PUSH = 7
    REPLY_OK = 32
    REPLY_ERR = 33


#: Requests carry (key, value); replies carry their result payload.
REQUEST_OPS = (Op.LOOKUP, Op.GET, Op.PUT, Op.REMOVE, Op.CONTAINS)


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded wire message."""

    op: Op
    request_id: int
    body: Any

    @property
    def is_reply(self) -> bool:
        return self.op in (Op.REPLY_OK, Op.REPLY_ERR)


def encode_frame(op: Op, request_id: int, body: Any) -> bytes:
    """Pack one message into header + pickled payload bytes."""
    payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_PAYLOAD:
        raise WireError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit"
        )
    header = HEADER.pack(MAGIC, VERSION, int(op), request_id, len(payload))
    return header + payload


def encode_request(
    op: Op, request_id: int, key: str, value: Any = None
) -> bytes:
    """Frame one primitive request (``value`` only meaningful for put)."""
    if op not in REQUEST_OPS:
        raise WireError(f"opcode {op!r} is not a request")
    return encode_frame(op, request_id, (key, value))


def encode_reply(request_id: int, result: Any) -> bytes:
    """Frame a successful reply."""
    return encode_frame(Op.REPLY_OK, request_id, result)


def encode_error(request_id: int, error: Exception) -> bytes:
    """Frame a failed reply.

    The error's *class* travels by name with its message, never as a
    pickled object: the receiving side rebuilds a known library error
    (or a :class:`WireError` for anything unrecognised), so a peer can
    never make a client unpickle arbitrary exception state.
    """
    if len(error.args) == 1 and isinstance(error.args[0], str):
        # str() on a KeyError subclass repr-quotes its message; the
        # bare argument is the human-readable text either way.
        message = error.args[0]
    else:
        message = str(error)
    return encode_frame(Op.REPLY_ERR, request_id, (type(error).__name__, message))


def rebuild_error(body: Any) -> Exception:
    """Inverse of :func:`encode_error` on the client side."""
    from repro.common import errors

    name, message = body
    cls = getattr(errors, name, None)
    if isinstance(cls, type) and issubclass(cls, errors.ReproError):
        return cls(message)
    return WireError(f"peer error {name}: {message}")


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame from *data* (surplus bytes rejected)."""
    frames, leftover = _split_frames(data)
    if len(frames) != 1 or leftover:
        raise WireError(
            f"expected exactly one frame, got {len(frames)} plus "
            f"{len(leftover)} leftover byte(s)"
        )
    return frames[0]


def _split_frames(data: bytes) -> tuple[list[Frame], bytes]:
    frames: list[Frame] = []
    view = memoryview(data)
    while len(view) >= HEADER.size:
        magic, version, op, request_id, length = HEADER.unpack_from(view)
        if magic != MAGIC:
            raise WireError(f"bad frame magic {bytes(magic)!r}")
        if version != VERSION:
            raise WireError(
                f"unsupported protocol version {version} (speaking "
                f"{VERSION})"
            )
        if length > MAX_PAYLOAD:
            raise WireError(
                f"declared payload of {length} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte frame limit"
            )
        if len(view) < HEADER.size + length:
            break
        payload = view[HEADER.size : HEADER.size + length]
        try:
            body = pickle.loads(payload)
        except Exception as exc:  # pickle raises many concrete types
            raise WireError(f"undecodable frame payload: {exc}") from exc
        try:
            opcode = Op(op)
        except ValueError as exc:
            raise WireError(f"unknown opcode {op}") from exc
        frames.append(Frame(opcode, request_id, body))
        view = view[HEADER.size + length :]
    return frames, bytes(view)


class FrameDecoder:
    """Incremental decoder for a byte stream of frames.

    Feed it whatever chunk sizes the transport produces; it buffers
    partial frames and yields each message exactly once, in order.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb *data*, returning every frame completed by it."""
        frames, self._buffer = _split_frames(self._buffer + data)
        return frames


def frame_wire_cost(op: Op, key: str = "", value: Any = None) -> int:
    """Modelled on-the-wire size of one message, in bytes.

    Header plus the key's own bytes plus the value's codec size — the
    same :func:`~repro.dht.api.estimate_wire_size` accounting the
    simulated substrates charge (exact encoded bytes for record-bearing
    payloads, one envelope for control payloads), applied to the real
    protocol so ``bytes_sent`` for a trace agrees between a simulated
    and a TCP run.
    """
    return HEADER.size + len(key.encode()) + estimate_wire_size(value)
