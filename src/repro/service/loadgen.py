"""Open-loop QPS load generator for the service plane.

Replays a :func:`~repro.workloads.traces.request_trace` against an
index at a *target* rate: operation *i* is due at ``i / qps`` seconds
after start, dispatched to a worker pool the moment it is due, whether
or not earlier operations finished.  Open-loop measurement is the whole
point — a slow server cannot slow the arrival process down, so latency
percentiles include queueing delay, the number a user behind "heavy
traffic from millions of users" actually experiences (closed-loop
generators flatter the server by waiting for it).

Per-operation latency is measured from the operation's *scheduled* time
to its completion; achieved throughput is completed operations over the
span from first schedule to last completion.  Results go to
``results/BENCH_service_load.json`` plus a rendered percentile table.

Run it from the command line against either runtime::

    python -m repro.service.loadgen --runtime asyncio \\
        --records 100000 --peers 8 --qps 500 --duration 10

Mutating steps (inserts) are serialised through one lock — index
maintenance (splits) is not concurrency-safe, and the service plane's
job here is to measure the runtime, not to interleave writers; query
steps run fully concurrently.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.datasets.synthetic import uniform_points
from repro.experiments.tables import format_table
from repro.runtime import RuntimeConfig, create_dht
from repro.workloads.traces import Operation, request_trace, run_operation

RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"
REPORT_NAME = "BENCH_service_load.json"

#: Latency percentiles the report carries, in report order.
PERCENTILES = (50, 95, 99)


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-th percentile of ascending *sorted_values* (nearest-rank
    with linear interpolation; 0.0 for an empty sample)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def latency_summary(latencies: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max of *latencies* (seconds), in milliseconds."""
    ordered = sorted(latencies)
    summary = {
        f"p{q}": percentile(ordered, q) * 1000.0 for q in PERCENTILES
    }
    summary["mean"] = (
        sum(ordered) / len(ordered) * 1000.0 if ordered else 0.0
    )
    summary["max"] = ordered[-1] * 1000.0 if ordered else 0.0
    return summary


@dataclass(frozen=True, slots=True)
class LoadReport:
    """One load-generator run, ready for JSON and table rendering."""

    runtime: str
    peers: int
    records: int
    target_qps: float
    duration_s: float
    operations: int
    completed: int
    failed: int
    achieved_qps: float
    latency_ms: dict[str, float]
    latency_ms_by_op: dict[str, dict[str, float]] = field(
        default_factory=dict
    )

    def achieved_fraction(self) -> float:
        """Achieved over target throughput (the CI sanity gate)."""
        if self.target_qps <= 0:
            return 0.0
        return self.achieved_qps / self.target_qps

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def render(self) -> str:
        """The percentile table the walkthrough in docs/usage.md reads."""
        headers = ["metric", "value"]
        rows = [
            ["runtime", self.runtime],
            ["peers", self.peers],
            ["records loaded", self.records],
            ["operations", self.operations],
            ["completed / failed", f"{self.completed} / {self.failed}"],
            ["target QPS", f"{self.target_qps:.0f}"],
            ["achieved QPS", f"{self.achieved_qps:.1f}"],
            ["p50 latency (ms)", f"{self.latency_ms['p50']:.3f}"],
            ["p95 latency (ms)", f"{self.latency_ms['p95']:.3f}"],
            ["p99 latency (ms)", f"{self.latency_ms['p99']:.3f}"],
            ["mean latency (ms)", f"{self.latency_ms['mean']:.3f}"],
            ["max latency (ms)", f"{self.latency_ms['max']:.3f}"],
        ]
        overall = format_table(
            headers, rows, title="service-plane open-loop load"
        )
        if not self.latency_ms_by_op:
            return overall
        op_rows = [
            [
                kind,
                f"{summary['p50']:.3f}",
                f"{summary['p95']:.3f}",
                f"{summary['p99']:.3f}",
            ]
            for kind, summary in sorted(self.latency_ms_by_op.items())
        ]
        by_op = format_table(
            ["operation", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            op_rows,
            title="latency by operation type",
        )
        return overall + "\n" + by_op


def run_load(
    index,
    operations: list[Operation],
    target_qps: float,
    *,
    workers: int = 16,
    runtime_label: str = "unknown",
    records_loaded: int = 0,
    n_peers: int = 0,
) -> LoadReport:
    """Drive *operations* at *target_qps* and measure latency.

    The index must already be loaded; *operations* normally come from
    :func:`~repro.workloads.traces.request_trace` over the loaded
    points.
    """
    if target_qps <= 0:
        raise ReproError(f"target_qps must be > 0, got {target_qps}")
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if not operations:
        raise ReproError("run_load needs at least one operation")

    interval = 1.0 / target_qps
    mutation_lock = threading.Lock()
    latencies: list[float] = []
    latencies_by_kind: dict[str, list[float]] = {}
    failures = [0]
    tally_lock = threading.Lock()
    last_done = [0.0]

    def execute(operation: Operation, scheduled: float) -> None:
        try:
            if operation.kind in ("insert", "delete"):
                with mutation_lock:
                    run_operation(index, operation)
            else:
                run_operation(index, operation)
        except Exception:
            with tally_lock:
                failures[0] += 1
            return
        done = time.perf_counter()
        with tally_lock:
            latencies.append(done - scheduled)
            latencies_by_kind.setdefault(operation.kind, []).append(
                done - scheduled
            )
            last_done[0] = max(last_done[0], done)

    pool = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-loadgen"
    )
    started = time.perf_counter()
    try:
        for position, operation in enumerate(operations):
            scheduled = started + position * interval
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            pool.submit(execute, operation, scheduled)
    finally:
        pool.shutdown(wait=True)

    completed = len(latencies)
    span = max(last_done[0] - started, 1e-9)
    latency_ms = latency_summary(latencies)
    return LoadReport(
        runtime=runtime_label,
        peers=n_peers,
        records=records_loaded,
        target_qps=target_qps,
        duration_s=len(operations) * interval,
        operations=len(operations),
        completed=completed,
        failed=failures[0],
        achieved_qps=completed / span,
        latency_ms=latency_ms,
        latency_ms_by_op={
            kind: latency_summary(values)
            for kind, values in sorted(latencies_by_kind.items())
        },
    )


def build_loaded_index(
    runtime: str,
    *,
    n_peers: int,
    n_records: int,
    dims: int = 2,
    seed: int = 0,
):
    """A paper-parameter index over *runtime*, bulk-loaded with uniform
    points.  Returns ``(index, points)``; close ``index.dht`` when the
    runtime is a service one."""
    config = IndexConfig(dims=dims, runtime=runtime)
    dht = create_dht(RuntimeConfig(kind=runtime, n_peers=n_peers))
    points = uniform_points(n_records, dims=dims, seed=seed)
    bulk_load(dht, points, config)
    return MLightIndex(dht, config), points


def publish(report: LoadReport, out_path: Path | None = None) -> Path:
    """Write the JSON report next to the other BENCH artefacts."""
    path = out_path if out_path is not None else RESULTS_DIR / REPORT_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json() + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop QPS load generator for the service plane"
    )
    parser.add_argument(
        "--runtime", default="asyncio", choices=("sim", "asyncio", "tcp")
    )
    parser.add_argument("--peers", type=int, default=8)
    parser.add_argument("--records", type=int, default=100_000)
    parser.add_argument("--qps", type=float, default=500.0)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument(
        "--skew",
        type=float,
        default=0.0,
        help="Zipf exponent of the query key distribution "
        "(0 = uniform, the default; E13 uses 1.1)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    print(
        f"loading {args.records} records into {args.peers} "
        f"{args.runtime!r} peers ...",
        flush=True,
    )
    index, points = build_loaded_index(
        args.runtime,
        n_peers=args.peers,
        n_records=args.records,
        seed=args.seed,
    )
    try:
        operations = request_trace(
            points,
            max(1, round(args.qps * args.duration)),
            skew=args.skew,
            seed=args.seed,
        )
        print(
            f"replaying {len(operations)} operations at "
            f"{args.qps:.0f} QPS ...",
            flush=True,
        )
        report = run_load(
            index,
            operations,
            args.qps,
            workers=args.workers,
            runtime_label=args.runtime,
            records_loaded=args.records,
            n_peers=args.peers,
        )
    finally:
        close = getattr(index.dht, "close", None)
        if close is not None:
            close()
    path = publish(report, args.out)
    print(report.render())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
