"""The service plane: asyncio peers, a wire protocol, a load generator.

This package is the "system under real load" counterpart of the
simulated substrates: :class:`~repro.service.node.ServiceDht` runs
every peer as an independent asyncio actor (optionally behind a real
TCP listener) speaking the length-prefixed framed protocol of
:mod:`repro.service.wire`, and :mod:`repro.service.loadgen` replays
mixed workloads against it at a target QPS with open-loop latency
percentiles.  Construction goes through
:func:`repro.runtime.create_dht`; everything above the
:class:`~repro.dht.api.Dht` facade is untouched.
"""

from repro.service.node import ServiceDht, ServiceTransport, WallClock
from repro.service.wire import (
    Frame,
    FrameDecoder,
    Op,
    WireError,
    decode_frame,
    encode_error,
    encode_reply,
    encode_request,
    frame_wire_cost,
)
#: Resolved lazily: the load generator leans on repro.experiments
#: (table rendering) and repro.runtime (the factory), both of which may
#: import this package first.
_LAZY = ("LoadReport", "run_load", "build_loaded_index")


def __getattr__(name: str):
    if name in _LAZY:
        from repro.service import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ServiceDht",
    "ServiceTransport",
    "WallClock",
    "Frame",
    "FrameDecoder",
    "Op",
    "WireError",
    "decode_frame",
    "encode_error",
    "encode_reply",
    "encode_request",
    "frame_wire_cost",
    "LoadReport",
    "run_load",
    "build_loaded_index",
]
