"""Client-side learned routing shortcuts.

A routed overlay pays O(log N) hops — and, with a client gateway, a
routing-RPC fan-in on that gateway — for every read, even of a key the
client resolved moments ago.  The :class:`ShortcutTable` is the learned
complement of the :class:`~repro.core.cache.LeafCache`: where the leaf
cache remembers *which label* covers a region (cutting probe count),
the shortcut table remembers *which peer* owns a resolved key (cutting
overlay hops for the probes that remain), so repeat lookups on hot
regions go straight to the owner via
:meth:`~repro.dht.api.Dht.get_direct`.

The discipline is identical to the leaf cache's:

* an entry is only ever a *hint* — the direct read it steers is a
  metered DHT-get, and the caller trusts nothing but the outcome: a
  ``None`` (the peer no longer holds the key) or an unreachable peer
  evicts the entry and the read falls back to the routed path, so
  staleness costs one extra probe, never a wrong answer;
* the table is LRU-bounded (``capacity`` entries);
* :meth:`bump_generation` invalidates every current entry in O(1) —
  the same wholesale-churn escape hatch as
  :meth:`~repro.core.cache.LeafCache.bump_generation`, with the same
  lazy per-access eviction of stale-generation entries.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ReproError

#: Default number of key -> peer entries a client remembers.
DEFAULT_SHORTCUT_CAPACITY = 512


class ShortcutTable:
    """LRU-bounded map of resolved DHT keys to their owner peers.

    A pure data structure, like the leaf cache: it issues no DHT
    traffic and keeps no cost counters of its own (the plane meters
    shortcut outcomes on its own stats).
    """

    __slots__ = ("_capacity", "_entries", "_generation")

    def __init__(self, capacity: int = DEFAULT_SHORTCUT_CAPACITY) -> None:
        if capacity < 1:
            raise ReproError(
                f"shortcut capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, tuple[str, int]] = OrderedDict()
        self._generation = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    @property
    def generation(self) -> int:
        """Current generation tag; bumping it invalidates all entries."""
        return self._generation

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry[1] == self._generation

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(self, key: str, peer: str) -> None:
        """Record *peer* as the resolved owner of *key* (most recent)."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = (peer, self._generation)
        while len(entries) > self._capacity:
            entries.popitem(last=False)

    def forget(self, key: str) -> None:
        """Drop *key* (a probe proved the entry stale or dead)."""
        self._entries.pop(key, None)

    def bump_generation(self) -> None:
        """Invalidate every current entry in O(1)."""
        self._generation += 1

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------

    def propose(self, key: str) -> str | None:
        """The learned owner peer for *key*, or None.

        Stale-generation entries are evicted lazily here, mirroring
        :meth:`~repro.core.cache.LeafCache.propose`.
        """
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            return None
        peer, tag = entry
        if tag != self._generation:
            del entries[key]  # lazy generation invalidation
            return None
        entries.move_to_end(key)
        return peer
