"""Tunables of the adaptive read plane.

One frozen dataclass describes the whole plane, mirroring
:class:`~repro.common.config.IndexConfig`: an experiment's adaptive
behaviour is fully specified by ``IndexConfig(adaptive=AdaptiveConfig(
...))`` plus a workload, and ``adaptive=None`` (the default) builds no
plane at all — the index runs bit-identically to a pre-adaptive build.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ReproError


@dataclass(frozen=True, slots=True)
class AdaptiveConfig:
    """Static parameters of the adaptive plane.

    Attributes:
        sample_every: reads between hotspot-detector samples.  Each
            sample diffs the per-bucket read counters against the
            previous sample, so this is the granularity of the sliding
            window.
        window_samples: how many consecutive samples the sliding
            window spans; a bucket's traffic share is measured over
            ``window_samples * sample_every`` recent reads.
        hot_share: a bucket whose share of window reads reaches this
            threshold is flagged hot and (when ``max_replicas > 0``)
            promoted.  Bounds the number of simultaneously hot buckets
            by ``1 / hot_share``.
        min_window_reads: windows carrying fewer total reads than this
            flag nothing — a handful of reads is noise, not skew.
        max_replicas: ``K`` — read replicas created per hot bucket
            (``label#r1 .. label#rK``); 0 disables replication.
        cool_windows: a replicated bucket that stays below
            ``hot_share`` for this many consecutive samples decays back
            to ``K = 0`` (its replicas are removed).
        shortcut_capacity: entries in the client-side learned routing
            shortcut table (key -> owner peer); 0 disables shortcuts.
        learn_after: routed reads of one key before the plane spends a
            DHT-lookup learning its owner peer — amortises the learning
            cost over the repeat traffic that justifies it.
        seed: seeds the replica picker (which of primary/replicas a
            read is spread to), keeping adaptive runs deterministic.
    """

    sample_every: int = 256
    window_samples: int = 4
    hot_share: float = 0.05
    min_window_reads: int = 64
    max_replicas: int = 2
    cool_windows: int = 3
    shortcut_capacity: int = 512
    learn_after: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ReproError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.window_samples < 1:
            raise ReproError(
                f"window_samples must be >= 1, got {self.window_samples}"
            )
        if not 0.0 < self.hot_share <= 1.0:
            raise ReproError(
                f"hot_share must be in (0, 1], got {self.hot_share}"
            )
        if self.min_window_reads < 0:
            raise ReproError(
                "min_window_reads must be >= 0, got "
                f"{self.min_window_reads}"
            )
        if self.max_replicas < 0:
            raise ReproError(
                f"max_replicas must be >= 0, got {self.max_replicas}"
            )
        if self.cool_windows < 1:
            raise ReproError(
                f"cool_windows must be >= 1, got {self.cool_windows}"
            )
        if self.shortcut_capacity < 0:
            raise ReproError(
                "shortcut_capacity must be >= 0 (0 disables shortcuts), "
                f"got {self.shortcut_capacity}"
            )
        if self.learn_after < 1:
            raise ReproError(
                f"learn_after must be >= 1, got {self.learn_after}"
            )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{spec.name}={getattr(self, spec.name)!r}"
            for spec in fields(self)
        )
        return f"{type(self).__name__}({body})"
