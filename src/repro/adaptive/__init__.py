"""Adaptive read plane: hotspot detection, replication, shortcuts.

Selected per index with ``IndexConfig(adaptive=AdaptiveConfig(...))``;
``adaptive=None`` (the default) builds none of it and the index runs
bit-identically to a pre-adaptive build.  See
:mod:`repro.adaptive.plane` for the composition.
"""

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.detector import (
    READS_SOURCE,
    BucketReadCounters,
    HotspotDetector,
)
from repro.adaptive.plane import AdaptiveDht, AdaptiveStats
from repro.adaptive.replication import (
    REPLICA_SEP,
    ReplicaDirectory,
    is_replica_key,
    primary_of,
    replica_key,
    replica_keys,
)
from repro.adaptive.shortcuts import DEFAULT_SHORTCUT_CAPACITY, ShortcutTable

__all__ = [
    "AdaptiveConfig",
    "AdaptiveDht",
    "AdaptiveStats",
    "BucketReadCounters",
    "DEFAULT_SHORTCUT_CAPACITY",
    "HotspotDetector",
    "READS_SOURCE",
    "REPLICA_SEP",
    "ReplicaDirectory",
    "ShortcutTable",
    "is_replica_key",
    "primary_of",
    "replica_key",
    "replica_keys",
]
