"""Read replication of hot leaf buckets.

Theorem 6 balances *storage*; under Zipfian traffic a handful of leaf
buckets still absorb most reads, and the peers hosting them become the
throughput ceiling.  The remedy is the classic one (D3-Tree's dynamic
load balancer, PAPERS.md): copy a hot bucket to ``K`` extra DHT keys
and spread reads across the ``K + 1`` copies.

Replica naming is deterministic and locally computable, the same
property ``fmd`` gives primary names: replica *i* of the bucket stored
at key ``k`` lives at ``k + "#r" + i``.  Because ``#`` lies outside
the label alphabet (labels are ``0``/``1`` strings over the ``"ml:"``
namespace), a replica key can never collide with any present or future
bucket key, and each replica key hashes independently on the ring —
the copies land on distinct, deterministic peers without any
directory lookup.  Any client holding the bucket's label can therefore
recompute the full replica set from the packed label algebra alone
(``bucket_key(fmd(label))`` plus the suffix), exactly like primary
names.

Invalidation rides Theorem 5: a split or merge rewrites exactly one
surviving bucket *in place* (same name, same key) and removes or
creates the rest, so the plane re-homes replicas of exactly one key
per maintenance event — the ``rewrite_local`` intercept refreshes that
key's replicas, the ``remove`` intercept tears the dead key's replicas
down.

:class:`ReplicaDirectory` tracks which keys this plane replicated (and
how many copies were actually created) and picks the copy a read is
spread to with a seeded RNG, keeping runs deterministic.
"""

from __future__ import annotations

from repro.common.rng import derive_seed, make_rng

#: Separator between a primary bucket key and a replica ordinal.  Not
#: in the label alphabet, so replica keys are disjoint from bucket keys.
REPLICA_SEP = "#r"


def replica_key(key: str, ordinal: int) -> str:
    """The DHT key of replica *ordinal* (1-based) of primary *key*."""
    return f"{key}{REPLICA_SEP}{ordinal}"


def replica_keys(key: str, count: int) -> list[str]:
    """The replica keys ``key#r1 .. key#r<count>``."""
    return [replica_key(key, ordinal) for ordinal in range(1, count + 1)]


def is_replica_key(key: str) -> bool:
    """True for keys minted by :func:`replica_key`."""
    return REPLICA_SEP in key


def primary_of(key: str) -> str:
    """The primary key a (possibly replica) key belongs to."""
    return key.split(REPLICA_SEP, 1)[0]


class ReplicaDirectory:
    """Which keys this plane replicated, and the seeded read picker.

    Values are the number of replicas actually created (promotion may
    create fewer than ``K`` under faults).  A pure data structure: the
    plane owns all DHT traffic.
    """

    __slots__ = ("_counts", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self._counts: dict[str, int] = {}
        self._rng = make_rng(derive_seed(seed, "replica-picker"))

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def count(self, key: str) -> int:
        """Replicas currently recorded for *key* (0 when none)."""
        return self._counts.get(key, 0)

    def keys(self) -> list[str]:
        """The currently replicated primary keys."""
        return list(self._counts)

    def add(self, key: str, count: int) -> None:
        """Record *count* (>= 1) created replicas of *key*."""
        self._counts[key] = count

    def drop(self, key: str) -> int:
        """Forget *key*; returns the replica count dropped (0 if none)."""
        return self._counts.pop(key, 0)

    def pick(self, key: str) -> str:
        """The key one read of *key* should target.

        Uniform over the primary and its replicas; the primary itself
        (ordinal 0) keeps its share of the traffic.  Draws from the
        directory's seeded RNG, so a fixed seed over a fixed read
        sequence reproduces the same spreading.
        """
        count = self._counts.get(key, 0)
        if not count:
            return key
        ordinal = self._rng.randrange(count + 1)
        if not ordinal:
            return key
        return replica_key(key, ordinal)
