"""Online hotspot detection over per-bucket read counters.

The plane tallies every index read per bucket key in
:class:`BucketReadCounters` — a plain snapshot()/reset() source
registered on a :class:`~repro.obs.registry.MetricsRegistry` — and the
:class:`HotspotDetector` *samples the registry*, never the raw dict:
each :meth:`HotspotDetector.sample` diffs the registry's cumulative
counters against the previous sample and maintains a sliding window of
the last ``window_samples`` deltas.  A bucket whose share of window
reads reaches ``hot_share`` is flagged hot.

Going through the registry keeps the detector decoupled from who does
the counting: anything that publishes cumulative per-key read counts
under the agreed source name (another plane instance, a service-side
exporter) drives the same detector, and a registry-wide ``reset()``
between experiment phases is observed as a counter rollback and
handled (the window restarts from the new baseline instead of seeing
a huge negative delta).
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ReproError
from repro.obs.registry import MetricsRegistry

#: Registry source name the plane publishes its read counters under.
READS_SOURCE = "bucket_reads"


class BucketReadCounters:
    """Cumulative per-key read tallies, registry-adaptable.

    ``snapshot()`` returns the per-key counts (the contract
    :meth:`MetricsRegistry.register` adapts); ``reset()`` zeroes them.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def inc(self, key: str) -> None:
        """Account one read of *key*."""
        self._counts[key] = self._counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        """Total reads across all keys."""
        return sum(self._counts.values())

    def snapshot(self) -> dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()


class HotspotDetector:
    """Flag buckets above a traffic-share threshold, online.

    Samples cumulative per-key read counters from *registry* (source
    *source*) and keeps a sliding window of the last *window_samples*
    inter-sample deltas.  :meth:`sample` returns the current hot set:
    keys whose share of window reads is at least *hot_share*, provided
    the window carries at least *min_reads* reads in total.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        source: str = READS_SOURCE,
        window_samples: int = 4,
        hot_share: float = 0.05,
        min_reads: int = 64,
    ) -> None:
        if window_samples < 1:
            raise ReproError(
                f"window_samples must be >= 1, got {window_samples}"
            )
        if not 0.0 < hot_share <= 1.0:
            raise ReproError(
                f"hot_share must be in (0, 1], got {hot_share}"
            )
        if min_reads < 0:
            raise ReproError(f"min_reads must be >= 0, got {min_reads}")
        self._registry = registry
        self._prefix = source + "."
        self._window_samples = window_samples
        self._hot_share = hot_share
        self._min_reads = min_reads
        self._previous: dict[str, float] = {}
        self._deltas: deque[dict[str, float]] = deque()
        self._window: dict[str, float] = {}
        self._window_total = 0.0

    @property
    def window_reads(self) -> float:
        """Reads in the current sliding window."""
        return self._window_total

    def share(self, key: str) -> float:
        """The window traffic share of *key* (0.0 for an empty window)."""
        if self._window_total <= 0:
            return 0.0
        return self._window.get(key, 0.0) / self._window_total

    def sample(self) -> frozenset[str]:
        """Take one sample; return the current hot key set."""
        prefix = self._prefix
        current = {
            name[len(prefix):]: value
            for name, value in self._registry.snapshot().items()
            if name.startswith(prefix)
        }
        delta: dict[str, float] = {}
        for key, value in current.items():
            previous = self._previous.get(key, 0.0)
            if value < previous:
                # The counters were reset between samples; the current
                # value is the whole new-epoch tally.
                previous = 0.0
            if value > previous:
                delta[key] = value - previous
        self._previous = current
        self._deltas.append(delta)
        for key, count in delta.items():
            self._window[key] = self._window.get(key, 0.0) + count
            self._window_total += count
        while len(self._deltas) > self._window_samples:
            expired = self._deltas.popleft()
            for key, count in expired.items():
                remaining = self._window.get(key, 0.0) - count
                if remaining <= 0:
                    self._window.pop(key, None)
                else:
                    self._window[key] = remaining
                self._window_total -= count
        if self._window_total < self._min_reads:
            return frozenset()
        threshold = self._hot_share * self._window_total
        return frozenset(
            key for key, count in self._window.items()
            if count >= threshold
        )
