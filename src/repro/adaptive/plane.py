"""The adaptive read plane: one Dht wrapper composing the three parts.

:class:`AdaptiveDht` wraps any :class:`~repro.dht.api.Dht` (the same
shared-stats wrapper discipline as ``RetryingDht``/``FaultyDht``, so it
stacks with both and works on every runtime) and adds, for index reads
under the ``"ml:"`` namespace:

* **read counting + hotspot detection** — every ``get`` of a bucket
  key tallies into :class:`~repro.adaptive.detector.BucketReadCounters`
  (published on a :class:`~repro.obs.registry.MetricsRegistry`); every
  ``sample_every`` reads the
  :class:`~repro.adaptive.detector.HotspotDetector` samples the
  registry and the plane promotes newly hot buckets / decays cooled
  ones;
* **read replication** — a promoted bucket is copied to
  ``key#r1..#rK`` (:mod:`~repro.adaptive.replication`) and each read
  of it is spread across the copies by the directory's seeded picker.
  Writes through the plane (``put``/``put_many``/``rewrite_local``)
  refresh the copies synchronously and ``remove`` tears them down, so
  a replica read always returns exactly the primary's current value —
  answers are bit-identical to an unreplicated run by construction,
  and split/merge re-homing rides Theorem 5's single in-place rewrite;
* **learned routing shortcuts** — after ``learn_after`` routed reads
  of one key the plane spends one metered ``lookup`` learning its
  owner and stores it in the
  :class:`~repro.adaptive.shortcuts.ShortcutTable`; later reads go
  straight to the owner via :meth:`~repro.dht.api.Dht.get_direct`,
  skipping overlay routing entirely.

Failure discipline (what keeps the LeafCache interplay sound): a
shortcut that fails (dead peer or ``None``) is evicted and the read
falls back to the routed path at the cost of one extra metered get.  A
*replica* read that fails is different — the plane demotes the key
(drops the directory entry, best-effort-removes the surviving copies)
and re-raises, so the failure surfaces exactly like a primary-owner
failure: the lookup engine's
:meth:`~repro.core.lookup.PointLookupCursor.probe_failed` evicts the
leaf-cache hint and resumes the binary search, whose later probes hit
the live primary.  A replica read that comes back ``None`` (a copy
lost to churn) heals: demote, then answer from a metered primary get.

Everything the plane does on its own behalf — promotion copies,
refreshes, teardown, learning lookups — goes through the *metered*
public facade of the wrapped substrate: adaptivity's costs land on the
same :class:`~repro.dht.api.DhtStats` counters as everything else.
Promotions and demotions are traced as ``adaptive``-kind spans when a
tracer is attached.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, fields
from typing import Any

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.detector import (
    READS_SOURCE,
    BucketReadCounters,
    HotspotDetector,
)
from repro.adaptive.replication import (
    REPLICA_SEP,
    ReplicaDirectory,
    replica_keys,
)
from repro.adaptive.shortcuts import ShortcutTable
from repro.common.errors import DhtKeyError, NodeUnreachableError
from repro.dht.api import BatchFailure, Dht, _raise_batch_failures
from repro.obs.registry import MetricsRegistry

#: The index key namespace the plane adapts; other keys pass through.
_INDEX_PREFIX = "ml:"

#: Bound on the learn-candidate scratch table (keys seen once or more
#: but not yet often enough to learn).
_PENDING_LIMIT = 4096


@dataclass(slots=True)
class AdaptiveStats:
    """Outcome tallies of the adaptive plane.

    These are tallies, not costs: every probe, copy and learning
    lookup the plane issues is already metered on the shared
    :class:`~repro.dht.api.DhtStats`.  Snapshot/reset derive from the
    dataclass fields, the same no-drift construction as ``DhtStats``.
    """

    reads: int = 0
    replica_reads: int = 0
    replica_heals: int = 0
    shortcut_hits: int = 0
    shortcut_stale: int = 0
    shortcut_dead: int = 0
    shortcuts_learned: int = 0
    promotions: int = 0
    demotions: int = 0
    replica_refreshes: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, spec.default)


class AdaptiveDht(Dht):
    """Wrap *inner* with hotspot replication and learned shortcuts.

    Shares the inner substrate's stats and tracer (one counter set,
    one span tree) and exposes ``inner`` so tracer attachment, metrics
    discovery and layer walks see through it.  ``config`` selects the
    behaviour; ``max_replicas=0`` with ``shortcut_capacity=0`` yields
    a pure observation plane (read counting only), which the fig6
    query-balance instrumentation uses.

    *registry*, when given, is where the per-bucket read counters are
    published (source ``"bucket_reads"``) and the plane's own tallies
    (source ``"adaptive"``); by default the plane owns a private
    :class:`~repro.obs.registry.MetricsRegistry`.
    """

    def __init__(
        self,
        inner: Dht,
        config: AdaptiveConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._config = config if config is not None else AdaptiveConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._reads = BucketReadCounters()
        self.metrics.register(READS_SOURCE, self._reads)
        self.adaptive_stats = AdaptiveStats()
        self.metrics.register("adaptive", self.adaptive_stats)
        self._detector = HotspotDetector(
            self.metrics,
            source=READS_SOURCE,
            window_samples=self._config.window_samples,
            hot_share=self._config.hot_share,
            min_reads=self._config.min_window_reads,
        )
        self._replicas = ReplicaDirectory(seed=self._config.seed)
        self._shortcuts = (
            ShortcutTable(self._config.shortcut_capacity)
            if self._config.shortcut_capacity > 0
            else None
        )
        self._pending_learn: OrderedDict[str, int] = OrderedDict()
        self._cold_streak: dict[str, int] = {}
        self._since_sample = 0
        # Share the inner stats object (and tracer, when one is already
        # attached) so the plane's own traffic is metered in one place
        # and index layers keep reading the usual counters.
        self.stats = inner.stats
        self.tracer = inner.tracer

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inner(self) -> Dht:
        """The wrapped substrate."""
        return self._inner

    @property
    def config(self) -> AdaptiveConfig:
        """The plane's configuration."""
        return self._config

    @property
    def detector(self) -> HotspotDetector:
        """The online hotspot detector."""
        return self._detector

    @property
    def replicas(self) -> ReplicaDirectory:
        """The replica directory (which keys are promoted, and K)."""
        return self._replicas

    @property
    def shortcuts(self) -> ShortcutTable | None:
        """The learned shortcut table; None when disabled."""
        return self._shortcuts

    def read_counts(self) -> dict[str, int]:
        """Cumulative per-bucket-key read tallies (a copy)."""
        return self._reads.snapshot()

    def bump_generation(self) -> None:
        """Invalidate every learned shortcut in O(1).

        The wholesale-churn escape hatch, mirroring
        :meth:`~repro.core.cache.LeafCache.bump_generation`; replica
        placement is unaffected (replica keys re-route like any key).
        """
        if self._shortcuts is not None:
            self._shortcuts.bump_generation()

    def close(self) -> None:
        """Forward to the substrate (service runtimes own real loops)."""
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Adaptation engine
    # ------------------------------------------------------------------

    def _note_read(self, key: str) -> None:
        self._reads.inc(key)
        self.adaptive_stats.reads += 1
        self._since_sample += 1
        if self._since_sample >= self._config.sample_every:
            self._since_sample = 0
            self._resample()

    def _resample(self) -> None:
        hot = self._detector.sample()
        for key in hot:
            self._cold_streak.pop(key, None)
            if self._config.max_replicas > 0 and key not in self._replicas:
                self._promote(key)
        for key in self._replicas.keys():
            if key in hot:
                continue
            streak = self._cold_streak.get(key, 0) + 1
            if streak >= self._config.cool_windows:
                self._demote(key, reason="cooled")
            else:
                self._cold_streak[key] = streak

    def _promote(self, key: str) -> None:
        tracer = self.tracer
        if tracer is None:
            self._do_promote(key)
            return
        with tracer.span("adaptive", "promote", key=key) as span:
            span.attrs["replicas"] = self._do_promote(key)

    def _do_promote(self, key: str) -> int:
        """Copy the bucket at *key* to its replica keys; returns how
        many copies were created (0 aborts the promotion)."""
        try:
            value = self._inner.get(key)
        except NodeUnreachableError:
            return 0
        if value is None:
            return 0  # the bucket merged away since the window formed
        load = getattr(value, "load", 0)
        created = 0
        for copy_key in replica_keys(key, self._config.max_replicas):
            try:
                self._inner.put(copy_key, value, records_moved=load)
            except NodeUnreachableError:
                break
            created += 1
            self._learn_owner(copy_key)
        if created:
            self._replicas.add(key, created)
            self.adaptive_stats.promotions += 1
        return created

    def _demote(self, key: str, *, reason: str) -> None:
        count = self._replicas.drop(key)
        if not count:
            return
        self._cold_streak.pop(key, None)
        tracer = self.tracer
        if tracer is None:
            self._do_demote(key, count)
        else:
            with tracer.span(
                "adaptive", "demote", key=key, reason=reason
            ) as span:
                span.attrs["replicas"] = count
                self._do_demote(key, count)
        self.adaptive_stats.demotions += 1

    def _do_demote(self, key: str, count: int) -> None:
        for copy_key in replica_keys(key, count):
            if self._shortcuts is not None:
                self._shortcuts.forget(copy_key)
            try:
                self._inner.remove(copy_key)
            except (DhtKeyError, NodeUnreachableError):
                pass  # the copy is already gone or its peer is dead

    def _refresh_replicas(self, key: str, value: Any) -> None:
        """Write-through a primary update to every copy of *key*.

        A refresh that cannot reach a copy demotes the key instead of
        leaving a diverged replica serving stale answers.
        """
        count = self._replicas.count(key)
        if not count:
            return
        load = getattr(value, "load", 0)
        for copy_key in replica_keys(key, count):
            try:
                self._inner.put(copy_key, value, records_moved=load)
            except NodeUnreachableError:
                self._demote(key, reason="refresh-failed")
                return
        self.adaptive_stats.replica_refreshes += 1

    def _learn_owner(self, target: str) -> None:
        """Spend one metered lookup learning *target*'s owner peer."""
        if self._shortcuts is None:
            return
        try:
            peer = self._inner.lookup(target)
        except NodeUnreachableError:
            return
        self._shortcuts.observe(target, peer)
        self.adaptive_stats.shortcuts_learned += 1

    def _maybe_learn(self, target: str) -> None:
        """Count a routed read of *target* toward shortcut learning."""
        if self._shortcuts is None or target in self._shortcuts:
            return
        pending = self._pending_learn
        seen = pending.pop(target, 0) + 1
        if seen >= self._config.learn_after:
            self._learn_owner(target)
            return
        pending[target] = seen
        while len(pending) > _PENDING_LIMIT:
            pending.popitem(last=False)

    def _adapted(self, key: str) -> bool:
        return key.startswith(_INDEX_PREFIX) and REPLICA_SEP not in key

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        inner = self._inner
        if not self._adapted(key):
            return inner.get(key)
        self._note_read(key)
        target = self._replicas.pick(key)
        stats = self.adaptive_stats
        if self._shortcuts is not None:
            peer = self._shortcuts.propose(target)
            if peer is not None:
                try:
                    value = inner.get_direct(peer, target)
                except NodeUnreachableError:
                    self._shortcuts.forget(target)
                    stats.shortcut_dead += 1
                else:
                    if value is not None:
                        stats.shortcut_hits += 1
                        if target is not key:
                            stats.replica_reads += 1
                        return value
                    self._shortcuts.forget(target)
                    stats.shortcut_stale += 1
                # fall through to the routed read of the same target
        try:
            value = inner.get(target)
        except NodeUnreachableError:
            if target is not key:
                # Surface the failure exactly like a dead primary so
                # the lookup engine evicts its leaf-cache hint; stop
                # steering reads at the dead copy first.
                self._demote(key, reason="unreachable")
            raise
        if target is not key:
            if value is None:
                # The copy vanished underneath the directory (lost to
                # churn); heal and answer from the primary.
                self._demote(key, reason="missing")
                stats.replica_heals += 1
                return inner.get(key)
            stats.replica_reads += 1
        if value is not None:
            self._maybe_learn(target)
        return value

    def get_many(self, keys: Sequence[str]) -> list[Any | None]:
        return _raise_batch_failures(self.get_many_outcomes(keys))

    def get_many_outcomes(self, keys: Sequence[str]) -> list[Any]:
        keys = list(keys)
        if not keys:
            return []
        targets: list[str] = []
        redirected: list[int] = []
        for slot, key in enumerate(keys):
            target = key
            if self._adapted(key):
                self._note_read(key)
                target = self._replicas.pick(key)
                if target is not key:
                    redirected.append(slot)
            targets.append(target)
        outcomes = self._inner.get_many_outcomes(targets)
        stats = self.adaptive_stats
        for slot in redirected:
            outcome = outcomes[slot]
            if outcome is None or isinstance(outcome, BatchFailure):
                # A lost or unreachable copy inside a batch heals in
                # place: demote, then answer the slot from the primary
                # (one extra metered get) so one stale replica never
                # degrades a whole round.
                self._demote(key=keys[slot], reason="batch-failed")
                stats.replica_heals += 1
                try:
                    outcomes[slot] = self._inner.get(keys[slot])
                except NodeUnreachableError as error:
                    outcomes[slot] = BatchFailure(error)
            else:
                stats.replica_reads += 1
        return outcomes

    # ------------------------------------------------------------------
    # Writes: keep replicas write-through coherent
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any, *, records_moved: int = 0) -> None:
        self._inner.put(key, value, records_moved=records_moved)
        self._refresh_replicas(key, value)

    def put_many(
        self,
        items: Sequence[tuple[str, Any]],
        *,
        records_moved: Sequence[int] | None = None,
    ) -> None:
        self._inner.put_many(items, records_moved=records_moved)
        for key, value in items:
            self._refresh_replicas(key, value)

    def rewrite_local(self, key: str, value: Any) -> None:
        # Theorem 5's in-place rewrite: the one surviving bucket of a
        # split/merge keeps its key, so this intercept is exactly the
        # "re-home replicas of one bucket" path.
        self._inner.rewrite_local(key, value)
        self._refresh_replicas(key, value)

    def remove(self, key: str, *, records_moved: int = 0) -> Any:
        value = self._inner.remove(key, records_moved=records_moved)
        self._demote(key, reason="removed")
        if self._shortcuts is not None:
            self._shortcuts.forget(key)
        self._pending_learn.pop(key, None)
        return value

    # ------------------------------------------------------------------
    # Passthrough
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        return self._inner.lookup(key)

    def lookup_many(self, keys: Sequence[str]) -> list[str]:
        return self._inner.lookup_many(keys)

    def get_direct(self, peer: str, key: str) -> Any | None:
        return self._inner.get_direct(peer, key)

    def peek(self, key: str) -> Any | None:
        return self._inner.peek(key)

    def peer_of(self, key: str) -> str:
        return self._inner.peer_of(key)

    def peers(self) -> list[str]:
        return self._inner.peers()

    def items(self) -> Iterator[tuple[str, Any]]:
        # Replica copies are the plane's private state, not index
        # content: without this filter the index's oracle walks
        # (tree_size, check_invariants) would see each hot leaf twice.
        for key, value in self._inner.items():
            if REPLICA_SEP not in key:
                yield key, value

    def key_count(self) -> int:
        # Same replica filter as items(), but via the substrate's
        # non-decoding count: subtract the copies the directory knows
        # it created instead of walking (and unpickling) every value.
        copies = sum(
            self._replicas.count(key) for key in self._replicas.keys()
        )
        return self._inner.key_count() - copies

    # The abstract primitives never run — every public method delegates —
    # but the ABC requires them.

    def _do_lookup(self, key: str) -> str:  # pragma: no cover
        return self._inner._do_lookup(key)

    def _do_get(self, key: str) -> Any | None:  # pragma: no cover
        return self._inner._do_get(key)

    def _do_put(self, key: str, value: Any) -> None:  # pragma: no cover
        self._inner._do_put(key, value)

    def _do_remove(self, key: str) -> Any:  # pragma: no cover
        return self._inner._do_remove(key)

    def _do_contains(self, key: str) -> bool:  # pragma: no cover
        return self._inner._do_contains(key)
