"""Aggregation over range queries without shipping records.

A natural over-DHT extension: for COUNT / SUM / MIN / MAX / AVG over a
region, each visited bucket conceptually returns a constant-size
*partial aggregate* of its matching records instead of the records
themselves.  The decomposition, the DHT-lookup and round costs, and the
probe case analysis are identical to :mod:`repro.core.rangequery`, so
this module reuses the range engine and reduces its output; in a real
deployment the per-bucket response shrinks from the matching records to
one O(1) partial, and ``buckets_visited`` quantifies how many such
partials the answer combined.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.geometry import RegionLike
from repro.core.rangequery import RangeQueryEngine
from repro.core.results import RangeQueryResult
from repro.core.records import Record
from repro.dht.api import Dht


@dataclass(frozen=True, slots=True)
class Aggregate:
    """A combinable partial aggregate (count/sum/min/max of values)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def of_values(cls, values: list[float]) -> "Aggregate":
        if not values:
            return cls()
        return cls(
            count=len(values),
            total=sum(values),
            minimum=min(values),
            maximum=max(values),
        )

    def combine(self, other: "Aggregate") -> "Aggregate":
        """Merge two partials (associative and commutative)."""
        return Aggregate(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        """Average of the aggregated values; NaN when empty."""
        if self.count == 0:
            return math.nan
        return self.total / self.count


@dataclass(frozen=True, slots=True)
class AggregateResult:
    """Aggregate answer plus the paper's two cost measures."""

    aggregate: Aggregate
    lookups: int
    rounds: int
    buckets_visited: int


class AggregateQueryEngine:
    """COUNT/SUM/MIN/MAX/AVG over regions of an m-LIGHT tree."""

    def __init__(self, dht: Dht, dims: int, max_depth: int) -> None:
        self._engine = RangeQueryEngine(dht, dims, max_depth)

    def query(
        self,
        query: RegionLike,
        value_of: Callable[[Record], float] | None = None,
        lookahead: int = 1,
    ) -> AggregateResult:
        """Aggregate over every record matching *query*.

        *value_of* maps a record to the number being aggregated
        (default: the record's value when numeric, else 1.0 so the
        aggregate degenerates to a pure count).
        """
        if value_of is None:
            value_of = _default_value
        result: RangeQueryResult = self._engine.query(query, lookahead)
        aggregate = Aggregate.of_values(
            [value_of(record) for record in result.records]
        )
        return AggregateResult(
            aggregate=aggregate,
            lookups=result.lookups,
            rounds=result.rounds,
            buckets_visited=len(result.visited_leaves),
        )


def _default_value(record: Record) -> float:
    if isinstance(record.value, (int, float)) and not isinstance(
        record.value, bool
    ):
        return float(record.value)
    return 1.0


def count_in(index, query: RegionLike, lookahead: int = 1) -> AggregateResult:
    """COUNT over *query* on any m-LIGHT index."""
    engine = AggregateQueryEngine(
        index.dht, index.dims, index.max_depth
    )
    return engine.query(query, value_of=lambda record: 1.0,
                        lookahead=lookahead)


def sum_in(
    index,
    query: RegionLike,
    value_of: Callable[[Record], float] | None = None,
    lookahead: int = 1,
) -> AggregateResult:
    """SUM (and MIN/MAX/AVG alongside) over *query*."""
    engine = AggregateQueryEngine(
        index.dht, index.dims, index.max_depth
    )
    return engine.query(query, value_of=value_of, lookahead=lookahead)
