"""Range query processing over the m-LIGHT index (Section 6).

The engine implements Algorithms 2 and 3 plus the parallel variant:

1. Locally compute the LCA — the deepest label whose cell resolves the
   query — and probe ``fmd(LCA)``.  By corner preservation (Theorem 1)
   that probe reaches a corner-cell leaf of the LCA's region.
2. From a corner leaf λ inside a target node β, the leaf's label alone
   reconstructs the local tree; every *branch node* between λ and β
   whose region overlaps the query receives the clipped subquery.  The
   branch regions tile β minus λ, so subqueries are disjoint: no bucket
   is visited twice and subqueries proceed in parallel (one round per
   recursion level).
3. The parallel variant (lookahead ``h`` ∈ {2, 4, …}) forwards ``h``
   subqueries per branch node per step: it speculatively descends the
   globally-known space partition ``log2(h)`` extra levels and probes
   the whole frontier in one round — trading bandwidth for latency,
   exactly the Fig. 7 trade-off.

Probe-outcome case analysis (each case is forced by the naming
function's run structure; see ``tests/test_rangequery.py``):

* the returned leaf is a *descendant* of the target β → a corner cell;
  recurse through branch nodes.
* the returned leaf is an *ancestor-or-self* of β → it covers the whole
  subquery; collect and stop.
* no bucket → β lies strictly below some leaf; a point lookup inside
  the subquery finds that leaf, which covers the whole subquery.
* an unrelated leaf is impossible: every leaf named ``fmd(β)`` lies on
  the unique forced-bit run through β, hence is prefix-comparable
  with β.

When the engine carries a :class:`~repro.core.cache.LeafCache`, every
leaf a query visits warms it (and the missing-target fallback lookup
may ride cached hints), so range scans prime subsequent point lookups
in the same region.

Degraded mode: subqueries are disjoint, so a probe that stays
unreachable after the substrate stack's retry budget costs exactly its
own subregion and nothing else.  The engine records that region via
:meth:`~repro.core.results.RangeQueryBuilder.mark_unresolved` and keeps
executing every other probe; the result then carries
``complete=False`` with the unresolved regions enumerated.  A query
over a faulty substrate never raises
:class:`~repro.common.errors.NodeUnreachableError` — it returns what
it could prove, and says what it couldn't.

CPU hot path: with rounds batched (PR 2), local computation dominates
wall-clock.  Every ``region_of_label`` this engine issues (LCA
descent, speculative expansion, branch clipping) hits the memoized
geometry cache, and every ``bucket.matching`` collection runs on the
bucket's columnar store — see ``docs/architecture.md`` ("The hot
path").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import IndexCorruptionError, InvalidRegionError
from repro.common.geometry import (
    Region,
    RegionLike,
    as_region,
    cell_resolves_query,
    clip,
    region_of_label,
)
from repro.common.labels import (
    branch_nodes_between,
    label_depth,
    root_label,
)
from repro.core.bucket import LeafBucket
from repro.core.cache import LeafCache
from repro.core.keys import bucket_key
from repro.core.lookup import PointLookupCursor
from repro.core.naming import naming_function
from repro.core.plane import make_plane
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.dht.api import BatchFailure, Dht

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

__all__ = [
    "RangeQueryEngine",
    "RangeQueryResult",
    "compute_lca",
]


@dataclass(frozen=True, slots=True)
class _Task:
    """One pending subquery: probe *target*'s name for *subquery*.

    ``anchor`` is the deepest label known (or assumed) to exist above
    the target; targets produced by speculative expansion keep their
    pre-expansion anchor so a missing probe can bound its fallback
    search to ``(len(anchor), len(target))``.
    """

    target: str
    subquery: Region
    anchor: str


def compute_lca(query: Region, dims: int, max_depth: int) -> str:
    """Deepest label whose cell resolves *query* (all matches inside).

    Computed locally by the query initiator — space partitioning is
    data independent, so no communication is needed (Section 6).

    Boundary semantics are deliberately mixed: the query is closed,
    cells are half-open, and ``cell_resolves_query`` accepts a query
    face on the cell's upper face only at the global boundary 1.0.  At
    most one child can resolve at each level, so greedy descent finds
    *the* LCA; ``tests/test_rangequery.py`` codifies this against an
    exhaustive point-level baseline for dims 1–4, including faces on
    binary split planes (this is also the label prefix multicast
    routes to, so a wrong LCA would silently drop matches).
    """
    label = root_label(dims)
    while label_depth(label, dims) < max_depth:
        for child in (label + "0", label + "1"):
            if cell_resolves_query(region_of_label(child, dims), query):
                label = child
                break
        else:
            break
    return label


class RangeQueryEngine:
    """Executes range queries; one instance per (dht, geometry).

    *batched* selects the execution plane: batched (the default) issues
    each recursion level's independent probes as one
    :meth:`~repro.dht.api.Dht.get_many` round, sequential issues one
    ``get`` per probe.  Answers and per-element lookup meters are
    identical either way — the plane only changes round structure.
    """

    def __init__(
        self,
        dht: Dht,
        dims: int,
        max_depth: int,
        cache: LeafCache | None = None,
        *,
        batched: bool = True,
        tracer: "Tracer | None" = None,
    ) -> None:
        self._dht = dht
        self._dims = dims
        self._max_depth = max_depth
        self._cache = cache
        self.tracer = tracer
        self._plane = make_plane(dht, batched, tracer)

    def query(
        self, query: RegionLike, lookahead: int = 1
    ) -> RangeQueryResult:
        """Return every record matching the closed region *query*.

        *query* is a :class:`Region` or a ``(lows, highs)`` pair.
        ``lookahead=1`` is the basic algorithm; powers of two >= 2
        select the parallel variant with that many subqueries per
        branch node per step.
        """
        query = as_region(query)
        if query.dims != self._dims:
            raise InvalidRegionError(
                f"query has {query.dims} dims, index has {self._dims}"
            )
        if lookahead < 1 or lookahead & (lookahead - 1):
            raise InvalidRegionError(
                f"lookahead must be a power of two >= 1, got {lookahead}"
            )
        levels = lookahead.bit_length() - 1
        tracer = self.tracer
        if tracer is None:
            return self._execute(query, levels)
        with tracer.span(
            "query",
            "range",
            lookahead=1 << levels,
            lows=list(query.lows),
            highs=list(query.highs),
        ) as span:
            result = self._execute(query, levels)
            span.attrs["lookups"] = result.lookups
            span.attrs["rounds"] = result.rounds
            span.attrs["batch_rounds"] = result.batch_rounds
            span.attrs["records"] = len(result.records)
            span.attrs["complete"] = result.complete
            return result

    def _execute(self, query: Region, levels: int) -> RangeQueryResult:
        builder = RangeQueryBuilder()
        batch_rounds_before = self._dht.stats.batch_rounds
        lca = compute_lca(query, self._dims, self._max_depth)
        tasks = [_Task(lca, query, root_label(self._dims))]
        pending: list[tuple[PointLookupCursor, Region]] = []
        while tasks or pending:
            tasks, pending = self._run_round(
                tasks, pending, levels, query, builder
            )
        builder.batch_rounds = (
            self._dht.stats.batch_rounds - batch_rounds_before
        )
        if self._plane.batched:
            # Reconcile the latency meters: under the batched plane
            # every issued wave is normally exactly one batch round, so
            # ``rounds == batch_rounds``.  A retry wrapper, however,
            # re-issues a failed sub-batch as its *own* wire round
            # within the same wave — extra sequential latency the
            # wave count alone would under-report.  ``rounds`` is the
            # longest chain of sequential DHT-lookups, so it absorbs
            # the retry rounds; fault-free queries are unaffected.
            builder.rounds = max(builder.rounds, builder.batch_rounds)
        return builder.build()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_round(
        self,
        tasks: list[_Task],
        pending: list[tuple[PointLookupCursor, Region]],
        levels: int,
        query: Region,
        builder: RangeQueryBuilder,
    ) -> tuple[list[_Task], list[tuple[PointLookupCursor, Region]]]:
        """Issue one parallel round and dispatch its outcomes.

        A round carries every independent probe in flight: the new
        frontier (this wave's targets — branch regions are disjoint,
        so their probes never depend on each other) plus the next step
        of every fallback chain still running from earlier waves.  A
        chain only depends on its own earlier probes, never on later
        frontiers, so it advances *concurrently* with them — exactly
        the paper's latency model, where ``rounds`` equals the number
        of issued rounds: the longest chain pushes the loop exactly
        ``len(chain)`` iterations past the wave that spawned it.

        Targets that turn out missing open a point-lookup cursor
        (Algorithm 2's fallback) whose first probe — dependent on this
        round's miss — joins the *next* round.  Outcomes are processed
        in issuance order, so collection order, and therefore the
        result, is identical on both planes.

        Unreachable probes (a :class:`~repro.dht.api.BatchFailure`
        slot — the plane captures them so one dead probe never aborts
        the round) degrade per-slot: a failed frontier probe marks its
        disjoint subquery unresolved, a failed cursor step either
        re-routes (dead cache hint, see
        :meth:`~repro.core.lookup.PointLookupCursor.probe_failed`) or
        marks the cursor's subquery unresolved.  Every other slot in
        the round is dispatched normally.
        """
        builder.open_round()
        frontier: list[_Task] = []
        for task in tasks:
            frontier.extend(self._expand(task, levels))
        keys = [
            bucket_key(naming_function(task.target, self._dims))
            for task in frontier
        ]
        step_keys = [cursor.current_key() for cursor, _ in pending]
        builder.lookups += len(keys) + len(step_keys)
        outcomes = self._plane.get_round(keys + step_keys)

        still_pending: list[tuple[PointLookupCursor, Region]] = []
        for (cursor, subquery), bucket in zip(
            pending, outcomes[len(keys):]
        ):
            if isinstance(bucket, BatchFailure):
                if cursor.probe_failed():
                    still_pending.append((cursor, subquery))
                else:
                    self._mark_unresolved(builder, subquery)
                continue
            cursor.advance(bucket)
            if cursor.done:
                self._collect(cursor.result.bucket, query, builder)
            else:
                still_pending.append((cursor, subquery))

        next_tasks: list[_Task] = []
        for task, bucket in zip(frontier, outcomes[: len(keys)]):
            if isinstance(bucket, BatchFailure):
                self._mark_unresolved(builder, task.subquery)
            elif bucket is None:
                still_pending.append(
                    (self._fallback_cursor(task), task.subquery)
                )
            else:
                self._dispatch(task, bucket, query, builder, next_tasks)
        return next_tasks, still_pending

    def _expand(self, task: _Task, levels: int) -> list[_Task]:
        """Speculative frontier of *task* ``levels`` deeper (parallel
        variant); the frontier cells tile the target cell, so coverage
        is preserved.  ``levels == 0`` returns the task unchanged."""
        frontier = [task]
        for _ in range(levels):
            deeper: list[_Task] = []
            for item in frontier:
                if label_depth(item.target, self._dims) >= self._max_depth:
                    deeper.append(item)
                    continue
                for child in (item.target + "0", item.target + "1"):
                    clipped = clip(
                        item.subquery, region_of_label(child, self._dims)
                    )
                    if clipped is not None:
                        deeper.append(_Task(child, clipped, item.anchor))
            frontier = deeper
        return frontier

    def _dispatch(
        self,
        task: _Task,
        bucket: LeafBucket,
        query: Region,
        builder: RangeQueryBuilder,
        next_tasks: list[_Task],
    ) -> None:
        """Dispatch on one resolved probe outcome for *task*."""
        label = bucket.label
        if task.target.startswith(label):
            # Ancestor-or-self: this one leaf covers the whole subquery.
            # (Fallback-resolved targets always land here: the covering
            # leaf of a missing target is a proper ancestor of it.)
            self._collect(bucket, query, builder)
            return
        if label.startswith(task.target):
            # Corner-cell leaf inside the target: collect it, then
            # forward the clipped subquery to each overlapping branch
            # node between the leaf and the target (Algorithm 3).
            self._collect(bucket, query, builder)
            for branch in branch_nodes_between(
                label, task.target, self._dims
            ):
                clipped = clip(
                    task.subquery, region_of_label(branch, self._dims)
                )
                if clipped is not None:
                    next_tasks.append(_Task(branch, clipped, branch))
            return
        raise IndexCorruptionError(
            f"leaf {label!r} named "
            f"{naming_function(task.target, self._dims)!r} is not "
            f"prefix-comparable with target {task.target!r}; the naming "
            "invariant is broken"
        )

    def _fallback_cursor(self, task: _Task) -> PointLookupCursor:
        """Point-lookup cursor for a missing target.

        The covering leaf is a proper ancestor of the target and (when
        the target came from speculative expansion below a node known
        to exist) lies strictly below the task's anchor, so the search
        interval is at most the expansion depth — usually one probe.
        """
        min_length = None
        if task.target.startswith(task.anchor) and task.target != task.anchor:
            # The anchor exists (it may itself be the covering leaf),
            # so the target's covering leaf is no shorter than it.
            min_length = len(task.anchor)
        return PointLookupCursor(
            self._dht.stats,
            task.subquery.lows,
            self._dims,
            self._max_depth,
            min_label_length=min_length,
            max_label_length=len(task.target) - 1,
            cache=self._cache,
            tracer=self.tracer,
        )

    def _mark_unresolved(
        self, builder: RangeQueryBuilder, region: Region
    ) -> None:
        """Record a degraded subregion, annotating the active trace."""
        builder.mark_unresolved(region)
        if self.tracer is not None:
            self.tracer.event(
                "unresolved",
                lows=list(region.lows),
                highs=list(region.highs),
            )

    def _collect(
        self, bucket: LeafBucket, query: Region, builder: RangeQueryBuilder
    ) -> None:
        """Add *bucket*'s matching records once (leaves are disjoint, so
        per-leaf dedup makes the result set exact), warming the cache
        with the visited leaf."""
        if self._cache is not None:
            self._cache.observe(bucket.label)
        if bucket.label in builder.visited_leaves:
            return
        builder.collect(bucket.label, bucket.matching(query))