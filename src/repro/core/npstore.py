"""Vectorized record store and batch label packing (numpy backend).

The ``"numpy"`` backend keeps one ``float64`` ndarray per dimension and
answers ``matching`` with the same plan as the columnar store —
binary-search narrowing on the sort dimension, then per-dimension
filtering — but every step runs as a whole-column vectorized operation:
``searchsorted`` bounds the candidate run, boolean-mask reduction
filters it, and one ``sort`` restores insertion order.  Answers are
bit-identical to the naive scan (same IEEE-754 compares on the same
doubles, order restored by position), which the equivalence sweep in
``tests/test_hotpath_equivalence.py`` asserts.

The bulk-load path never materialises :class:`~repro.core.records.
Record` objects: a coordinate matrix enters as
:class:`~repro.core.store.Rows` with ndarray columns,
:func:`partition_ndarray_rows` splits whole columns per tree level, and
:func:`validate_columns` (fixed-point scaling, the same
``int(c * 2**60)`` packing :func:`repro.common.labels.coordinate_bits`
uses) replaces per-record construction-time validation.
:func:`batch_interleave` exposes the packing as vectorized Morton/label
interleaving, bit-equal to :func:`repro.common.labels.interleave`.

numpy is an *optional* dependency (the ``[bench]`` extra): when the
import fails, :mod:`repro.core.store` transparently falls back to the
columnar backend with a one-time warning, so configs saying
``store="numpy"`` keep working everywhere.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from repro.common.errors import InvalidPointError
from repro.common.labels import MAX_RESOLUTION_BITS
from repro.core.records import Record
from repro.core.store import RecordStore, Rows

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "NumpyStore",
    "batch_interleave",
    "batch_morton_codes",
    "partition_ndarray_rows",
    "validate_columns",
    "warn_numpy_missing",
]

_SCALE = float(1 << MAX_RESOLUTION_BITS)

_warned_missing = False


def warn_numpy_missing() -> None:
    """Emit (once) the numpy-unavailable fallback warning."""
    global _warned_missing
    if _warned_missing:
        return
    _warned_missing = True
    warnings.warn(
        "numpy is not installed; the 'numpy' record store falls back to "
        "'columnar' (install the [bench] extra for the vectorized path)",
        RuntimeWarning,
        stacklevel=3,
    )


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ImportError(
            "numpy is required for repro.core.npstore vectorized helpers"
        )


# ----------------------------------------------------------------------
# Batch fixed-point packing (vectorized labels.coordinate_bits)
# ----------------------------------------------------------------------


def validate_columns(columns) -> list:
    """Check every coordinate lies in ``[0, 1)``; return uint64 packing.

    The returned arrays hold ``int(c * 2**60)`` per coordinate — exact,
    because a power-of-two multiply only changes the float's exponent —
    which is precisely the fixed-point form the label machinery's
    :func:`~repro.common.labels.coordinate_bits` derives bits from.
    One vectorized pass replaces per-record ``Record.make`` validation
    on the bulk-load fast path.
    """
    _require_numpy()
    scaled = []
    for dim, column in enumerate(columns):
        column = np.asarray(column, dtype=np.float64)
        if column.size and (
            float(column.min()) < 0.0 or float(column.max()) >= 1.0
        ):
            raise InvalidPointError(
                f"coordinate outside [0, 1) in dimension {dim}"
            )
        scaled.append((column * _SCALE).astype(np.uint64))
    return scaled


def batch_morton_codes(columns, depth: int):
    """Morton codes (as uint64) of every point, vectorized.

    Bit ``k`` (MSB first) of each code is bit ``k // m + 1`` of
    coordinate ``k % m`` — the exact interleaving rule of
    :func:`repro.common.labels.interleave`.
    """
    _require_numpy()
    if not 0 <= depth <= MAX_RESOLUTION_BITS:
        raise InvalidPointError(
            f"bit depth {depth} outside [0, {MAX_RESOLUTION_BITS}]"
        )
    scaled = validate_columns(columns)
    dims = len(scaled)
    count = len(scaled[0]) if dims else 0
    codes = np.zeros(count, dtype=np.uint64)
    for k in range(depth):
        position = k // dims + 1
        shift = np.uint64(MAX_RESOLUTION_BITS - position)
        bit = (scaled[k % dims] >> shift) & np.uint64(1)
        codes = (codes << np.uint64(1)) | bit
    return codes


def batch_interleave(points, depth: int) -> list[str]:
    """Vectorized :func:`repro.common.labels.interleave` over a batch.

    *points* is an ``(n, m)`` coordinate matrix (or anything
    ``np.asarray`` makes one of); returns the *depth*-bit Morton string
    of every row, bit-identical to the scalar implementation.
    """
    _require_numpy()
    matrix = np.asarray(points, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidPointError(
            f"expected an (n, dims) coordinate matrix, got shape "
            f"{matrix.shape}"
        )
    codes = batch_morton_codes(list(matrix.T), depth)
    if depth == 0:
        return [""] * len(codes)
    return [format(code, f"0{depth}b") for code in codes.tolist()]


# ----------------------------------------------------------------------
# Column-level partitioning for the bulk-load recursion
# ----------------------------------------------------------------------


def rows_from_matrix(points, dims: int) -> Rows:
    """Build :class:`Rows` (values all None) from an ``(n, m)`` matrix,
    validating every coordinate in one vectorized pass."""
    _require_numpy()
    matrix = np.asarray(points, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != dims:
        raise InvalidPointError(
            f"expected an (n, {dims}) coordinate matrix, got shape "
            f"{matrix.shape}"
        )
    columns = [np.ascontiguousarray(matrix[:, dim]) for dim in range(dims)]
    validate_columns(columns)
    return Rows(dims, columns, None)


def _take_rows(rows: Rows, positions) -> Rows:
    columns = [np.asarray(column)[positions] for column in rows.columns]
    values = (
        None
        if rows.values is None
        else tuple(rows.values[int(i)] for i in positions)
    )
    return Rows(rows.dims, columns, values)


def partition_ndarray_rows(
    rows: Rows, dim: int, midpoint: float
) -> tuple[Rows, Rows]:
    """Vectorized ``partition_records``: one boolean mask per level.

    The compare runs on the same doubles the scalar path compares, so
    membership (and insertion order, preserved by positional indexing)
    is bit-identical to the record-list partition.
    """
    _require_numpy()
    column = np.asarray(rows.columns[dim])
    upper = column >= midpoint
    return (
        _take_rows(rows, np.flatnonzero(~upper)),
        _take_rows(rows, np.flatnonzero(upper)),
    )


# ----------------------------------------------------------------------
# The vectorized record store
# ----------------------------------------------------------------------


class NumpyStore(RecordStore):
    """Per-dimension ndarray columns with mask-reduction matching.

    Two interchangeable sources of truth keep both the mutation path
    and the bulk path cheap:

    * ``_records`` — a plain record list, present after any
      ``add``/``remove`` (mutations are O(1) list edits);
    * insertion-order ndarray columns, present when the store was built
      :meth:`from_rows` (bulk load) — records are only materialised if
      someone asks for objects.

    The query snapshot (stable argsort on the sort dimension plus
    sorted columns) is rebuilt lazily, tagged by the generation counter
    — never a count compare.
    """

    kind = "numpy"

    __slots__ = (
        "_records",
        "_columns",
        "_values",
        "_order",
        "_sorted",
        "_built_generation",
    )

    def __init__(
        self, dims: int, sort_dim: int, records: Sequence[Record] = ()
    ) -> None:
        _require_numpy()
        super().__init__(dims, sort_dim)
        self._records: list[Record] | None = list(records)
        self._columns: list | None = None
        self._values: tuple | None = None
        self._order = None
        self._sorted: list | None = None
        self._built_generation = -1

    # -- sources of truth ------------------------------------------------

    @property
    def count(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._columns[0]) if self._columns else 0

    def _materialize_records(self) -> list[Record]:
        records = self._records
        if records is None:
            lists = [column.tolist() for column in self._columns]
            values = self._values
            if values is None:
                records = [Record(key) for key in zip(*lists)]
            else:
                records = [
                    Record(key, value)
                    for key, value in zip(zip(*lists), values)
                ]
            if not lists:
                records = []
            self._records = records
        return records

    def _insertion_columns(self) -> list:
        if self._columns is not None:
            return self._columns
        records = self._records
        self._columns = [
            np.fromiter(
                (record.key[dim] for record in records),
                dtype=np.float64,
                count=len(records),
            )
            for dim in range(self.dims)
        ]
        return self._columns

    # -- mutations -------------------------------------------------------

    def add(self, record: Record) -> None:
        self._materialize_records().append(record)
        self._columns = None
        self._values = None
        self.generation += 1

    def remove(self, record: Record) -> bool:
        records = self._materialize_records()
        try:
            records.remove(record)
        except ValueError:
            return False
        self._columns = None
        self._values = None
        self.generation += 1
        return True

    # -- queries ---------------------------------------------------------

    def _ensure_snapshot(self) -> None:
        if (
            self._sorted is not None
            and self._built_generation == self.generation
        ):
            return
        columns = self._insertion_columns()
        order = np.argsort(columns[self.sort_dim], kind="stable")
        self._order = order
        self._sorted = [column[order] for column in columns]
        self._built_generation = self.generation

    def matching(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> list[Record]:
        if self.count == 0:
            return []
        self._ensure_snapshot()
        sort_dim = self.sort_dim
        column = self._sorted[sort_dim]
        start = int(np.searchsorted(column, lows[sort_dim], side="left"))
        stop = int(np.searchsorted(column, highs[sort_dim], side="right"))
        if start >= stop:
            return []
        mask = None
        for dim, sorted_column in enumerate(self._sorted):
            if dim == sort_dim:
                continue
            segment = sorted_column[start:stop]
            dim_mask = (segment >= lows[dim]) & (segment <= highs[dim])
            mask = dim_mask if mask is None else (mask & dim_mask)
        if mask is None:  # one-dimensional: the bisect bounds decide
            positions = self._order[start:stop]
        else:
            positions = self._order[start + np.flatnonzero(mask)]
        # Materialised once per store (cached), then answers are plain
        # list indexing — building a fresh Record per match per query
        # would dominate the vectorized filter it sits behind.
        records = self._materialize_records()
        return [records[i] for i in np.sort(positions).tolist()]

    # -- interchange -----------------------------------------------------

    def records(self) -> list[Record]:
        return self._materialize_records()

    def payload_values(self) -> tuple | None:
        if self._records is None:
            return self._values  # bulk path: no Record materialisation
        return super().payload_values()

    def to_rows(self) -> Rows:
        columns = self._insertion_columns()
        if self._records is not None:
            values = (
                tuple(record.value for record in self._records)
                if any(
                    record.value is not None for record in self._records
                )
                else None
            )
        else:
            values = self._values
        return Rows(self.dims, columns, values)

    @classmethod
    def from_rows(cls, rows: Rows, sort_dim: int) -> "NumpyStore":
        store = cls(rows.dims, sort_dim)
        store._records = None
        store._columns = [
            np.ascontiguousarray(np.asarray(column, dtype=np.float64))
            for column in rows.columns
        ]
        values = rows.values
        if values is not None and all(value is None for value in values):
            values = None
        store._values = values
        return store
