"""Immutable query-result objects shared by every engine.

Every public query operation answers with a frozen dataclass carrying
the paper's two cost measures (Section 7):

* ``lookups`` — bandwidth: how many metered DHT-lookups the operation
  spent (cache hint probes included; hints are metered probes, never
  oracle reads);
* ``rounds`` — latency: the longest chain of sequential DHT-lookups.

Results are *values*: once an engine hands one out, nothing mutates it.
Engines and baselines accumulate into a :class:`RangeQueryBuilder` and
construct the frozen :class:`RangeQueryResult` in exactly one place —
:meth:`RangeQueryBuilder.build` — so no call site pokes fields onto a
result after the fact.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.common.geometry import Region
from repro.core.bucket import LeafBucket
from repro.core.records import Record


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of one point lookup: the covering bucket plus its cost."""

    bucket: LeafBucket
    lookups: int
    rounds: int


@dataclass(frozen=True, slots=True)
class RangeQueryResult:
    """Records matching a range query, plus the paper's two costs.

    ``batch_rounds`` additionally reports how many batched DHT rounds
    the query issued on the execution plane (0 under the sequential
    plane) — a diagnostic for the round structure, not a paper metric.

    ``complete`` is the partial-result contract of degraded mode: True
    means every subquery probe resolved and ``records`` is the exact
    answer; False means some probes stayed unreachable after the retry
    budget and ``unresolved`` enumerates the subregions whose matches
    (if any) are missing.  Records actually returned are always true
    matches — degradation loses coverage, never correctness.
    """

    records: tuple[Record, ...] = ()
    lookups: int = 0
    rounds: int = 0
    visited_leaves: frozenset[str] = frozenset()
    batch_rounds: int = 0
    complete: bool = True
    unresolved: tuple[Region, ...] = ()


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One k-NN answer: a record and its Euclidean distance."""

    record: Record
    distance: float


@dataclass(frozen=True, slots=True)
class KnnResult:
    """Top-k neighbours plus the paper's two cost measures.

    ``complete=False`` marks a degraded answer: some ring range query
    could not resolve part of its box, so a true neighbour may be
    missing from ``neighbors``.  The listed neighbours are still real
    records at their true distances.
    """

    neighbors: tuple[Neighbor, ...]
    lookups: int
    rounds: int
    complete: bool = True


@dataclass(slots=True)
class RangeQueryBuilder:
    """Mutable accumulator used internally by range-query engines.

    Field names mirror :class:`RangeQueryResult` so accumulation code
    reads the same as before the results were frozen; :meth:`build` is
    the single construction site of the immutable result.
    """

    records: list[Record] = field(default_factory=list)
    lookups: int = 0
    rounds: int = 0
    visited_leaves: set[str] = field(default_factory=set)
    batch_rounds: int = 0
    waves: int = 0
    unresolved: list[Region] = field(default_factory=list)

    def open_round(self) -> int:
        """Account one issued round of parallel probes; return its depth.

        ``rounds`` — the longest chain of *sequential* DHT-lookups — is
        derived from round issuance, never hand-counted: the engine
        opens exactly one round per loop iteration, every probe in
        flight (frontier and fallback-chain steps alike) rides it, and
        a chain spawned at depth ``d`` keeps the loop alive through
        depth ``d + len(chain)``.  So the final ``rounds`` equals
        ``max(waves, max_k(depth_k + chain_k))`` with no bookkeeping at
        the call sites.
        """
        self.waves += 1
        self.rounds = max(self.rounds, self.waves)
        return self.waves

    def collect(self, label: str, matches: Iterable[Record]) -> bool:
        """Add one visited leaf's matching records exactly once.

        Leaves are disjoint, so per-leaf dedup keeps the result set
        exact; returns False when *label* was already collected.
        """
        if label in self.visited_leaves:
            return False
        self.visited_leaves.add(label)
        self.records.extend(matches)
        return True

    def mark_unresolved(self, region: Region) -> None:
        """Record a subregion whose probe stayed unreachable.

        The built result will carry ``complete=False``; the engine
        keeps collecting every other subquery — degradation is
        per-region, never whole-query.
        """
        self.unresolved.append(region)

    def build(self) -> RangeQueryResult:
        """Freeze the accumulated state into a result value."""
        return RangeQueryResult(
            records=tuple(self.records),
            lookups=self.lookups,
            rounds=self.rounds,
            visited_leaves=frozenset(self.visited_leaves),
            batch_rounds=self.batch_rounds,
            complete=not self.unresolved,
            unresolved=tuple(self.unresolved),
        )
