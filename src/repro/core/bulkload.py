"""Bulk loading: build the index tree offline, then place the buckets.

Theorem 6 speaks about the *static* optimum: "for a given data set and
an expected number of buckets, the data-aware index splitting strategy
minimizes the variance of expected load".  Incremental insertion only
approximates that optimum, because early splits are made with partial
knowledge.  Bulk loading realises the static case: the whole dataset is
partitioned locally in one pass (threshold recursion or Algorithm 1 at
the root), and each resulting leaf bucket is placed with a single
DHT-put.

Costs: exactly one put per bucket and one transfer per record — the
floor any over-DHT construction can reach — versus the per-insert
lookup and split bills of incremental maintenance (compare ablation
A4).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.labels import root_label
from repro.core import npstore
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key
from repro.core.naming import naming_function
from repro.core.records import Record
from repro.core.split import SplitStrategy, ThresholdSplit
from repro.core.store import Rows
from repro.dht.api import Dht


def coerce_bulk_items(items, dims: int):
    """Normalise a bulk-load input to Rows or a list of records.

    A numpy ``(n, dims)`` matrix becomes a :class:`Rows` block backed by
    its columns — validated vectorially, never materialised as
    :class:`Record` objects.  A ``Rows`` block passes through.  Anything
    else goes item-by-item through :meth:`Record.coerce`, the same rule
    ``MLightIndex.insert_many`` uses.
    """
    if isinstance(items, Rows):
        if items.dims != dims:
            raise ReproError(
                f"Rows carry {items.dims} dims, config says {dims}"
            )
        return items
    if npstore.HAVE_NUMPY and hasattr(items, "__array_interface__"):
        return npstore.rows_from_matrix(items, dims)
    return [Record.coerce(item, dims=dims) for item in items]


def plan_bulk_tree(
    records,
    config: IndexConfig,
    strategy: SplitStrategy,
):
    """Partition *records* into the strategy's static leaf set.

    Applies the strategy's split planner once at the root over the full
    dataset; for :class:`~repro.core.split.DataAwareSplit` this is
    exactly Algorithm 1 in its Theorem-6 setting.  *records* is a list
    of :class:`Record` or a columnar :class:`Rows` block — the
    partition recursion handles both, and plan leaves keep the input's
    representation.
    """
    root = root_label(config.dims)
    plan = strategy.plan_split(
        root, records, config.dims, config.max_depth
    )
    if plan is None:
        return [(root, records)]
    return list(plan.leaves)


def bulk_load(
    dht: Dht,
    items: Iterable,
    config: IndexConfig | None = None,
    strategy: SplitStrategy | None = None,
) -> list[tuple[str, int]]:
    """Build and place an m-LIGHT tree for *items* on *dht*.

    *items* are ``Record`` objects, ``(key, value)`` pairs, or bare
    keys — normalised by :meth:`Record.coerce`, the same rule
    ``MLightIndex.insert_many`` uses — or an ``(n, dims)`` numpy matrix
    / :class:`Rows` block, which flows column-wise through partitioning
    and into the buckets' stores without ever materialising ``Record``
    objects (the vectorized fast path).  Returns ``(label, load)`` for
    every placed bucket.  The DHT must not already carry an m-LIGHT
    tree (bulk loading replaces, it does not merge).

    Attach a :class:`~repro.core.index.MLightIndex` afterwards for
    queries and further maintenance — it detects the existing tree and
    skips bootstrap::

        placed = bulk_load(dht, points, config)
        index = MLightIndex(dht, config)
    """
    config = config if config is not None else IndexConfig()
    if strategy is None:
        strategy = ThresholdSplit(
            config.split_threshold, config.merge_threshold
        )
    root_key = bucket_key("0" * config.dims)
    if dht.peek(root_key) is not None:
        raise ReproError(
            "the DHT already carries an m-LIGHT tree; bulk_load builds "
            "from scratch"
        )

    records = coerce_bulk_items(items, config.dims)

    leaves = plan_bulk_tree(records, config, strategy)
    placed = []
    pairs = []
    moved = []
    for label, leaf_records in leaves:
        bucket = LeafBucket(
            label, config.dims, leaf_records, store=config.store
        )
        pairs.append(
            (bucket_key(naming_function(label, config.dims)), bucket)
        )
        moved.append(bucket.load)
        placed.append((label, bucket.load))
    # Placements are independent (one routed put per leaf), so under
    # the batched plane they go out as one parallel round; the metered
    # cost — one put and one lookup per bucket, one transfer per
    # record — is identical on both planes.
    if config.execution == "batched":
        dht.put_many(pairs, records_moved=moved)
    else:
        for (key, bucket), load in zip(pairs, moved):
            dht.put(key, bucket, records_moved=load)
    return placed
