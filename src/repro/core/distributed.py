"""Peer-side (truly distributed) range-query execution.

The client-orchestrated :class:`~repro.core.rangequery.RangeQueryEngine`
issues every probe from one place — faithful to OpenDHT-style
deployments where applications use a remote put/get service.  The paper
however narrates peer-to-peer forwarding: "Upon receiving the range
query, the corner cell constructs a local tree … Ri is forwarded to βi
via a DHT-lookup" (Section 6).  This module implements that execution
model literally:

* every DHT peer hosts a query agent (a second handler registered at
  ``<peer>#mlight`` on the simulated network);
* a subquery forwarded to node β costs one DHT-lookup (routing to the
  owner of ``fmd(β)``) plus one network message to that peer's agent;
* the receiving agent reads the bucket *from its own store at zero
  cost* — it is the owner — collects matches, and recursively forwards
  to its branch nodes.

Peer agents share the client engine's CPU fast path: the buckets they
read from their own stores filter matches through the columnar record
store (``bucket.matching``), and branch-region clipping rides the
memoized ``region_of_label`` cache, so the deployment comparison stays
apples-to-apples after the hot-loop optimisations.

The punchline, asserted by ``tests/test_distributed.py``: answers,
DHT-lookup counts and round counts are *identical* to the
client-orchestrated engine.  One probe per visited node either way —
the paper's cost model does not distinguish the two deployments, which
is why the reproduction can use the fast engine everywhere else.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ReproError
from repro.common.geometry import Region, clip, region_of_label
from repro.common.labels import branch_nodes_between
from repro.core.keys import bucket_key
from repro.core.lookup import lookup_point
from repro.core.naming import naming_function
from repro.core.rangequery import compute_lca
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.core.records import Record
from repro.dht.api import Dht
from repro.net.message import Message

#: Suffix appended to a peer's network address for its query agent.
AGENT_SUFFIX = "#mlight"


class PeerQueryAgent:
    """The query executor co-located with one DHT peer."""

    def __init__(self, runtime: "DistributedQueryRuntime", node: Any) -> None:
        self._runtime = runtime
        self._node = node
        self.address = node.name + AGENT_SUFFIX

    def handle_rpc(self, message: Message) -> Any:
        args, kwargs = message.payload
        if message.msg_type != "execute":
            raise ReproError(f"unknown agent RPC {message.msg_type!r}")
        return self.execute(*args, **kwargs)

    def execute(
        self, target: str, subquery: Region, query: Region
    ) -> tuple[list[Record], list[str], int]:
        """Process a subquery this peer received for node *target*.

        Returns (matching records, visited leaf labels, rounds consumed
        by this subtree).  The bucket named ``fmd(target)`` is read from
        the local store — this peer owns it, that is why the subquery
        was routed here.
        """
        runtime = self._runtime
        name = naming_function(target, runtime.dims)
        bucket = self._node.store.get(bucket_key(name))

        if bucket is None:
            return self._fallback(target, subquery, query)

        label = bucket.label
        if target.startswith(label):
            # Ancestor-or-self: one leaf covers the whole subquery.
            return list(bucket.matching(query)), [label], 0

        if not label.startswith(target):
            raise ReproError(
                f"leaf {label!r} at name {name!r} is not "
                f"prefix-comparable with target {target!r}"
            )

        records = list(bucket.matching(query))
        visited = [label]
        branches = []
        for branch in branch_nodes_between(label, target, runtime.dims):
            clipped = clip(
                subquery, region_of_label(branch, runtime.dims)
            )
            if clipped is not None:
                branches.append((branch, clipped))
        deepest = 0
        for child_records, child_visited, child_rounds in runtime.forward_all(
            self._node.name, branches, query
        ):
            records.extend(child_records)
            visited.extend(child_visited)
            deepest = max(deepest, child_rounds)
        return records, visited, deepest

    def _fallback(
        self, target: str, subquery: Region, query: Region
    ) -> tuple[list[Record], list[str], int]:
        """Missing target: its covering leaf is an ancestor; find it by
        a bounded point lookup issued from this peer."""
        runtime = self._runtime
        found = lookup_point(
            runtime.dht,
            subquery.lows,
            runtime.dims,
            runtime.max_depth,
            max_label_length=len(target) - 1,
        )
        bucket = found.bucket
        return (
            list(bucket.matching(query)),
            [bucket.label],
            found.rounds,
        )


class DistributedQueryRuntime:
    """Installs query agents on every peer of a routed DHT and runs
    range queries by actual peer-to-peer forwarding."""

    def __init__(self, dht: Dht, dims: int, max_depth: int) -> None:
        nodes = getattr(dht, "_nodes", None)
        network = getattr(dht, "network", None)
        if not nodes or network is None:
            raise ReproError(
                "distributed execution needs a routed substrate with "
                "peers (Chord/Kademlia/Pastry); LocalDht has no peers "
                "to host agents on"
            )
        self.dht = dht
        self.dims = dims
        self.max_depth = max_depth
        self._network = network
        self._agents: dict[str, PeerQueryAgent] = {}
        for node in nodes.values():
            agent = PeerQueryAgent(self, node)
            network.register(agent.address, agent)
            self._agents[node.name] = agent

    def forward(
        self, src_peer: str, target: str, subquery: Region, query: Region
    ) -> tuple[list[Record], list[str], int]:
        """Route a subquery to the owner of ``fmd(target)``.

        One DHT-lookup (the routing) plus one agent message; the child's
        round count is incremented by the hop.
        """
        name = naming_function(target, self.dims)
        owner = self.dht.lookup(bucket_key(name))
        records, visited, rounds = self._network.rpc(
            src_peer + AGENT_SUFFIX,
            owner + AGENT_SUFFIX,
            "execute",
            target,
            subquery,
            query,
        )
        return records, visited, rounds + 1

    def forward_all(
        self,
        src_peer: str,
        branches: list[tuple[str, Region]],
        query: Region,
    ) -> list[tuple[list[Record], list[str], int]]:
        """Forward one agent's branch subqueries as one parallel round.

        This is the paper's "Ri is forwarded to βi" step executed the
        way Section 6 narrates it — all branch subqueries of one node
        go out together: one ``lookup_many`` resolves every owner, then
        the agent messages ride a single network message round (each
        forward its own chain).  Per-branch costs are unchanged — one
        DHT-lookup plus one agent message each, child rounds
        incremented by the hop — only the latency structure is
        parallel.
        """
        if not branches:
            return []
        owners = self.dht.lookup_many(
            [
                bucket_key(naming_function(target, self.dims))
                for target, _ in branches
            ]
        )
        results = []
        with self._network.message_round() as round_:
            for (target, subquery), owner in zip(branches, owners):
                with round_.chain():
                    records, visited, rounds = self._network.rpc(
                        src_peer + AGENT_SUFFIX,
                        owner + AGENT_SUFFIX,
                        "execute",
                        target,
                        subquery,
                        query,
                    )
                results.append((records, visited, rounds + 1))
        return results

    def query(
        self, query: Region, initiator: str | None = None
    ) -> RangeQueryResult:
        """Run *query* starting from *initiator* (default: first peer)."""
        if initiator is None:
            initiator = min(self._agents)
        if initiator not in self._agents:
            raise ReproError(f"unknown initiator peer {initiator!r}")
        lca = compute_lca(query, self.dims, self.max_depth)
        lookups_before = self.dht.stats.lookups
        records, visited, rounds = self.forward(
            initiator, lca, query, query
        )
        builder = RangeQueryBuilder()
        builder.records.extend(records)
        builder.visited_leaves.update(visited)
        builder.rounds = rounds
        builder.lookups = self.dht.stats.lookups - lookups_before
        return builder.build()
