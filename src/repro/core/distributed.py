"""Peer-side (truly distributed) range-query execution.

The client-orchestrated :class:`~repro.core.rangequery.RangeQueryEngine`
issues every probe from one place — faithful to OpenDHT-style
deployments where applications use a remote put/get service.  The paper
however narrates peer-to-peer forwarding: "Upon receiving the range
query, the corner cell constructs a local tree … Ri is forwarded to βi
via a DHT-lookup" (Section 6).  This module implements that execution
model literally:

* every DHT peer hosts a query agent (a second handler registered at
  ``<peer>#mlight`` on the simulated network);
* a subquery forwarded to node β costs one DHT-lookup (routing to the
  owner of ``fmd(β)``) plus one network message to that peer's agent;
* the receiving agent reads the bucket *from its own store at zero
  cost* — it is the owner — collects matches, and recursively forwards
  to its branch nodes.

Peer agents share the client engine's CPU fast path: the buckets they
read from their own stores filter matches through the columnar record
store (``bucket.matching``), and branch-region clipping rides the
memoized ``region_of_label`` cache, so the deployment comparison stays
apples-to-apples after the hot-loop optimisations.

The punchline, asserted by ``tests/test_distributed.py``: answers,
DHT-lookup counts and round counts are *identical* to the
client-orchestrated engine.  One probe per visited node either way —
the paper's cost model does not distinguish the two deployments, which
is why the reproduction can use the fast engine everywhere else.

Fault accounting (the ``forward_all`` audit)
--------------------------------------------

The engine reconciles batched-plane latency as
``rounds = max(rounds, batch_rounds)``: *one* client issues *one*
batched resolution per wave, so the two counters measure the same
sequence of wire rounds.  That reconciliation must **not** be applied
here — sibling agents each issue their own ``lookup_many`` at the same
tree depth, so ``batch_rounds`` *sums across the tree* while ``rounds``
is the critical path, and a global ``max`` would inflate fault-free
rounds above the engine's.  Instead each forwarding site accounts for
its own extra wire rounds locally:

* ``forward`` measures the ``stats.retries`` delta around its owner
  resolution — under :class:`~repro.dht.retry.RetryingDht` every retry
  is one more sequential wire round on this hop's critical path;
* ``forward_all`` measures the ``stats.batch_rounds`` delta around its
  batched resolution — each retry wave re-issues the failed subset as
  one more parallel wire round, gating every branch of that step;
* an owner that stays unreachable after retries (or a dead agent)
  degrades the branch instead of aborting the query: the subregion is
  reported upward and surfaces as ``result.unresolved``, mirroring the
  engine's per-slot degradation on ``get_many_outcomes``.

``query()`` additionally publishes the whole-query ``batch_rounds``
delta on the builder so observability dashboards can compare the two
execution models' batching behaviour directly.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Region, clip, region_of_label
from repro.common.labels import branch_nodes_between
from repro.core.keys import bucket_key
from repro.core.lookup import lookup_point
from repro.core.naming import naming_function
from repro.core.rangequery import compute_lca
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.core.records import Record
from repro.dht.api import BatchFailure, Dht
from repro.net.message import Message

#: Suffix appended to a peer's network address for its query agent.
AGENT_SUFFIX = "#mlight"

#: The (records, visited leaf labels, subtree rounds, unresolved
#: subregions) tuple every agent RPC returns.
AgentResult = tuple[list[Record], list[str], int, list[Region]]


def split_region(
    bucket: Any, target: str, subquery: Region, query: Region, dims: int
) -> tuple[list[Record], str, list[tuple[str, Region]]]:
    """One recursive-split step of Section 6, as a pure function.

    The peer owning ``fmd(target)`` holds *bucket*; return its matches
    against *query*, its leaf label, and the clipped branch subqueries
    to forward onward (empty when the leaf is ancestor-or-self of
    *target*, i.e. one leaf covers the whole subquery).  Shared by the
    simulated peer agents here and the service-plane multicast
    handlers in :mod:`repro.mcast.service`.
    """
    label = bucket.label
    if target.startswith(label):
        return list(bucket.matching(query)), label, []
    if not label.startswith(target):
        raise ReproError(
            f"leaf {label!r} is not prefix-comparable with "
            f"target {target!r}"
        )
    records = list(bucket.matching(query))
    branches = []
    for branch in branch_nodes_between(label, target, dims):
        clipped = clip(subquery, region_of_label(branch, dims))
        if clipped is not None:
            branches.append((branch, clipped))
    return records, label, branches


def _find_substrate(dht: Dht) -> Dht:
    """Walk the wrapper chain (``RetryingDht``/``FaultyDht`` expose
    ``.inner``) down to the routed substrate that owns peers and a
    network.  The *outer* dht keeps doing the metered operations so
    retries and injected faults stay on the wire path."""
    candidate: Any = dht
    while candidate is not None:
        if (
            getattr(candidate, "_nodes", None)
            and getattr(candidate, "network", None) is not None
        ):
            return candidate
        candidate = getattr(candidate, "inner", None)
    raise ReproError(
        "distributed execution needs a routed substrate with "
        "peers (Chord/Kademlia/Pastry); LocalDht has no peers "
        "to host agents on"
    )


class PeerQueryAgent:
    """The query executor co-located with one DHT peer."""

    def __init__(self, runtime: "DistributedQueryRuntime", node: Any) -> None:
        self._runtime = runtime
        self._node = node
        self.address = node.name + runtime.suffix

    def handle_rpc(self, message: Message) -> Any:
        args, kwargs = message.payload
        if message.msg_type != "execute":
            raise ReproError(f"unknown agent RPC {message.msg_type!r}")
        return self.execute(*args, **kwargs)

    def execute(
        self, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        """Process a subquery this peer received for node *target*.

        Returns (matching records, visited leaf labels, rounds consumed
        by this subtree, unresolved subregions).  The bucket named
        ``fmd(target)`` is read from the local store — this peer owns
        it, that is why the subquery was routed here.
        """
        runtime = self._runtime
        name = naming_function(target, runtime.dims)
        bucket = self._node.store.get(bucket_key(name))

        if bucket is None:
            return self._fallback(target, subquery, query)

        records, label, branches = split_region(
            bucket, target, subquery, query, runtime.dims
        )
        if not branches:
            # Ancestor-or-self: one leaf covers the whole subquery.
            return records, [label], 0, []

        visited = [label]
        deepest = 0
        unresolved: list[Region] = []
        for (
            child_records,
            child_visited,
            child_rounds,
            child_unresolved,
        ) in runtime.forward_all(self._node.name, branches, query):
            records.extend(child_records)
            visited.extend(child_visited)
            unresolved.extend(child_unresolved)
            deepest = max(deepest, child_rounds)
        return records, visited, deepest, unresolved

    def _fallback(
        self, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        """Missing target: its covering leaf is an ancestor; find it by
        a bounded point lookup issued from this peer."""
        runtime = self._runtime
        try:
            found = lookup_point(
                runtime.dht,
                subquery.lows,
                runtime.dims,
                runtime.max_depth,
                max_label_length=len(target) - 1,
            )
        except NodeUnreachableError:
            # The covering leaf's owner stayed unreachable through the
            # retry budget — degrade this subregion, don't abort.
            return [], [], 0, [subquery]
        bucket = found.bucket
        return (
            list(bucket.matching(query)),
            [bucket.label],
            found.rounds,
            [],
        )


class DistributedQueryRuntime:
    """Installs query agents on every peer of a routed DHT and runs
    range queries by actual peer-to-peer forwarding.

    *dht* may be the routed substrate itself or a wrapper chain
    (``RetryingDht``, ``FaultyDht``) around it — metered operations go
    through the outermost layer while agents live on the substrate's
    peers, so the runtime inherits retry resilience and fault
    injection exactly like the client engine does.
    """

    #: Network-address suffix for this runtime's agents.  Subclasses
    #: (the multicast plane) use their own so both runtimes can coexist
    #: on one network.
    suffix = AGENT_SUFFIX

    def __init__(self, dht: Dht, dims: int, max_depth: int) -> None:
        substrate = _find_substrate(dht)
        self.dht = dht
        self.dims = dims
        self.max_depth = max_depth
        self._substrate = substrate
        self._network = substrate.network
        self._agents: dict[str, PeerQueryAgent] = {}
        self.refresh_agents()

    def _make_agent(self, node: Any) -> PeerQueryAgent:
        return PeerQueryAgent(self, node)

    def refresh_agents(self) -> None:
        """(Re)register one query agent per currently-live peer.

        Churn invalidates agent registrations two ways: ``fail``
        removes the peer's main address but leaves the agent address
        bound to the dead node object, and ``restart`` builds a *new*
        node object the stale agent never sees.  Experiments call this
        after churn to re-point agents at the current node set; the
        constructor uses it for the initial registration.
        """
        network = self._network
        for agent in self._agents.values():
            network.unregister(agent.address)
        self._agents = {}
        for node in self._substrate._nodes.values():
            agent = self._make_agent(node)
            network.register(agent.address, agent)
            self._agents[node.name] = agent

    # ------------------------------------------------------------------
    # Owner resolution (override point for the multicast plane)
    # ------------------------------------------------------------------

    def _resolve_target(self, src_peer: str, key: str) -> str:
        """Resolve *key*'s owner on behalf of *src_peer*.

        The base runtime issues a client-metered DHT-lookup; the
        multicast plane overrides this to route natively from
        *src_peer*'s own overlay position.
        """
        return self.dht.lookup(key)

    def _resolve_targets(
        self, src_peer: str, keys: list[str]
    ) -> list[Any]:
        """Batch variant of :meth:`_resolve_target`; per-slot outcomes
        (owner name or :class:`BatchFailure`)."""
        return self.dht.lookup_many_outcomes(keys)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def forward(
        self, src_peer: str, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        """Route a subquery to the owner of ``fmd(target)``.

        One DHT-lookup (the routing) plus one agent message; the
        child's round count is incremented by the hop, plus one
        sequential round per retried resolution attempt.  An owner
        that stays unreachable degrades the subregion to unresolved.
        """
        name = naming_function(target, self.dims)
        stats = self.dht.stats
        retries_before = stats.retries
        try:
            owner = self._resolve_target(src_peer, bucket_key(name))
        except NodeUnreachableError:
            return [], [], stats.retries - retries_before, [subquery]
        # Each retried lookup attempt was one more wire round spent
        # sequentially on this hop (satellite-1 fix: the old code
        # reported `rounds + 1` regardless of retries).
        extra = stats.retries - retries_before
        try:
            records, visited, rounds, unresolved = self._network.rpc(
                src_peer + self.suffix,
                owner + self.suffix,
                "execute",
                target,
                subquery,
                query,
            )
        except NodeUnreachableError:
            return [], [], 1 + extra, [subquery]
        return records, visited, rounds + 1 + extra, unresolved

    def forward_all(
        self,
        src_peer: str,
        branches: list[tuple[str, Region]],
        query: Region,
    ) -> list[AgentResult]:
        """Forward one agent's branch subqueries as one parallel round.

        This is the paper's "Ri is forwarded to βi" step executed the
        way Section 6 narrates it — all branch subqueries of one node
        go out together: one batched resolution finds every owner,
        then the agent messages ride a single network message round
        (each forward its own chain).  Per-branch costs are unchanged
        — one DHT-lookup plus one agent message each, child rounds
        incremented by the hop.  Retried resolution waves each add one
        parallel wire round gating the whole step; branches whose
        owner stays unreachable (or whose agent RPC fails) degrade to
        unresolved subregions instead of aborting the query.
        """
        if not branches:
            return []
        keys = [
            bucket_key(naming_function(target, self.dims))
            for target, _ in branches
        ]
        stats = self.dht.stats
        batch_before = stats.batch_rounds
        try:
            outcomes = self._resolve_targets(src_peer, keys)
        except NodeUnreachableError:
            # Whole-batch resolution failure (unwrapped FaultyDht):
            # every branch degrades.
            extra = max(0, stats.batch_rounds - batch_before - 1)
            return [
                ([], [], extra, [subquery]) for _, subquery in branches
            ]
        # Each retry wave re-issued the failed subset as its own batch
        # round; those rounds gate every branch of this parallel step.
        extra = max(0, stats.batch_rounds - batch_before - 1)
        results: list[AgentResult] = []
        with self._network.message_round() as round_:
            for (target, subquery), outcome in zip(branches, outcomes):
                if isinstance(outcome, BatchFailure):
                    results.append(([], [], extra, [subquery]))
                    continue
                with round_.chain():
                    try:
                        payload = self._network.rpc(
                            src_peer + self.suffix,
                            outcome + self.suffix,
                            "execute",
                            target,
                            subquery,
                            query,
                        )
                    except NodeUnreachableError:
                        payload = None
                if payload is None:
                    results.append(([], [], 1 + extra, [subquery]))
                else:
                    records, visited, rounds, unresolved = payload
                    results.append(
                        (records, visited, rounds + 1 + extra, unresolved)
                    )
        return results

    def query(
        self, query: Region, initiator: str | None = None
    ) -> RangeQueryResult:
        """Run *query* starting from *initiator* (default: first peer)."""
        if initiator is None:
            initiator = min(self._agents)
        if initiator not in self._agents:
            raise ReproError(f"unknown initiator peer {initiator!r}")
        lca = compute_lca(query, self.dims, self.max_depth)
        stats = self.dht.stats
        lookups_before = stats.lookups
        batch_before = stats.batch_rounds
        records, visited, rounds, unresolved = self.forward(
            initiator, lca, query, query
        )
        builder = RangeQueryBuilder()
        builder.records.extend(records)
        builder.visited_leaves.update(visited)
        builder.rounds = rounds
        builder.lookups = stats.lookups - lookups_before
        builder.batch_rounds = stats.batch_rounds - batch_before
        for region in unresolved:
            builder.mark_unresolved(region)
        return builder.build()
