"""The public m-LIGHT index.

:class:`MLightIndex` composes the naming function, the lookup engine,
the range-query engine and a split strategy over any
:class:`~repro.dht.api.Dht`.  All maintenance follows the incremental
property of Theorem 5:

* a **split** rewrites the surviving child in place (its name equals
  the dead leaf's name, hence the same DHT key and peer) and transfers
  only the other child(ren) — one routed put per moved leaf;
* a **merge** absorbs the bucket stored at the parent's own label into
  the bucket stored at the parent's name, transferring exactly one
  bucket.

The split strategy comes from ``config.strategy`` (``"threshold"`` or
``"data-aware"``) unless an explicit :class:`SplitStrategy` instance
overrides it, and ``config.cache_capacity > 0`` equips the index with a
client-side :class:`~repro.core.cache.LeafCache`: every operation's
point lookup then tries one hinted probe before the Section-5 binary
search, and range queries warm the cache with every leaf they visit.

Typical use::

    from repro import LocalDht, MLightIndex, IndexConfig, Region

    config = IndexConfig(dims=2, max_depth=28, cache_capacity=256)
    index = MLightIndex(LocalDht(128), config)
    index.insert((0.2, 0.4), "concert")
    hits = index.range_query(Region((0.1, 0.3), (0.3, 0.5))).records
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator
from dataclasses import replace
from typing import Any

from repro.common.config import IndexConfig
from repro.common.errors import IndexCorruptionError
from repro.common.geometry import Point, RegionLike, as_region, check_point
from repro.common.labels import (
    parent,
    root_label,
    sibling,
    virtual_root,
)
from repro.core.bucket import LeafBucket
from repro.core.cache import LeafCache
from repro.core.keys import bucket_key, name_from_key
from repro.core.knn import KnnEngine
from repro.core.lookup import lookup_point
from repro.core.naming import naming_function
from repro.core.rangequery import RangeQueryEngine
from repro.core.records import Record
from repro.core.results import KnnResult, LookupResult, RangeQueryResult
from repro.core.split import (
    DataAwareSplit,
    SplitPlan,
    SplitStrategy,
    ThresholdSplit,
)
from repro.dht.api import Dht
from repro.obs.trace import Tracer


def build_strategy(config: IndexConfig) -> SplitStrategy:
    """The :class:`SplitStrategy` selected by ``config.strategy``."""
    if config.strategy == "data-aware":
        return DataAwareSplit(config.expected_load)
    return ThresholdSplit(config.split_threshold, config.merge_threshold)


class MLightIndex:
    """Multi-dimensional Lightweight Hash Tree over a DHT."""

    def __init__(
        self,
        dht: Dht,
        config: IndexConfig | None = None,
        strategy: SplitStrategy | None = None,
        *,
        cache: LeafCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._config = config if config is not None else IndexConfig()
        self._adaptive = None
        if self._config.adaptive is not None:
            # Wrap the substrate in the adaptive read plane (hotspot
            # detection, hot-bucket replication, learned shortcuts)
            # before anything else sees it, so every engine, cache and
            # wrapper routes through it.  Imported lazily: the plane is
            # an optional layer, and core stays importable without it.
            from repro.adaptive.plane import AdaptiveDht

            self._adaptive = AdaptiveDht(dht, self._config.adaptive)
            dht = self._adaptive
        self._dht = dht
        if strategy is None:
            strategy = build_strategy(self._config)
        self._strategy = strategy
        if cache is None and self._config.cache_capacity > 0:
            cache = LeafCache(self._config.cache_capacity)
        self._cache = cache
        if tracer is None and self._config.tracing:
            tracer = Tracer()
        self._tracer = tracer
        if tracer is not None:
            # Thread the tracer down the substrate stack (retry and
            # fault wrappers included) and into the simulated network,
            # so DHT-primitive and message-round spans nest under the
            # query spans this index opens.
            tracer.attach(dht)
        self._batched = self._config.execution == "batched"
        self._range_engine = RangeQueryEngine(
            dht,
            self._config.dims,
            self._config.max_depth,
            cache=cache,
            batched=self._batched,
            tracer=tracer,
        )
        self._knn_engine = KnnEngine(
            dht,
            self._config.dims,
            self._config.max_depth,
            cache=cache,
            batched=self._batched,
            tracer=tracer,
        )
        self._dissemination: Any | None = None
        self._bootstrap()

    @classmethod
    def with_data_aware_splitting(
        cls, dht: Dht, config: IndexConfig | None = None
    ) -> "MLightIndex":
        """Deprecated alias for ``IndexConfig(strategy="data-aware")``.

        Kept for source compatibility; new code selects the Section-4.2
        strategy through the config instead.
        """
        warnings.warn(
            "MLightIndex.with_data_aware_splitting is deprecated; pass "
            'IndexConfig(strategy="data-aware") instead',
            DeprecationWarning,
            stacklevel=2,
        )
        config = config if config is not None else IndexConfig()
        return cls(dht, replace(config, strategy="data-aware"))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Data dimensionality m."""
        return self._config.dims

    @property
    def max_depth(self) -> int:
        """The globally known maximum tree depth D (Section 5)."""
        return self._config.max_depth

    @property
    def config(self) -> IndexConfig:
        """The index configuration."""
        return self._config

    @property
    def dht(self) -> Dht:
        """The underlying DHT (its ``stats`` carry the paper's costs)."""
        return self._dht

    @property
    def adaptive(self):
        """The adaptive read plane (:class:`~repro.adaptive.AdaptiveDht`)
        this index routes through; None when ``config.adaptive`` is."""
        return self._adaptive

    @property
    def strategy(self) -> SplitStrategy:
        """The active split strategy."""
        return self._strategy

    @property
    def cache(self) -> LeafCache | None:
        """This client's leaf cache; None when caching is disabled."""
        return self._cache

    @property
    def tracer(self) -> Tracer | None:
        """The attached tracer; None when tracing is disabled."""
        return self._tracer

    @property
    def dissemination(self) -> Any | None:
        """The attached continuous-query plane, if any."""
        return self._dissemination

    def attach_dissemination(self, plane: Any) -> None:
        """Attach a dissemination plane observing structural events.

        The plane (see :class:`repro.mcast.ContinuousQueryPlane`) gets
        ``on_insert(leaf_label, record)`` after a record lands,
        ``on_split(plan)`` after a split's buckets are re-homed, and
        ``on_merge(parent_label, child_a, child_b)`` after each merge
        step — the hooks that let subscription tables ride Theorem 5's
        exactly-one-bucket maintenance.
        """
        self._dissemination = plane

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def lookup(self, point: Point) -> LookupResult:
        """Locate the leaf bucket covering *point* (Section 5).

        With a cache, a warm region answers in one hinted DHT-get; a
        stale or missing hint falls back to the binary search.
        """
        return lookup_point(
            self._dht, point, self.dims, self.max_depth,
            cache=self._cache, tracer=self._tracer,
        )

    def exact_match(self, point: Point) -> list[Record]:
        """All records whose key equals *point* exactly."""
        point = check_point(point, self.dims)
        bucket = self.lookup(point).bucket
        return [record for record in bucket.records if record.key == point]

    def insert(self, key, value: Any = None) -> LookupResult:
        """Insert a record; returns the lookup that placed it.

        Cost: the lookup probes, one record of movement to the leaf's
        peer, plus whatever the split strategy triggers.
        """
        record = Record.make(key, value, dims=self.dims)
        tracer = self._tracer
        if tracer is None:
            return self._do_insert(record)
        with tracer.span(
            "update", "insert", key=list(record.key)
        ) as span:
            result = self._do_insert(record)
            span.attrs["leaf"] = result.bucket.label
            return result

    def _do_insert(self, record: Record) -> LookupResult:
        result = self.lookup(record.key)
        bucket = result.bucket
        bucket.add(record)
        self._dht.stats.records_moved += 1
        self._dht.rewrite_local(self._key_of(bucket), bucket)
        if self._dissemination is not None:
            # Push before any split: the subscription table is still
            # homed at the pre-split leaf the record landed in.
            self._dissemination.on_insert(bucket.label, record)
        plan = self._strategy.plan_split(
            bucket.label, bucket.records, self.dims, self.max_depth
        )
        if plan is not None:
            if self._tracer is not None:
                self._tracer.event("split", origin=plan.origin)
            self._apply_split(plan)
        return result

    def insert_many(self, items: Iterable) -> int:
        """Insert records, (key, value) pairs or bare keys; the count.

        Accepted item spellings are exactly those of
        :meth:`Record.coerce`, shared with :func:`~repro.core.bulkload.
        bulk_load`.
        """
        count = 0
        for item in items:
            record = Record.coerce(item, dims=self.dims)
            self.insert(record.key, record.value)
            count += 1
        return count

    def delete(self, key, value: Any = None) -> bool:
        """Delete one record matching *key* (and *value*, when given).

        Returns False when no such record exists.  A successful delete
        may trigger cascading sibling merges.
        """
        point = check_point(tuple(key), self.dims)
        tracer = self._tracer
        if tracer is None:
            return self._do_delete(point, value)
        with tracer.span("update", "delete", key=list(point)) as span:
            deleted = self._do_delete(point, value)
            span.attrs["deleted"] = deleted
            return deleted

    def _do_delete(self, point: Point, value: Any) -> bool:
        bucket = self.lookup(point).bucket
        victim = None
        for record in bucket.records:
            if record.key == point and (value is None or record.value == value):
                victim = record
                break
        if victim is None:
            return False
        bucket.remove(victim)
        self._dht.rewrite_local(self._key_of(bucket), bucket)
        self._maybe_merge(bucket)
        return True

    def range_query(
        self, query: RegionLike, lookahead: int | None = None
    ) -> RangeQueryResult:
        """All records in the closed region *query* (Section 6).

        *query* is a :class:`~repro.common.geometry.Region` or a plain
        ``(lows, highs)`` pair.  ``lookahead=1`` runs the basic
        algorithm; 2 or 4 run the parallel variants evaluated in
        Fig. 7; omitted, it defaults to ``config.default_lookahead``.
        Every leaf the query visits warms this client's cache.
        """
        if lookahead is None:
            lookahead = self._config.default_lookahead
        return self._range_engine.query(as_region(query), lookahead)

    def knn(self, point: Point, k: int) -> KnnResult:
        """The *k* records nearest to *point* (exact, Euclidean).

        A similarity-query extension built on the paper's range
        primitive; see :mod:`repro.core.knn`.
        """
        return self._knn_engine.query(point, k)

    # ------------------------------------------------------------------
    # Oracle access (metrics and tests; never on the query path)
    # ------------------------------------------------------------------

    def buckets(self) -> Iterator[LeafBucket]:
        """Iterate every leaf bucket in the index (zero metered cost)."""
        for dht_key, value in self._dht.items():
            if isinstance(value, LeafBucket) and dht_key.startswith("ml:"):
                yield value

    def tree_size(self) -> int:
        """Number of leaf buckets (== number of internal nodes)."""
        return sum(1 for _ in self.buckets())

    def total_records(self) -> int:
        """Records stored across all buckets."""
        return sum(bucket.load for bucket in self.buckets())

    def check_invariants(self) -> None:
        """Verify the structural invariants; raises on violation.

        Checks the leaf set tiles the space (labels are prefix-free and
        complete), every bucket sits under its own name's key, and every
        record lies in its leaf's cell.
        """
        labels = {}
        for dht_key, value in self._dht.items():
            if not (isinstance(value, LeafBucket) and dht_key.startswith("ml:")):
                continue
            name = name_from_key(dht_key)
            expected = naming_function(value.label, self.dims)
            if expected != name:
                raise IndexCorruptionError(
                    f"bucket {value.label!r} stored at {name!r}, "
                    f"expected {expected!r}"
                )
            labels[value.label] = value
        if not labels:
            raise IndexCorruptionError("index has no buckets at all")
        for label, bucket in labels.items():
            for other in labels:
                if other != label and other.startswith(label):
                    raise IndexCorruptionError(
                        f"leaves {label!r} and {other!r} overlap"
                    )
            region = bucket.region
            for record in bucket.records:
                if not region.contains_point(record.key):
                    raise IndexCorruptionError(
                        f"record {record.key} outside leaf {label!r}"
                    )
        # Completeness: the sibling of every non-root leaf's ancestors
        # must be covered by some leaf (prefix of or extending it).
        for label in labels:
            probe = label
            while probe != root_label(self.dims):
                sib = sibling(probe, self.dims)
                covered = any(
                    other.startswith(sib) or sib.startswith(other)
                    for other in labels
                )
                if not covered:
                    raise IndexCorruptionError(
                        f"no leaf covers branch node {sib!r}"
                    )
                probe = parent(probe, self.dims)

    # ------------------------------------------------------------------
    # Maintenance internals
    # ------------------------------------------------------------------

    def _key_of(self, bucket: LeafBucket) -> str:
        return bucket_key(naming_function(bucket.label, self.dims))

    def _bootstrap(self) -> None:
        """Create the root bucket unless the DHT already carries one."""
        root_key = bucket_key(virtual_root(self.dims))
        if self._dht.peek(root_key) is not None:
            return
        root = LeafBucket(
            root_label(self.dims), self.dims, store=self._config.store
        )
        self._dht.put(root_key, root)

    def _apply_split(self, plan: SplitPlan) -> None:
        """Apply a split plan with incremental maintenance (Theorem 5).

        Exactly one plan leaf is named ``fmd(origin)`` — it replaces the
        old bucket under the *same key* at zero cost; every other leaf
        (including empty ones, which the bijection requires) is routed
        to its own name with its records as movement.
        """
        origin_name = naming_function(plan.origin, self.dims)
        survivor: tuple[str, tuple[Record, ...]] | None = None
        pairs: list[tuple[str, LeafBucket]] = []
        moved: list[int] = []
        for label, records in plan.leaves:
            name = naming_function(label, self.dims)
            if name == origin_name:
                if survivor is not None:
                    raise IndexCorruptionError(
                        f"two plan leaves named {origin_name!r}; the "
                        "bijection is broken"
                    )
                survivor = (label, records)
                continue
            pairs.append(
                (
                    bucket_key(name),
                    LeafBucket(
                        label, self.dims, records,
                        store=self._config.store,
                    ),
                )
            )
            moved.append(len(records))
        # The transferred leaves go to independent peers, so under the
        # batched plane one split is one parallel round of routed puts.
        if self._batched:
            self._dht.put_many(pairs, records_moved=moved)
        else:
            for (key, bucket), load in zip(pairs, moved):
                self._dht.put(key, bucket, records_moved=load)
        if survivor is None:
            raise IndexCorruptionError(
                f"no plan leaf keeps name {origin_name!r}; the "
                "bijection is broken"
            )
        label, records = survivor
        self._dht.rewrite_local(
            bucket_key(origin_name),
            LeafBucket(
                label, self.dims, records, store=self._config.store
            ),
        )
        if self._cache is not None:
            # This client made the split, so its cache can stay exact:
            # the origin stopped being a leaf, the plan leaves began.
            self._cache.forget(plan.origin)
            for leaf_label, _ in plan.leaves:
                self._cache.observe(leaf_label)
        if self._dissemination is not None:
            self._dissemination.on_split(plan)

    def _maybe_merge(self, bucket: LeafBucket) -> None:
        """Cascade sibling merges upward while the strategy approves.

        The sibling pair under parent p occupies DHT keys ``fmd(p)``
        and ``p`` (Theorem 5), so one get inspects the sibling; a merge
        removes the bucket at key ``p`` (one bucket transferred) and
        rewrites the one at ``fmd(p)`` in place.
        """
        while bucket.label != root_label(self.dims):
            parent_label = parent(bucket.label, self.dims)
            sibling_label = sibling(bucket.label, self.dims)
            parent_name = naming_function(parent_label, self.dims)
            own_name = naming_function(bucket.label, self.dims)
            other_name = parent_label if own_name == parent_name else parent_name
            other = self._dht.get(bucket_key(other_name))
            if other is None:
                raise IndexCorruptionError(
                    f"missing bucket at {other_name!r} while probing the "
                    f"sibling of {bucket.label!r}"
                )
            if other.label != sibling_label:
                return  # the sibling is an internal node; nothing to merge
            if not self._strategy.should_merge(bucket.load, other.load):
                return
            moved = other if other_name == parent_label else bucket
            merged = LeafBucket(
                parent_label,
                self.dims,
                list(bucket.records) + list(other.records),
                store=self._config.store,
            )
            if self._tracer is not None:
                self._tracer.event("merge", parent=parent_label)
            self._dht.remove(
                bucket_key(parent_label), records_moved=moved.load
            )
            self._dht.rewrite_local(bucket_key(parent_name), merged)
            if self._cache is not None:
                # Both children died as leaves; the parent was born.
                self._cache.forget(bucket.label)
                self._cache.forget(other.label)
                self._cache.observe(merged.label)
            if self._dissemination is not None:
                self._dissemination.on_merge(
                    parent_label, bucket.label, other.label
                )
            bucket = merged