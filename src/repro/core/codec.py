"""Struct-packed record/bucket codec and the unified byte accounting.

One frame layout for a bucket on the wire::

    +-------+---------+------+----------+------------+-------+-------+
    | magic | version | dims | store id | leaf label | count | flags |
    | 4 B   | 1 B     | 1 B  | 1+k B    | 2+l B      | 4 B   | 1 B   |
    +-------+---------+------+----------+------------+-------+-------+
    | column-major float64 coordinates: dims * count * 8 B           |
    | [pickled values tuple, only when flags bit 0 is set]           |
    +----------------------------------------------------------------+

Coordinates travel as little-endian IEEE doubles — the exact floats
the record store holds, so a decoded bucket answers queries
bit-identically.  Payloads (record values) are pickled only when at
least one is non-None; bulk-loaded point sets pay one flag byte.

This codec is also the **byte-accounting contract**: the same
:func:`payload_wire_size` prices a stored object on every substrate —
the simulated overlays charge it on ``store_put``/``store_get``
messages, ``SimNetwork`` prices replies with it, and the service
plane's :func:`repro.service.wire.frame_wire_cost` builds on it via
:func:`repro.dht.api.estimate_wire_size` — so ``bytes_sent`` is
comparable between a simulated and a TCP run of the same trace.  The
module installs itself as the wire model at import time (the registry
indirection in :mod:`repro.dht.api` exists only to keep the dependency
graph acyclic: ``dht`` must not import ``core`` at module level).
"""

from __future__ import annotations

import pickle
import struct
import sys
from array import array
from typing import Any

from repro.common.errors import ReproError
from repro.dht import api as dht_api
from repro.core.store import Rows

__all__ = [
    "CODEC_MAGIC",
    "encode_bucket",
    "decode_bucket",
    "encoded_bucket_size",
    "payload_wire_size",
    "data_wire_size",
]

CODEC_MAGIC = b"mLB1"
CODEC_VERSION = 1

#: magic + version + dims + kind-length + label-length + count + flags.
_FIXED_BYTES = 4 + 1 + 1 + 1 + 2 + 4 + 1
_HEAD = struct.Struct("!4sBBB")
_FLAG_VALUES = 1


class CodecError(ReproError):
    """An encoded bucket is malformed (bad magic, version, or length)."""


def _column_bytes(column) -> bytes:
    """Little-endian raw doubles of one coordinate column."""
    if hasattr(column, "astype"):  # numpy ndarray
        return column.astype("<f8", copy=False).tobytes()
    if not isinstance(column, array):
        column = array("d", column)
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = array("d", column)
    swapped.byteswap()
    return swapped.tobytes()


def _column_from_bytes(data: bytes, numpy_kind: bool):
    if numpy_kind:
        from repro.core import npstore

        if npstore.HAVE_NUMPY:
            import numpy as np

            return np.frombuffer(data, dtype="<f8").astype(
                np.float64, copy=True
            )
    column = array("d")
    column.frombytes(data)
    if sys.byteorder != "little":
        column.byteswap()
    return column


def _values_blob(store) -> bytes:
    values = store.payload_values()
    if values is None:
        return b""
    return pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)


def encode_bucket(bucket) -> bytes:
    """Serialize *bucket* (label, store kind, columns, values)."""
    store = bucket.store
    kind = store.kind.encode("ascii")
    label = bucket.label.encode("ascii")
    rows = store.to_rows()
    values_blob = _values_blob(store)
    flags = _FLAG_VALUES if values_blob else 0
    parts = [
        _HEAD.pack(CODEC_MAGIC, CODEC_VERSION, bucket.dims, len(kind)),
        kind,
        struct.pack("!H", len(label)),
        label,
        struct.pack("!IB", len(rows), flags),
    ]
    parts.extend(_column_bytes(column) for column in rows.columns)
    if values_blob:
        parts.append(values_blob)
    return b"".join(parts)


def decode_bucket(data: bytes):
    """Inverse of :func:`encode_bucket`; rebuilds the same store kind
    (degrading per the registry, e.g. numpy -> columnar when numpy is
    unavailable)."""
    from repro.core.bucket import LeafBucket

    if len(data) < _FIXED_BYTES or data[:4] != CODEC_MAGIC:
        raise CodecError("not an encoded bucket (bad magic or truncated)")
    _, version, dims, kind_len = _HEAD.unpack_from(data)
    if version != CODEC_VERSION:
        raise CodecError(f"unsupported bucket codec version {version}")
    offset = _HEAD.size
    kind = data[offset : offset + kind_len].decode("ascii")
    offset += kind_len
    (label_len,) = struct.unpack_from("!H", data, offset)
    offset += 2
    label = data[offset : offset + label_len].decode("ascii")
    offset += label_len
    count, flags = struct.unpack_from("!IB", data, offset)
    offset += 5
    column_bytes = count * 8
    if len(data) < offset + dims * column_bytes:
        raise CodecError("encoded bucket truncated in its column section")
    columns = []
    for _ in range(dims):
        columns.append(
            _column_from_bytes(
                data[offset : offset + column_bytes], kind == "numpy"
            )
        )
        offset += column_bytes
    values = None
    if flags & _FLAG_VALUES:
        values = pickle.loads(data[offset:])
        if len(values) != count:
            raise CodecError(
                f"{len(values)} values for {count} encoded records"
            )
    rows = Rows(dims, columns, values)
    return LeafBucket(label, dims, records=rows, store=kind)


def encoded_bucket_size(bucket) -> int:
    """``len(encode_bucket(bucket))`` without packing the columns."""
    store = bucket.store
    return (
        _FIXED_BYTES
        + len(store.kind)
        + len(bucket.label)
        + bucket.dims * store.count * 8
        + len(_values_blob(store))
    )


# ----------------------------------------------------------------------
# The shared byte-accounting model
# ----------------------------------------------------------------------


def _record_like(records) -> bool:
    """True for a list of key/value records (possibly empty)."""
    return isinstance(records, list) and (
        not records
        or (hasattr(records[0], "key") and hasattr(records[0], "value"))
    )


def _record_list_size(value, records) -> int:
    """Codec-shaped size of a records-carrying node that is not a
    :class:`~repro.core.bucket.LeafBucket` (the PHT/DST baselines):
    same fixed framing, per-record column bytes and payload pickle."""
    dims = len(records[0].key) if records else 0
    name = getattr(value, "prefix", "") or ""
    size = _FIXED_BYTES + len(name) + dims * len(records) * 8
    if any(record.value is not None for record in records):
        size += len(
            pickle.dumps(
                tuple(record.value for record in records),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
    return size


def payload_wire_size(value: Any) -> int:
    """Bytes *value* occupies as a message payload.

    Row-bearing objects (leaf buckets, baseline trie nodes) are priced
    by the codec exactly; ``None`` is free (an absent reply body); any
    other object costs one envelope
    (:data:`~repro.dht.api.ENVELOPE_WIRE_BYTES`).
    """
    if value is None:
        return 0
    sizer = getattr(value, "encoded_wire_size", None)
    if callable(sizer):
        return sizer()
    records = getattr(value, "records", None)
    if _record_like(records):
        return _record_list_size(value, records)
    return dht_api.ENVELOPE_WIRE_BYTES


def data_wire_size(value: Any) -> int:
    """Data-plane bytes of *value*: codec bytes for row-bearing objects,
    zero for control payloads — feeds ``NetworkStats.payload_bytes``."""
    if value is None:
        return 0
    sizer = getattr(value, "encoded_wire_size", None)
    if callable(sizer):
        return sizer()
    records = getattr(value, "records", None)
    if _record_like(records):
        return _record_list_size(value, records)
    return 0


dht_api.install_wire_model(payload_wire_size, data_wire_size)
