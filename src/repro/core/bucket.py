"""Leaf buckets — the distributed pieces of the decomposed kd-tree.

A leaf bucket stores two components (Section 3.3):

* the **label store** — the leaf's own label λ, which *encodes the
  whole local tree*: every ancestor is a prefix of λ and every branch
  node (an ancestor's sibling) is a modified prefix with the final bit
  inverted.  No adjacency lists are materialised or maintained;
* the **record store** — the data records whose keys fall in the
  leaf's cell.

Buckets are the unit of DHT storage: the bucket of leaf λ lives at DHT
key ``fmd(λ)``.

Hot-path caches (all derived, all invisible to equality/repr):

* :attr:`region` is computed once per bucket — the label never changes
  after construction — instead of being rebuilt bit-by-bit on every
  ``covers()`` call (once per record on the insert path before);
* :meth:`matching` runs on a lazily built
  :class:`~repro.core.columnar.ColumnStore` that narrows on the
  bucket's split dimension before scanning; ``add``/``remove`` drop
  the store.  :meth:`matching_naive` keeps the original scan as the
  equivalence oracle for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InvalidLabelError
from repro.common.geometry import Region, region_of_label
from repro.common.labels import ancestors, branch_nodes_between, is_valid_label
from repro.core.columnar import ColumnStore
from repro.core.records import Record


@dataclass(slots=True)
class LeafBucket:
    """One leaf of the space kd-tree, as stored in the DHT."""

    label: str
    dims: int
    records: list[Record] = field(default_factory=list)
    #: Cached derived state; never part of identity or the wire value.
    _region: Region | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _columns: ColumnStore | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not is_valid_label(self.label, self.dims):
            raise InvalidLabelError(
                f"{self.label!r} is not a valid {self.dims}-d leaf label"
            )

    # ------------------------------------------------------------------
    # Record store
    # ------------------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of records stored (the paper's bucket load ``l``)."""
        return len(self.records)

    @property
    def is_empty(self) -> bool:
        """True for an empty bucket (the Fig. 6b measure)."""
        return not self.records

    def add(self, record: Record) -> None:
        """Insert *record*; its key must fall inside this cell."""
        if not self.covers(record.key):
            raise InvalidLabelError(
                f"record {record.key} outside cell of leaf {self.label!r}"
            )
        self.records.append(record)
        self._columns = None

    def remove(self, record: Record) -> bool:
        """Remove one occurrence of *record*; True when found."""
        try:
            self.records.remove(record)
        except ValueError:
            return False
        self._columns = None
        return True

    @property
    def split_dim(self) -> int:
        """The dimension this leaf's cell halves when it splits — the
        sort dimension of the columnar store (depth cycles through the
        ``m`` dimensions; the ordinary root splits dimension 0)."""
        depth = len(self.label) - self.dims - 1
        return depth % self.dims if depth > 0 else 0

    def matching(self, query: Region) -> list[Record]:
        """Records whose keys match the closed *query* region.

        Served from the columnar store, rebuilt lazily after
        mutations; answers are bit-identical to
        :meth:`matching_naive`, in the same (insertion) order.
        """
        store = self._columns
        if store is None or store.count != len(self.records):
            store = ColumnStore(self.records, self.dims, self.split_dim)
            self._columns = store
        return store.matching(self.records, query.lows, query.highs)

    def matching_naive(self, query: Region) -> list[Record]:
        """Reference linear scan (the pre-columnar implementation)."""
        return [
            record
            for record in self.records
            if query.contains_point_closed(record.key)
        ]

    # ------------------------------------------------------------------
    # Label store (the encoded local tree)
    # ------------------------------------------------------------------

    @property
    def region(self) -> Region:
        """The half-open cell this leaf indexes (computed once)."""
        region = self._region
        if region is None:
            region = region_of_label(self.label, self.dims)
            self._region = region
        return region

    def covers(self, point) -> bool:
        """True when *point* falls in this leaf's cell."""
        return self.region.contains_point(point)

    def local_tree_ancestors(self) -> list[str]:
        """All ancestors of this leaf, nearest first (the local tree)."""
        return list(ancestors(self.label, self.dims))

    def branch_nodes_below(self, top: str) -> list[str]:
        """Branch nodes between this leaf and ancestor *top*,
        shallowest first — the forwarding targets of Algorithm 3."""
        return branch_nodes_between(self.label, top, self.dims)

    def is_descendant_or_self_of(self, other: str) -> bool:
        """True when this leaf lies in the subtree rooted at *other*."""
        return self.label.startswith(other)
