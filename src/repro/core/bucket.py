"""Leaf buckets — the distributed pieces of the decomposed kd-tree.

A leaf bucket stores two components (Section 3.3):

* the **label store** — the leaf's own label λ, which *encodes the
  whole local tree*: every ancestor is a prefix of λ and every branch
  node (an ancestor's sibling) is a modified prefix with the final bit
  inverted.  No adjacency lists are materialised or maintained;
* the **record store** — the data records whose keys fall in the
  leaf's cell, held by a pluggable
  :class:`~repro.core.store.RecordStore` backend (``"list"``,
  ``"columnar"`` or ``"numpy"``, selected per index via
  ``IndexConfig(store=...)``).  The bucket delegates mutation and
  querying; backends answer bit-identically, in insertion order.

Buckets are the unit of DHT storage: the bucket of leaf λ lives at DHT
key ``fmd(λ)``.  On the wire a bucket travels as its struct-packed
codec form (:mod:`repro.core.codec`) — pickling a bucket (the service
runtime's frames, churn handoff) embeds the codec bytes rather than a
Python object graph.

Hot-path caches (all derived, invisible to equality/repr):

* :attr:`region` is computed once per bucket — the label never changes
  after construction;
* each store backend rebuilds its own query structure lazily, tagged
  by the store's **generation counter** (bumped on every mutation) —
  never by comparing record counts, so an equal-count remove+add can
  never serve a stale answer.  :meth:`matching_naive` keeps the
  original scan as the equivalence oracle for tests and benchmarks.
"""

from __future__ import annotations

from repro.common.errors import InvalidLabelError
from repro.common.geometry import Region, region_of_label
from repro.common.labels import ancestors, branch_nodes_between, is_valid_label
from repro.core.records import Record
from repro.core.store import DEFAULT_STORE, RecordStore, Rows, create_store


def split_dim_of(label: str, dims: int) -> int:
    """The dimension the cell of *label* halves when it splits (depth
    cycles through the ``m`` dimensions; the ordinary root splits
    dimension 0)."""
    depth = len(label) - dims - 1
    return depth % dims if depth > 0 else 0


class LeafBucket:
    """One leaf of the space kd-tree, as stored in the DHT."""

    __slots__ = ("label", "dims", "_store", "_region")

    def __init__(
        self,
        label: str,
        dims: int,
        records=None,
        store: str | RecordStore | None = None,
    ) -> None:
        if not is_valid_label(label, dims):
            raise InvalidLabelError(
                f"{label!r} is not a valid {dims}-d leaf label"
            )
        self.label = label
        self.dims = dims
        self._region: Region | None = None
        if isinstance(records, RecordStore):
            self._store = records
        elif isinstance(store, RecordStore):
            if records:
                raise ValueError(
                    "pass records through the store, not alongside it"
                )
            self._store = store
        else:
            kind = store if store is not None else DEFAULT_STORE
            source = records
            if source is not None and not isinstance(source, Rows):
                source = list(source)
            self._store = create_store(
                kind, dims, split_dim_of(label, dims), source
            )

    # ------------------------------------------------------------------
    # Record store
    # ------------------------------------------------------------------

    @property
    def store(self) -> RecordStore:
        """The pluggable record-store backend holding this leaf's data."""
        return self._store

    @property
    def records(self) -> list[Record]:
        """The stored records, insertion order (read-only view: mutate
        through :meth:`add`/:meth:`remove` so the store's generation
        counter tracks every change)."""
        return self._store.records()

    @property
    def load(self) -> int:
        """Number of records stored (the paper's bucket load ``l``)."""
        return self._store.count

    @property
    def is_empty(self) -> bool:
        """True for an empty bucket (the Fig. 6b measure)."""
        return self._store.count == 0

    def add(self, record: Record) -> None:
        """Insert *record*; its key must fall inside this cell."""
        if not self.covers(record.key):
            raise InvalidLabelError(
                f"record {record.key} outside cell of leaf {self.label!r}"
            )
        self._store.add(record)

    def remove(self, record: Record) -> bool:
        """Remove one occurrence of *record*; True when found."""
        return self._store.remove(record)

    @property
    def split_dim(self) -> int:
        """The dimension this leaf's cell halves when it splits — the
        sort dimension of the backing store."""
        return split_dim_of(self.label, self.dims)

    def matching(self, query: Region) -> list[Record]:
        """Records whose keys match the closed *query* region.

        Served by the record-store backend; answers are bit-identical
        to :meth:`matching_naive`, in the same (insertion) order.
        """
        return self._store.matching(query.lows, query.highs)

    def matching_naive(self, query: Region) -> list[Record]:
        """Reference linear scan (the pre-columnar implementation)."""
        return [
            record
            for record in self._store.records()
            if query.contains_point_closed(record.key)
        ]

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------

    def encoded_wire_size(self) -> int:
        """Exact codec byte size — the unified byte-accounting hook
        (:func:`repro.core.codec.payload_wire_size`)."""
        from repro.core.codec import encoded_bucket_size

        return encoded_bucket_size(self)

    def __reduce__(self):
        # Pickled buckets (service frames, churn handoff, copies)
        # travel as codec bytes, not as Python object graphs.
        from repro.core.codec import decode_bucket, encode_bucket

        return (decode_bucket, (encode_bucket(self),))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, LeafBucket):
            return NotImplemented
        return (
            self.label == other.label
            and self.dims == other.dims
            and self.records == other.records
        )

    __hash__ = None  # mutable container, like the previous dataclass

    def __repr__(self) -> str:
        return (
            f"LeafBucket(label={self.label!r}, dims={self.dims!r}, "
            f"records={self.records!r})"
        )

    # ------------------------------------------------------------------
    # Label store (the encoded local tree)
    # ------------------------------------------------------------------

    @property
    def region(self) -> Region:
        """The half-open cell this leaf indexes (computed once)."""
        region = self._region
        if region is None:
            region = region_of_label(self.label, self.dims)
            self._region = region
        return region

    def covers(self, point) -> bool:
        """True when *point* falls in this leaf's cell."""
        return self.region.contains_point(point)

    def local_tree_ancestors(self) -> list[str]:
        """All ancestors of this leaf, nearest first (the local tree)."""
        return list(ancestors(self.label, self.dims))

    def branch_nodes_below(self, top: str) -> list[str]:
        """Branch nodes between this leaf and ancestor *top*,
        shallowest first — the forwarding targets of Algorithm 3."""
        return branch_nodes_between(self.label, top, self.dims)

    def is_descendant_or_self_of(self, other: str) -> bool:
        """True when this leaf lies in the subtree rooted at *other*."""
        return self.label.startswith(other)
