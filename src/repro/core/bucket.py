"""Leaf buckets — the distributed pieces of the decomposed kd-tree.

A leaf bucket stores two components (Section 3.3):

* the **label store** — the leaf's own label λ, which *encodes the
  whole local tree*: every ancestor is a prefix of λ and every branch
  node (an ancestor's sibling) is a modified prefix with the final bit
  inverted.  No adjacency lists are materialised or maintained;
* the **record store** — the data records whose keys fall in the
  leaf's cell.

Buckets are the unit of DHT storage: the bucket of leaf λ lives at DHT
key ``fmd(λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InvalidLabelError
from repro.common.geometry import Region, region_of_label
from repro.common.labels import ancestors, branch_nodes_between, is_valid_label
from repro.core.records import Record


@dataclass(slots=True)
class LeafBucket:
    """One leaf of the space kd-tree, as stored in the DHT."""

    label: str
    dims: int
    records: list[Record] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not is_valid_label(self.label, self.dims):
            raise InvalidLabelError(
                f"{self.label!r} is not a valid {self.dims}-d leaf label"
            )

    # ------------------------------------------------------------------
    # Record store
    # ------------------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of records stored (the paper's bucket load ``l``)."""
        return len(self.records)

    @property
    def is_empty(self) -> bool:
        """True for an empty bucket (the Fig. 6b measure)."""
        return not self.records

    def add(self, record: Record) -> None:
        """Insert *record*; its key must fall inside this cell."""
        if not self.covers(record.key):
            raise InvalidLabelError(
                f"record {record.key} outside cell of leaf {self.label!r}"
            )
        self.records.append(record)

    def remove(self, record: Record) -> bool:
        """Remove one occurrence of *record*; True when found."""
        try:
            self.records.remove(record)
        except ValueError:
            return False
        return True

    def matching(self, query: Region) -> list[Record]:
        """Records whose keys match the closed *query* region."""
        return [
            record
            for record in self.records
            if query.contains_point_closed(record.key)
        ]

    # ------------------------------------------------------------------
    # Label store (the encoded local tree)
    # ------------------------------------------------------------------

    @property
    def region(self) -> Region:
        """The half-open cell this leaf indexes."""
        return region_of_label(self.label, self.dims)

    def covers(self, point) -> bool:
        """True when *point* falls in this leaf's cell."""
        return self.region.contains_point(point)

    def local_tree_ancestors(self) -> list[str]:
        """All ancestors of this leaf, nearest first (the local tree)."""
        return list(ancestors(self.label, self.dims))

    def branch_nodes_below(self, top: str) -> list[str]:
        """Branch nodes between this leaf and ancestor *top*,
        shallowest first — the forwarding targets of Algorithm 3."""
        return branch_nodes_between(self.label, top, self.dims)

    def is_descendant_or_self_of(self, other: str) -> bool:
        """True when this leaf lies in the subtree rooted at *other*."""
        return self.label.startswith(other)
