"""Columnar record filtering for CPU-bound bucket scans.

``bucket.matching(query)`` is the innermost loop of every range query,
k-NN ring and baseline descent: at paper scale it dominates wall-clock
once network rounds are batched.  The naive scan pays, per record, a
method call, a generator, a ``zip`` and a tuple walk.  This module
replaces that with a *columnar* layout:

* record keys are transposed into per-dimension ``array('d')`` columns
  (C doubles, contiguous, no per-element object overhead), ordered by
  the bucket's **split dimension**;
* a query first narrows on the sorted split-dimension column with two
  binary searches (``bisect``), so only records inside the query's
  extent along that dimension are ever touched;
* the surviving candidate range is filtered dimension-at-a-time with
  plain float compares against the remaining columns.

The store is a cache over an owner's ``records`` list: owners build it
lazily on first ``matching`` call and drop it on mutation (plus a
record-count backstop), so write-heavy buckets never pay for it.
Results are returned in insertion order — bit-identical to the naive
scan, which ``tests/test_hotpath_equivalence.py`` asserts on random
workloads.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Sequence

from repro.core.records import Record

__all__ = ["ColumnStore"]


class ColumnStore:
    """Immutable columnar snapshot of one bucket's record keys.

    Built against a records list of length :attr:`count`; owners must
    rebuild (not mutate) the store when their records change — add and
    remove paths invalidate it, and ``count`` doubles as a staleness
    backstop against direct ``records`` mutation.
    """

    __slots__ = ("count", "sort_dim", "_order", "_columns")

    def __init__(
        self, records: Sequence[Record], dims: int, sort_dim: int
    ) -> None:
        self.count = len(records)
        self.sort_dim = sort_dim
        order = sorted(
            range(self.count), key=lambda i: records[i].key[sort_dim]
        )
        self._order = order
        self._columns = [
            array("d", [records[i].key[dim] for i in order])
            for dim in range(dims)
        ]

    def matching_positions(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> list[int]:
        """Insertion-order positions of records inside the closed box.

        Two bisects bound the candidate run on the sorted split
        dimension; remaining dimensions filter the run column by
        column.  Returned ascending, so callers reproduce the naive
        scan's output order exactly.
        """
        sort_dim = self.sort_dim
        column = self._columns[sort_dim]
        start = bisect_left(column, lows[sort_dim])
        stop = bisect_right(column, highs[sort_dim], lo=start)
        if start >= stop:
            return []
        candidates: Sequence[int] = range(start, stop)
        for dim, col in enumerate(self._columns):
            if dim == sort_dim:
                continue
            low = lows[dim]
            high = highs[dim]
            candidates = [i for i in candidates if low <= col[i] <= high]
            if not candidates:
                return []
        order = self._order
        return sorted(order[i] for i in candidates)

    def matching(
        self,
        records: Sequence[Record],
        lows: Sequence[float],
        highs: Sequence[float],
    ) -> list[Record]:
        """The records of *records* (the list this store was built
        from) whose keys fall inside the closed box, insertion order."""
        return [records[i] for i in self.matching_positions(lows, highs)]
