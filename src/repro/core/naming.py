"""The m-dimensional naming function ``fmd`` (Section 3.4).

``fmd`` maps every *leaf* label of a space kd-tree to a distinct
*internal-node* label — a bijection (Theorems 2/4) — and the leaf
bucket of λ is stored at DHT key ``fmd(λ)``.  The function's recursive
definition strips the last bit while it equals the bit ``m`` positions
earlier:

    fmd(b1 … b_{i-m} … b_i) = fmd(b1 … b_{i-1})   if b_{i-m} == b_i
                            = b1 … b_{i-1}         otherwise

Intuitively (for 2-D) this walks up from the leaf past every ancestor
aligned with it in quadrant position and stops at the first one that is
not.  The closed form implemented here scans once from the end; the
literal recursion is kept as :func:`naming_function_recursive` and the
test suite checks the two agree on random labels.

Worked examples from the paper (2-D, ``# == "001"``)::

    fmd(#0101111) == #0101
    fmd(#0011111) == #001
    fmd(#101111)  == #101
    fmd(#)        == 00        (the virtual root)
"""

from __future__ import annotations

from repro.common.errors import InvalidLabelError
from repro.common.labels import PackedLabel, is_valid_label, virtual_root


def naming_function(label: str, dims: int) -> str:
    """Closed-form ``fmd``: name of the leaf labelled *label*.

    Finds the largest index ``j`` with ``b_{j-m} != b_j`` and returns
    the prefix of length ``j - 1``.  Such a ``j`` always exists for a
    valid non-virtual-root label because the ordinary root ends in
    ``'1'`` while the virtual-root prefix is all ``'0'``.

    The backward scan terminates after ~2 characters in expectation
    (each step survives only when the bit ``m`` back agrees), so the
    string form keeps it; callers already holding a *packed* label —
    the lookup cursor derives one name per probe — use
    :func:`packed_naming_function`, which replaces even that scan with
    O(1) bit arithmetic and skips revalidation.
    """
    _check(label, dims)
    # 1-indexed positions j in [dims+1, len]; scan from the end for the
    # last disagreement between b_j and b_{j-m}.
    for j in range(len(label), dims, -1):
        if label[j - 1] != label[j - 1 - dims]:
            return label[: j - 1]
    raise InvalidLabelError(
        f"no disagreement found in {label!r}; label is malformed"
    )


def packed_naming_function(packed: PackedLabel, dims: int) -> PackedLabel:
    """``fmd`` on a bit-packed label (no validation — hot path).

    Bit ``p`` (LSB-numbered) of ``bits ^ (bits >> m)`` is set exactly
    when character ``len - 1 - p`` disagrees with the one ``m`` places
    before it, so the lowest set bit inside the window of positions
    that have an ``m``-back partner locates the largest disagreeing
    ``j``; the name is the prefix ending just before it.
    """
    bits, length = packed
    window = (bits ^ (bits >> dims)) & ((1 << (length - dims)) - 1)
    if not window:
        raise InvalidLabelError(
            f"no disagreement found in "
            f"{format(bits, f'0{length}b')!r}; label is malformed"
        )
    drop = (window & -window).bit_length()
    return bits >> drop, length - drop


def naming_function_recursive(label: str, dims: int) -> str:
    """Literal transcription of Definition 2 (test oracle)."""
    _check(label, dims)
    if label[-1] == label[-1 - dims]:
        return naming_function_recursive(label[:-1], dims)
    return label[:-1]


def name_run_end(candidate: str, name_length: int, dims: int) -> int:
    """Largest prefix length of *candidate* still named to its
    ``name_length``-long prefix.

    The set of prefix lengths ``L`` with
    ``fmd(candidate[:L]) == candidate[:name_length]`` is the contiguous
    run ``[name_length + 1, M]``: extending past the first post-name bit
    keeps the name exactly while each appended bit equals the bit ``m``
    back.  The binary-search lookup (Section 5) uses this to discard a
    whole run of candidates after one probe — the paper's observation
    that probing ``#101`` "has also examined candidate label ``#1011``".
    """
    if name_length < dims or name_length >= len(candidate):
        raise InvalidLabelError(
            f"name length {name_length} out of range for candidate of "
            f"length {len(candidate)}"
        )
    end = name_length + 1
    while end + 1 <= len(candidate) and candidate[end - dims] == candidate[end]:
        end += 1
    return end


def survivor_child(label: str, dims: int) -> str:
    """The child of splitting leaf *label* that keeps the parent's name.

    Theorem 5 (incremental split): of the children ``label+'0'`` and
    ``label+'1'``, exactly one has ``fmd(child) == fmd(label)`` — the
    one whose new last bit equals the bit ``m`` positions before it —
    and it therefore stays on the same peer (indeed under the same DHT
    key).  The other child is named ``label`` itself and moves.
    """
    _check(label, dims)
    surviving_bit = label[len(label) - dims]
    return label + surviving_bit


def moved_child(label: str, dims: int) -> str:
    """The child of splitting leaf *label* that is named ``label`` and
    must be transferred across the DHT (Theorem 5's other half)."""
    _check(label, dims)
    moved_bit = "1" if label[len(label) - dims] == "0" else "0"
    return label + moved_bit


def _check(label: str, dims: int) -> None:
    if not is_valid_label(label, dims):
        raise InvalidLabelError(
            f"{label!r} is not a valid label for {dims}-dimensional data"
        )
    if label == virtual_root(dims):
        raise InvalidLabelError(
            "the virtual root is an internal node; fmd applies to leaves"
        )
