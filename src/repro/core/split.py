"""Index splitting and merging strategies (Section 4).

Two interchangeable strategies decide when a leaf bucket splits and
what it splits into:

* :class:`ThresholdSplit` — the conventional scheme: split when the
  load exceeds ``theta_split``, merge a sibling pair holding fewer than
  ``theta_merge`` records in total.
* :class:`DataAwareSplit` — the paper's contribution (Section 4.2,
  Algorithm 1): given an expected load ``epsilon``, locally compute the
  *optimal split subtree* minimising ``sum((l_leaf - epsilon)**2)`` and
  split only when that strictly lowers the objective.  Theorem 6: this
  minimises the variance of expected load over peers.

A strategy returns a :class:`SplitPlan` — the set of replacement leaves
with their records — and the index layer applies it using the naming
function's incremental-split property, so strategies stay pure local
computations with no DHT knowledge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.common.geometry import Region, region_of_label
from repro.common.labels import label_depth, split_dimension
from repro.core.records import Record
from repro.core.store import Rows


def _freeze(records):
    """Plan-leaf payload: Rows pass through, record lists freeze."""
    if isinstance(records, Rows):
        return records
    return tuple(records)


@dataclass(frozen=True, slots=True)
class SplitPlan:
    """Replacement of leaf *origin* by the leaves of a local subtree.

    ``leaves`` maps each new leaf label to its records — a tuple of
    :class:`Record` or a columnar :class:`~repro.core.store.Rows` block
    (the bulk-load path partitions columns without materializing record
    objects); the labels are exactly the leaf set of a subtree rooted at
    *origin* (possibly deeper than one level under the data-aware
    strategy, and including empty leaves — every leaf needs a bucket for
    the bijection to hold).
    """

    origin: str
    leaves: tuple[tuple[str, "tuple[Record, ...] | Rows"], ...]

    def __post_init__(self) -> None:
        if len(self.leaves) < 2:
            raise ReproError("a split plan must produce at least 2 leaves")
        for label, _ in self.leaves:
            if not label.startswith(self.origin) or label == self.origin:
                raise ReproError(
                    f"plan leaf {label!r} is not below origin {self.origin!r}"
                )

    @property
    def total_records(self) -> int:
        """Records across all plan leaves (== the origin's load)."""
        return sum(len(records) for _, records in self.leaves)


def partition_records(
    label: str, dims: int, records: list[Record], region: Region | None = None
) -> tuple[list[Record], list[Record]]:
    """Split *records* of cell *label* between its two children.

    The space partitioning is data independent: the cell is halved at
    its midpoint along ``split_dimension(label)`` regardless of where
    the records lie (Section 3.2).

    *region* is the cell of *label* when the caller already holds it —
    Algorithm 1's recursion threads each child's region down via
    :meth:`Region.split`, so no level re-derives its cell from the
    label string.  Omitted, it is fetched from the memoized
    :func:`region_of_label`.
    """
    dim = split_dimension(label, dims)
    if region is None:
        region = region_of_label(label, dims)
    midpoint = (region.lows[dim] + region.highs[dim]) / 2.0
    if isinstance(records, Rows):
        # Column-level partition; float compares on the same IEEE
        # doubles, so the assignment is bit-identical to the scan below.
        return records.partition(dim, midpoint)
    lower = [record for record in records if record.key[dim] < midpoint]
    upper = [record for record in records if record.key[dim] >= midpoint]
    return lower, upper


class SplitStrategy(ABC):
    """Decides leaf splits and sibling merges from loads alone."""

    @abstractmethod
    def plan_split(
        self, label: str, records: list[Record], dims: int, max_depth: int
    ) -> SplitPlan | None:
        """Return the split to apply, or None to leave the leaf alone."""

    @abstractmethod
    def should_merge(self, load_a: int, load_b: int) -> bool:
        """True when sibling leaves with these loads should merge."""


class ThresholdSplit(SplitStrategy):
    """Conventional threshold-based maintenance (Section 4.1)."""

    def __init__(self, split_threshold: int, merge_threshold: int | None = None):
        if split_threshold < 1:
            raise ReproError("split_threshold must be >= 1")
        if merge_threshold is None:
            merge_threshold = split_threshold // 2
        if not 0 <= merge_threshold < split_threshold:
            raise ReproError(
                "need 0 <= theta_merge < theta_split for split/merge "
                f"consistency (got {merge_threshold} vs {split_threshold})"
            )
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold

    def plan_split(
        self, label: str, records: list[Record], dims: int, max_depth: int
    ) -> SplitPlan | None:
        if len(records) <= self.split_threshold:
            return None
        leaves: list[tuple[str, tuple[Record, ...]]] = []
        self._split_into(
            label, records, dims, max_depth, leaves,
            region_of_label(label, dims),
        )
        if len(leaves) < 2:
            return None  # depth cap reached immediately; cannot split
        return SplitPlan(label, tuple(leaves))

    def _split_into(self, label, records, dims, max_depth, out, region) -> None:
        at_cap = label_depth(label, dims) >= max_depth
        if len(records) <= self.split_threshold or at_cap:
            out.append((label, _freeze(records)))
            return
        lower, upper = partition_records(label, dims, records, region)
        # Incremental midpoints: one Region.split per level instead of
        # a from-scratch cell derivation per recursive call.
        low_region, high_region = region.split(split_dimension(label, dims))
        self._split_into(label + "0", lower, dims, max_depth, out, low_region)
        self._split_into(label + "1", upper, dims, max_depth, out, high_region)

    def should_merge(self, load_a: int, load_b: int) -> bool:
        return load_a + load_b < self.merge_threshold


class DataAwareSplit(SplitStrategy):
    """The paper's data-aware splitting strategy (Algorithm 1).

    ``expected_load`` is epsilon: the *expected* (not bounding) number
    of records per bucket.  On every load change the bucket locally
    computes the subtree rooted at itself minimising the total squared
    deviation from epsilon, and splits into that subtree's leaves when
    the minimum strictly beats keeping the bucket whole.
    """

    def __init__(self, expected_load: int):
        if expected_load < 1:
            raise ReproError("expected_load (epsilon) must be >= 1")
        self.expected_load = expected_load

    def plan_split(
        self, label: str, records: list[Record], dims: int, max_depth: int
    ) -> SplitPlan | None:
        local_cost = self._deviation(len(records))
        best_cost, leaves = self._local_split(label, records, dims, max_depth)
        if best_cost >= local_cost or len(leaves) < 2:
            return None
        return SplitPlan(label, tuple(leaves))

    def optimal_cost(
        self, label: str, records: list[Record], dims: int, max_depth: int
    ) -> float:
        """The minimised total difference (exposed for tests/ablations)."""
        return self._local_split(label, records, dims, max_depth)[0]

    def _local_split(self, label, records, dims, max_depth, region=None):
        """Algorithm 1: returns (min cost, leaves of the optimal subtree).

        Divide and conquer exactly as the paper's pseudo-code, with a
        depth cap so degenerate inputs (many coincident keys) terminate.
        The cell region is threaded through the recursion (one
        :meth:`Region.split` per level) so Algorithm 1 stops
        re-deriving cells from label strings at every recursion level.
        """
        local_cost = self._deviation(len(records))
        if len(records) <= self.expected_load:
            return local_cost, [(label, _freeze(records))]
        if label_depth(label, dims) >= max_depth:
            return local_cost, [(label, _freeze(records))]
        if region is None:
            region = region_of_label(label, dims)
        lower, upper = partition_records(label, dims, records, region)
        low_region, high_region = region.split(split_dimension(label, dims))
        left_cost, left_leaves = self._local_split(
            label + "0", lower, dims, max_depth, low_region
        )
        right_cost, right_leaves = self._local_split(
            label + "1", upper, dims, max_depth, high_region
        )
        non_local = left_cost + right_cost
        if local_cost <= non_local:
            return local_cost, [(label, _freeze(records))]
        return non_local, left_leaves + right_leaves

    def should_merge(self, load_a: int, load_b: int) -> bool:
        """Merge when it strictly lowers the squared-deviation objective.

        Symmetric counterpart of the split criterion; strictness on both
        sides rules out split/merge oscillation.
        """
        merged = self._deviation(load_a + load_b)
        separate = self._deviation(load_a) + self._deviation(load_b)
        return merged < separate

    def _deviation(self, load: int) -> float:
        delta = load - self.expected_load
        return float(delta * delta)
