"""The m-LIGHT index (the paper's primary contribution).

Public API:

* :class:`~repro.core.index.MLightIndex` — the over-DHT index;
  ``insert`` / ``delete`` / ``lookup`` / ``range_query``.
* :class:`~repro.core.split.ThresholdSplit` and
  :class:`~repro.core.split.DataAwareSplit` — the two maintenance
  strategies of Section 4.
* :func:`~repro.core.naming.naming_function` — the m-dimensional naming
  function ``fmd`` of Section 3.4.
"""

from repro.core.records import Record
from repro.core.bucket import LeafBucket
from repro.core.cache import LeafCache
from repro.core.naming import naming_function, naming_function_recursive
from repro.core.split import (
    SplitPlan,
    SplitStrategy,
    ThresholdSplit,
    DataAwareSplit,
)
from repro.core.bulkload import bulk_load
from repro.core.knn import KnnEngine
from repro.core.results import (
    KnnResult,
    LookupResult,
    Neighbor,
    RangeQueryBuilder,
    RangeQueryResult,
)
from repro.core.index import MLightIndex, build_strategy

# Importing the codec installs the real wire model into repro.dht.api
# (and the simnet reply-cost hook), so byte accounting is codec-exact
# from the first message — not only after something happens to encode a
# bucket.  Import order, not luck, decides the accounting model.
import repro.core.codec  # noqa: E402,F401  (imported for its side effect)

__all__ = [
    "Record",
    "LeafBucket",
    "LeafCache",
    "naming_function",
    "naming_function_recursive",
    "SplitPlan",
    "SplitStrategy",
    "ThresholdSplit",
    "DataAwareSplit",
    "bulk_load",
    "build_strategy",
    "KnnEngine",
    "KnnResult",
    "Neighbor",
    "LookupResult",
    "RangeQueryBuilder",
    "RangeQueryResult",
    "MLightIndex",
]
