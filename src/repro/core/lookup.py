"""The m-LIGHT lookup operation (Section 5), plus the cached hint path.

Given a data key δ, return the leaf bucket covering δ.  The candidate
labels are the prefixes (length ``m+1`` to ``m+1+D``) of the root label
followed by the interleaved binary expansion of δ; the engine binary
searches this candidate set, spending one DHT-get per probe.

Probe outcomes and how they cut the search interval — each is a
consequence of the naming function's structure (see the worked example
for ``<0.3, 0.9>`` in the paper):

* **miss** (no bucket at ``fmd(c_mid)``): then ``fmd(c_mid)`` is not an
  internal node, so the target leaf is no longer than it — the upper
  bound drops to ``len(fmd(c_mid))``, strictly below ``mid``.
* **hit, covering**: done.
* **hit, not covering**: ``fmd(c_mid)`` is internal (a leaf is named to
  it), so the target is strictly deeper; moreover *every* candidate in
  the contiguous run named to ``fmd(c_mid)`` is ruled out at once
  (the probed bucket is the only leaf with that name), so the lower
  bound jumps past the run's end.

When the caller supplies a :class:`~repro.core.cache.LeafCache`, the
engine first probes the name of the deepest cached label covering δ.
A fresh hit answers in **one** DHT-get.  A stale hint (the cached leaf
split or merged away since it was observed) is just another probe of a
candidate prefix, so its outcome feeds the very same case analysis
above and tightens the interval the fallback binary search starts
from — correctness never depends on cache freshness, and every hint
probe is metered like any other DHT-get.
"""

from __future__ import annotations

from repro.common.errors import IndexCorruptionError
from repro.common.geometry import Point, check_point
from repro.common.labels import candidate_string
from repro.core.cache import LeafCache
from repro.core.keys import bucket_key
from repro.core.naming import name_run_end, naming_function
from repro.core.results import LookupResult
from repro.dht.api import Dht

__all__ = ["LookupResult", "lookup_point"]


def lookup_point(
    dht: Dht,
    point: Point,
    dims: int,
    max_depth: int,
    *,
    min_label_length: int | None = None,
    max_label_length: int | None = None,
    cache: LeafCache | None = None,
) -> LookupResult:
    """Locate the leaf bucket covering *point*; hinted when cached.

    *min_label_length* / *max_label_length* optionally tighten the
    initial bounds — range-query fallbacks use them when they already
    know the target leaf lies strictly between a node that exists and a
    speculative label that does not.

    *cache* enables the hinted fast path and is warmed with every leaf
    this lookup observes (the covering leaf, and any current leaf a
    stale probe happened to return).
    """
    point = check_point(point, dims)
    candidate = candidate_string(point, max_depth)
    low = dims + 1
    high = len(candidate)
    if min_label_length is not None:
        low = max(low, min_label_length)
    if max_label_length is not None:
        high = min(high, max_label_length)
    probes = 0

    if cache is not None:
        hint = cache.propose(candidate, low, high)
        if hint is None:
            dht.stats.cache_misses += 1
        else:
            name = naming_function(hint, dims)
            probes += 1
            bucket = dht.get(bucket_key(name))
            if bucket is not None and bucket.covers(point):
                dht.stats.cache_hits += 1
                cache.observe(bucket.label)
                return LookupResult(bucket, probes, probes)
            # Stale: the cached leaf split or merged away.  The probe
            # still proved a bound under the *current* tree (same case
            # analysis as the binary search below), so fall back with a
            # tightened interval.
            dht.stats.cache_stale += 1
            cache.forget(hint)
            if bucket is None:
                # fmd(hint) is not internal: target length <= len(name).
                high = min(high, len(name))
            else:
                # fmd(hint) is internal; its one named leaf is current
                # (worth caching) but not the target: skip its whole
                # candidate run.
                cache.observe(bucket.label)
                low = max(low, name_run_end(candidate, len(name), dims) + 1)

    while low <= high:
        mid = (low + high) // 2
        name = naming_function(candidate[:mid], dims)
        probes += 1
        bucket = dht.get(bucket_key(name))
        if bucket is None:
            # fmd(c_mid) is not internal: target length <= len(name).
            if len(name) < low:
                raise IndexCorruptionError(
                    f"lookup of {point}: miss at {name!r} contradicts "
                    f"lower bound {low}"
                )
            high = len(name)
        elif bucket.covers(point):
            if cache is not None:
                cache.observe(bucket.label)
            return LookupResult(bucket, probes, probes)
        else:
            # fmd(c_mid) is internal and its one named leaf is not the
            # target: skip the whole candidate run named to it.
            new_low = name_run_end(candidate, len(name), dims) + 1
            if new_low <= low:
                raise IndexCorruptionError(
                    f"lookup of {point}: no progress at name {name!r}"
                )
            low = new_low

    raise IndexCorruptionError(
        f"lookup of {point} exhausted candidates; index tree is "
        "inconsistent or max_depth is smaller than the real tree depth"
    )
