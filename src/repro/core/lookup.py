"""The m-LIGHT lookup operation (Section 5).

Given a data key δ, return the leaf bucket covering δ.  The candidate
labels are the prefixes (length ``m+1`` to ``m+1+D``) of the root label
followed by the interleaved binary expansion of δ; the engine binary
searches this candidate set, spending one DHT-get per probe.

Probe outcomes and how they cut the search interval — each is a
consequence of the naming function's structure (see the worked example
for ``<0.3, 0.9>`` in the paper):

* **miss** (no bucket at ``fmd(c_mid)``): then ``fmd(c_mid)`` is not an
  internal node, so the target leaf is no longer than it — the upper
  bound drops to ``len(fmd(c_mid))``, strictly below ``mid``.
* **hit, covering**: done.
* **hit, not covering**: ``fmd(c_mid)`` is internal (a leaf is named to
  it), so the target is strictly deeper; moreover *every* candidate in
  the contiguous run named to ``fmd(c_mid)`` is ruled out at once
  (the probed bucket is the only leaf with that name), so the lower
  bound jumps past the run's end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import IndexCorruptionError
from repro.common.geometry import Point, check_point
from repro.common.labels import candidate_string
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key
from repro.core.naming import name_run_end, naming_function
from repro.dht.api import Dht


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of one lookup: the covering bucket plus its cost."""

    bucket: LeafBucket
    lookups: int
    rounds: int


def lookup_point(
    dht: Dht,
    point: Point,
    dims: int,
    max_depth: int,
    *,
    min_label_length: int | None = None,
    max_label_length: int | None = None,
) -> LookupResult:
    """Binary-search lookup of the leaf bucket covering *point*.

    *min_label_length* / *max_label_length* optionally tighten the
    initial bounds — range-query fallbacks use them when they already
    know the target leaf lies strictly between a node that exists and a
    speculative label that does not.
    """
    point = check_point(point, dims)
    candidate = candidate_string(point, max_depth)
    low = dims + 1
    high = len(candidate)
    if min_label_length is not None:
        low = max(low, min_label_length)
    if max_label_length is not None:
        high = min(high, max_label_length)
    probes = 0

    while low <= high:
        mid = (low + high) // 2
        name = naming_function(candidate[:mid], dims)
        probes += 1
        bucket = dht.get(bucket_key(name))
        if bucket is None:
            # fmd(c_mid) is not internal: target length <= len(name).
            if len(name) < low:
                raise IndexCorruptionError(
                    f"lookup of {point}: miss at {name!r} contradicts "
                    f"lower bound {low}"
                )
            high = len(name)
        elif bucket.covers(point):
            return LookupResult(bucket, probes, probes)
        else:
            # fmd(c_mid) is internal and its one named leaf is not the
            # target: skip the whole candidate run named to it.
            new_low = name_run_end(candidate, len(name), dims) + 1
            if new_low <= low:
                raise IndexCorruptionError(
                    f"lookup of {point}: no progress at name {name!r}"
                )
            low = new_low

    raise IndexCorruptionError(
        f"lookup of {point} exhausted candidates; index tree is "
        "inconsistent or max_depth is smaller than the real tree depth"
    )
