"""The m-LIGHT lookup operation (Section 5), plus the cached hint path.

Given a data key δ, return the leaf bucket covering δ.  The candidate
labels are the prefixes (length ``m+1`` to ``m+1+D``) of the root label
followed by the interleaved binary expansion of δ; the engine binary
searches this candidate set, spending one DHT-get per probe.

Probe outcomes and how they cut the search interval — each is a
consequence of the naming function's structure (see the worked example
for ``<0.3, 0.9>`` in the paper):

* **miss** (no bucket at ``fmd(c_mid)``): then ``fmd(c_mid)`` is not an
  internal node, so the target leaf is no longer than it — the upper
  bound drops to ``len(fmd(c_mid))``, strictly below ``mid``.
* **hit, covering**: done.
* **hit, not covering**: ``fmd(c_mid)`` is internal (a leaf is named to
  it), so the target is strictly deeper; moreover *every* candidate in
  the contiguous run named to ``fmd(c_mid)`` is ruled out at once
  (the probed bucket is the only leaf with that name), so the lower
  bound jumps past the run's end.

When the caller supplies a :class:`~repro.core.cache.LeafCache`, the
engine first probes the name of the deepest cached label covering δ.
A fresh hit answers in **one** DHT-get.  A stale hint (the cached leaf
split or merged away since it was observed) is just another probe of a
candidate prefix, so its outcome feeds the very same case analysis
above and tightens the interval the fallback binary search starts
from — correctness never depends on cache freshness, and every hint
probe is metered like any other DHT-get.

The search itself lives in :class:`PointLookupCursor`, a resumable
state machine that exposes the *next key to probe* and consumes probe
outcomes one at a time.  :func:`lookup_point` drives one cursor to
completion sequentially; the range-query engine instead folds one step
of every in-flight cursor into each of its parallel rounds, so
concurrent fallback searches advance together with the frontier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import IndexCorruptionError, NodeUnreachableError
from repro.common.geometry import Point, check_point
from repro.common.labels import packed_candidate, unpack_label
from repro.core.cache import LeafCache
from repro.core.keys import bucket_key
from repro.core.naming import (
    name_run_end,
    naming_function,
    packed_naming_function,
)
from repro.core.results import LookupResult
from repro.dht.api import Dht, DhtStats

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

__all__ = ["LookupResult", "PointLookupCursor", "lookup_point"]


class PointLookupCursor:
    """Resumable binary search for the leaf covering one point.

    The cursor holds the search interval and, after construction or
    each :meth:`advance`, the next candidate name to probe.  The caller
    owns the DHT traffic: fetch :meth:`current_key`, feed the returned
    bucket (or ``None``) back through :meth:`advance`, repeat until
    :attr:`done`.  Splitting the state from the transport is what lets
    the batched plane run many searches in lockstep — one ``get_many``
    per search level instead of one ``get`` per probe.

    Cache hint proposal happens at construction (and its miss/hit/stale
    tallies land on *stats*), so concurrently-driven cursors all
    propose against the same cache state regardless of execution order.
    """

    __slots__ = (
        "_stats",
        "_cache",
        "_dims",
        "_point",
        "_candidate",
        "_cand_bits",
        "_low",
        "_high",
        "_hint",
        "_name",
        "probes",
        "result",
        "tracer",
    )

    def __init__(
        self,
        stats: DhtStats,
        point: Point,
        dims: int,
        max_depth: int,
        *,
        min_label_length: int | None = None,
        max_label_length: int | None = None,
        cache: LeafCache | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self._stats = stats
        self._cache = cache
        self.tracer = tracer
        self._dims = dims
        self._point = check_point(point, dims)
        # The candidate is computed and probed on the packed fast path:
        # the string form is kept for run-end scans and diagnostics,
        # the integer form derives each probe's name with O(1) bit ops.
        packed = packed_candidate(self._point, max_depth)
        self._cand_bits = packed[0]
        self._candidate = unpack_label(packed)
        self._low = dims + 1
        self._high = len(self._candidate)
        if min_label_length is not None:
            self._low = max(self._low, min_label_length)
        if max_label_length is not None:
            self._high = min(self._high, max_label_length)
        self.probes = 0
        self.result: LookupResult | None = None
        self._hint: str | None = None
        self._name: str | None = None
        if cache is not None:
            hint = cache.propose(self._candidate, self._low, self._high)
            if hint is None:
                stats.cache_misses += 1
            else:
                self._hint = hint
                self._name = naming_function(hint, dims)
                if tracer is not None:
                    tracer.event("cache_hint", label=hint)
        if self._name is None:
            self._select_mid()

    @property
    def done(self) -> bool:
        """True once the covering leaf was found."""
        return self.result is not None

    def current_key(self) -> str:
        """The DHT key the cursor wants probed next."""
        assert self._name is not None, "cursor already done"
        return bucket_key(self._name)

    def _select_mid(self) -> None:
        if self._low > self._high:
            raise IndexCorruptionError(
                f"lookup of {self._point} exhausted candidates; index "
                "tree is inconsistent or max_depth is smaller than the "
                "real tree depth"
            )
        mid = (self._low + self._high) // 2
        self._name = unpack_label(
            packed_naming_function(
                (self._cand_bits >> (len(self._candidate) - mid), mid),
                self._dims,
            )
        )

    def probe_failed(self) -> bool:
        """Consume an *unreachable* outcome for :meth:`current_key`.

        Returns True when the cursor can make progress anyway — only
        the hinted probe can: the hint names one specific (possibly
        dead) peer's key, so the cursor evicts the hint from the cache
        (a dead hint must not stay cached and redirect the next lookup
        to the same unreachable peer) and falls back to the ordinary
        binary search, whose first mid-probe targets a different key.

        A failed *search* probe returns False: re-probing the same key
        cannot progress — the retry wrapper below already spent its
        budget on it — so the caller must degrade (mark the subquery
        unresolved) or propagate.
        """
        self.probes += 1
        if self._hint is None:
            return False
        hint, self._hint = self._hint, None
        self._cache.forget(hint)
        if self.tracer is not None:
            self.tracer.event("cache_hint_dead", label=hint)
        self._select_mid()
        return True

    def advance(self, bucket) -> None:
        """Consume the probe outcome for :meth:`current_key`."""
        self.probes += 1
        name = self._name

        if self._hint is not None:
            hint, self._hint = self._hint, None
            if bucket is not None and bucket.covers(self._point):
                self._stats.cache_hits += 1
                self._cache.observe(bucket.label)
                self.result = LookupResult(bucket, self.probes, self.probes)
                self._name = None
                return
            # Stale: the cached leaf split or merged away.  The probe
            # still proved a bound under the *current* tree (same case
            # analysis as the binary search below), so fall back with a
            # tightened interval.
            self._stats.cache_stale += 1
            self._cache.forget(hint)
            if self.tracer is not None:
                self.tracer.event("cache_hint_stale", label=hint)
            if bucket is None:
                # fmd(hint) is not internal: target length <= len(name).
                self._high = min(self._high, len(name))
            else:
                # fmd(hint) is internal; its one named leaf is current
                # (worth caching) but not the target: skip its whole
                # candidate run.
                self._cache.observe(bucket.label)
                self._low = max(
                    self._low,
                    name_run_end(self._candidate, len(name), self._dims) + 1,
                )
            self._select_mid()
            return

        if bucket is None:
            # fmd(c_mid) is not internal: target length <= len(name).
            if len(name) < self._low:
                raise IndexCorruptionError(
                    f"lookup of {self._point}: miss at {name!r} "
                    f"contradicts lower bound {self._low}"
                )
            self._high = len(name)
        elif bucket.covers(self._point):
            if self._cache is not None:
                self._cache.observe(bucket.label)
            self.result = LookupResult(bucket, self.probes, self.probes)
            self._name = None
            return
        else:
            # fmd(c_mid) is internal and its one named leaf is not the
            # target: skip the whole candidate run named to it.
            new_low = name_run_end(self._candidate, len(name), self._dims) + 1
            if new_low <= self._low:
                raise IndexCorruptionError(
                    f"lookup of {self._point}: no progress at name {name!r}"
                )
            self._low = new_low
        self._select_mid()


def lookup_point(
    dht: Dht,
    point: Point,
    dims: int,
    max_depth: int,
    *,
    min_label_length: int | None = None,
    max_label_length: int | None = None,
    cache: LeafCache | None = None,
    tracer: "Tracer | None" = None,
) -> LookupResult:
    """Locate the leaf bucket covering *point*; hinted when cached.

    *min_label_length* / *max_label_length* optionally tighten the
    initial bounds — range-query fallbacks use them when they already
    know the target leaf lies strictly between a node that exists and a
    speculative label that does not.

    *cache* enables the hinted fast path and is warmed with every leaf
    this lookup observes (the covering leaf, and any current leaf a
    stale probe happened to return).

    *tracer*, when given, wraps the search in a ``query``-kind span and
    annotates cache hint proposals/evictions as span events.
    """
    if tracer is None:
        return _drive_lookup(
            dht,
            point,
            dims,
            max_depth,
            min_label_length=min_label_length,
            max_label_length=max_label_length,
            cache=cache,
        )
    with tracer.span("query", "lookup", point=list(point)) as span:
        result = _drive_lookup(
            dht,
            point,
            dims,
            max_depth,
            min_label_length=min_label_length,
            max_label_length=max_label_length,
            cache=cache,
            tracer=tracer,
        )
        span.attrs["probes"] = result.lookups
        span.attrs["leaf"] = result.bucket.label
        return result


def _drive_lookup(
    dht: Dht,
    point: Point,
    dims: int,
    max_depth: int,
    *,
    min_label_length: int | None = None,
    max_label_length: int | None = None,
    cache: LeafCache | None = None,
    tracer: "Tracer | None" = None,
) -> LookupResult:
    cursor = PointLookupCursor(
        dht.stats,
        point,
        dims,
        max_depth,
        min_label_length=min_label_length,
        max_label_length=max_label_length,
        cache=cache,
        tracer=tracer,
    )
    while not cursor.done:
        try:
            bucket = dht.get(cursor.current_key())
        except NodeUnreachableError:
            if not cursor.probe_failed():
                raise
            continue
        cursor.advance(bucket)
    assert cursor.result is not None
    return cursor.result
