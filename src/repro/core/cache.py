"""Client-side leaf cache: O(1) warm lookups over the Section-5 search.

Every cold :func:`~repro.core.lookup.lookup_point` pays a binary search
over the candidate set — O(log D) DHT-gets (ablation A2 meters it).
Peers that repeatedly touch the same region can do much better: they
remember the leaf labels they saw and, on the next lookup, probe the
remembered leaf's name *first*.  Because the space partitioning is data
independent, a cached label is enough to recompute its DHT key locally
(``fmd`` is a pure function), so a cache entry is just the label string.

Correctness does not depend on freshness.  A proposal is only ever a
*hint*: the hinted probe is a metered DHT-get like any other, and the
caller trusts nothing but the probe's outcome —

* the returned bucket covers the point → done, one DHT-get;
* the probe missed, or returned a non-covering bucket → the hint was
  stale (the leaf split or merged away), but the outcome still *proves*
  a bound on the target label's length under the current tree, so the
  fallback binary search restarts with a tightened interval.

Staleness therefore costs one extra probe, never a wrong answer — the
same discipline as the paper's cost model, where every piece of remote
state an operation relies on is paid for with a DHT-lookup.

A hint can also be *dead*: its peer unreachable rather than its label
stale.  The lookup engine evicts the hint on an unreachable hinted
probe (:meth:`~repro.core.lookup.PointLookupCursor.probe_failed`) —
leaving it cached would steer every subsequent lookup in the region
back into the same dead peer's retry budget.

Bounding and invalidation:

* the cache is LRU-bounded (``capacity`` entries);
* :meth:`LeafCache.bump_generation` invalidates every current entry in
  O(1) — entries are tagged with the generation that observed them and
  stale-generation entries are dropped lazily on access.  Clients use
  it when they learn the tree churned wholesale (e.g. after a bulk
  load or a churn episode) without enumerating labels.

Hit/stale/miss counters are metered on the shared
:class:`~repro.dht.api.DhtStats` by the lookup engine, next to the
paper's cost counters, so experiments read them from one place.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ReproError

#: Default number of leaf labels a client remembers.
DEFAULT_CACHE_CAPACITY = 256


class LeafCache:
    """LRU-bounded map of recently observed leaf labels.

    Entries are leaf labels (plain bit strings); values are the
    generation tag current when the label was observed.  The cache is
    a pure data structure: it issues no DHT traffic and keeps no cost
    counters of its own.
    """

    __slots__ = ("_capacity", "_entries", "_generation")

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ReproError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._generation = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of labels retained."""
        return self._capacity

    @property
    def generation(self) -> int:
        """Current generation tag; bumping it invalidates all entries."""
        return self._generation

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: str) -> bool:
        return self._entries.get(label) == self._generation

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(self, label: str) -> None:
        """Record *label* as a currently existing leaf (most recent)."""
        entries = self._entries
        if label in entries:
            entries.move_to_end(label)
        entries[label] = self._generation
        while len(entries) > self._capacity:
            entries.popitem(last=False)

    def forget(self, label: str) -> None:
        """Drop *label* (a probe proved it is no longer a leaf)."""
        self._entries.pop(label, None)

    def bump_generation(self) -> None:
        """Invalidate every current entry in O(1)."""
        self._generation += 1

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------

    def propose(
        self, candidate: str, low: int, high: int
    ) -> str | None:
        """Deepest cached label covering the point of *candidate*.

        A label covers the point iff it is a prefix of the candidate
        string, so the proposal is the longest cached prefix whose
        length lies in the caller's open search interval
        ``[low, high]`` (hints outside the interval cannot be the
        target under the caller's already-proven bounds).  Returns
        ``None`` when nothing useful is cached — the caller falls back
        to the cold binary search.
        """
        entries = self._entries
        generation = self._generation
        for length in range(min(high, len(candidate)), low - 1, -1):
            label = candidate[:length]
            tag = entries.get(label)
            if tag is None:
                continue
            if tag != generation:
                del entries[label]  # lazy generation invalidation
                continue
            entries.move_to_end(label)
            return label
        return None
