"""k-nearest-neighbour queries over the m-LIGHT index.

The paper motivates over-DHT indexing with range *and similarity*
queries (Section 1) but only develops range processing; this module
supplies the similarity side as an extension, built entirely on the
published primitives: an expanding-ring search that issues range
queries over growing boxes centred on the query point until the k-th
neighbour provably lies inside the searched ball.

Correctness argument: after a round that returned at least ``k``
candidates within distance ``r`` of the query point, every unexplored
cell lies outside the ``r``-box and therefore cannot contain anything
closer than the current k-th candidate — so the top-k is exact.

The engine threads the client's :class:`~repro.core.cache.LeafCache`
(when one is configured) through both the seeding point lookup and the
ring range queries, so repeated similarity searches around the same
region stay on the hinted fast path.

Degraded mode: ring queries inherit the range engine's partial-result
contract — when a probe stays unreachable past the retry budget the
ring answers with ``complete=False`` and the k-NN result carries that
flag through: the listed neighbours are real records at true
distances, but a closer neighbour may hide in an unresolved subregion.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Point, Region, check_point
from repro.core.cache import LeafCache
from repro.core.lookup import lookup_point
from repro.core.rangequery import RangeQueryEngine
from repro.core.results import KnnResult, Neighbor
from repro.dht.api import Dht

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

__all__ = ["KnnEngine", "KnnResult", "Neighbor", "euclidean"]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two keys.

    Delegates to :func:`math.dist` (C implementation) — ranking every
    candidate of a k-NN ring is a hot loop, and ``math.dist`` also
    raises on arity mismatch where a hand-rolled ``zip`` would
    silently truncate.
    """
    return math.dist(a, b)


class KnnEngine:
    """Expanding-ring k-NN over any DHT carrying an m-LIGHT tree."""

    def __init__(
        self,
        dht: Dht,
        dims: int,
        max_depth: int,
        cache: LeafCache | None = None,
        *,
        batched: bool = True,
        tracer: "Tracer | None" = None,
    ) -> None:
        self._dht = dht
        self._dims = dims
        self._max_depth = max_depth
        self._cache = cache
        self.tracer = tracer
        # Ring expansions ride the same execution plane as plain range
        # queries: each ring's frontier probes go out as one round.
        self._ranges = RangeQueryEngine(
            dht, dims, max_depth, cache=cache, batched=batched,
            tracer=tracer,
        )

    def query(self, point: Point, k: int) -> KnnResult:
        """Return the *k* records nearest to *point* (exact).

        Costs the initial point lookup plus one range query per ring
        expansion; the ring at least doubles each round, so the number
        of expansions is logarithmic in the final radius.
        """
        if k < 1:
            raise ReproError(f"k must be >= 1, got {k}")
        point = check_point(point, self._dims)
        tracer = self.tracer
        if tracer is None:
            return self._execute(point, k)
        with tracer.span(
            "query", "knn", k=k, point=list(point)
        ) as span:
            result = self._execute(point, k)
            span.attrs["lookups"] = result.lookups
            span.attrs["rounds"] = result.rounds
            span.attrs["complete"] = result.complete
            return result

    def _execute(self, point: Point, k: int) -> KnnResult:

        # Seed the radius from the leaf covering the query point: its
        # cell diameter is the natural scale of the local data density.
        # The seed only tunes the starting radius, so an unreachable
        # seed probe degrades to a conservative guess instead of
        # aborting — exactness still comes from the rings alone.
        lookups_before = self._dht.stats.lookups
        try:
            seed = lookup_point(
                self._dht, point, self._dims, self._max_depth,
                cache=self._cache, tracer=self.tracer,
            )
        except NodeUnreachableError:
            spent = self._dht.stats.lookups - lookups_before
            lookups = spent
            rounds = spent  # sequential probes: one round each
            radius = 2.0 ** -(self._max_depth // self._dims)
        else:
            lookups = seed.lookups
            rounds = seed.rounds
            region = seed.bucket.region
            radius = max(
                euclidean(region.lows, region.highs) / 2.0,
                1e-6,
            )

        complete = True
        while True:
            box = self._ball_box(point, radius)
            if self.tracer is not None:
                self.tracer.event("ring", radius=radius)
            result = self._ranges.query(box)
            lookups += result.lookups
            rounds += result.rounds
            complete = complete and result.complete
            ranked = sorted(
                (
                    Neighbor(record, euclidean(record.key, point))
                    for record in result.records
                ),
                key=lambda neighbor: (neighbor.distance, neighbor.record.key),
            )
            within = [n for n in ranked if n.distance <= radius]
            if len(within) >= k:
                return KnnResult(
                    tuple(within[:k]), lookups, rounds, complete=complete
                )
            if self._covers_everything(box):
                # Fewer than k records exist in total (or, degraded,
                # fewer were reachable).
                return KnnResult(
                    tuple(ranked[:k]), lookups, rounds, complete=complete
                )
            shortfall_boost = 2.0 if not ranked else 1.0
            if len(ranked) >= k:
                # We have k candidates but the k-th might be beaten by
                # an unseen point just outside the box: grow to cover
                # its distance.
                radius = max(2.0 * radius, ranked[k - 1].distance)
            else:
                radius *= 2.0 * shortfall_boost

    def _ball_box(self, point: Point, radius: float) -> Region:
        lows = tuple(max(0.0, value - radius) for value in point)
        highs = tuple(min(1.0, value + radius) for value in point)
        return Region(lows, highs)

    @staticmethod
    def _covers_everything(box: Region) -> bool:
        return all(low == 0.0 for low in box.lows) and all(
            high == 1.0 for high in box.highs
        )