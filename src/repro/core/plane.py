"""Execution planes: how query engines turn probe sets into DHT traffic.

The m-LIGHT algorithms are described round-wise: each step produces a
set of *independent* probes (Section 6's parallel subqueries, Fig. 7's
lookahead frontier, one step of each in-flight fallback chain).  A
plane decides how one round's probes hit the substrate:

* :class:`SequentialPlane` issues them one ``get`` at a time — the
  reference semantics every equivalence test compares against, and the
  right plane for substrates or experiments that must observe each
  probe individually.
* :class:`BatchedPlane` issues each round as one
  :meth:`~repro.dht.api.Dht.get_many`, so batch-capable substrates
  execute the round concurrently and time-modelling substrates charge
  the round its critical path instead of the sum of its probes.

Both planes return one outcome per key in issuance order, so engines
process identical outcomes in identical order: answers and per-element
meters are the same on either plane, and only round structure
(``batch_rounds``, simulated network rounds and latency) differs.

Failure semantics are per-slot on both planes: a probe whose peer was
unreachable (after whatever retry wrapper the substrate stack carries
gave up) yields a :class:`~repro.dht.api.BatchFailure` in its slot
instead of aborting the round, so one dead probe never poisons the
round's other results.  The engines translate failed slots into
``complete=False`` partial results — see "Degraded mode" in
``docs/architecture.md``.

When a :class:`~repro.obs.trace.Tracer` is supplied, each round runs
inside a ``round`` span (``sequential_round``/``batched_round``) so
the trace tree mirrors the algorithm's round structure; with
``tracer=None`` (the default) the plane takes the exact pre-tracing
code path.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.dht.api import Dht, _capture

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

__all__ = ["BatchedPlane", "SequentialPlane", "make_plane"]


class SequentialPlane:
    """One metered ``get`` per probe, back-to-back."""

    batched = False

    def __init__(self, dht: Dht, tracer: "Tracer | None" = None) -> None:
        self._dht = dht
        self.tracer = tracer

    def get_round(self, keys: Sequence[str]) -> list[Any]:
        tracer = self.tracer
        if tracer is None:
            return [_capture(self._dht.get, key) for key in keys]
        with tracer.span("round", "sequential_round", probes=len(keys)):
            return [_capture(self._dht.get, key) for key in keys]


class BatchedPlane:
    """One ``get_many`` per round of probes."""

    batched = True

    def __init__(self, dht: Dht, tracer: "Tracer | None" = None) -> None:
        self._dht = dht
        self.tracer = tracer

    def get_round(self, keys: Sequence[str]) -> list[Any]:
        tracer = self.tracer
        if tracer is None:
            return self._dht.get_many_outcomes(keys)
        with tracer.span("round", "batched_round", probes=len(keys)):
            return self._dht.get_many_outcomes(keys)


def make_plane(
    dht: Dht, batched: bool, tracer: "Tracer | None" = None
) -> SequentialPlane | BatchedPlane:
    """The plane matching an engine's ``batched`` flag."""
    return (
        BatchedPlane(dht, tracer) if batched else SequentialPlane(dht, tracer)
    )
