"""Data records.

A record is an m-dimensional data key plus an opaque value, matching
the paper's model (Section 3.1): keys are vectors of reals normalised
into the unit interval per dimension.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.common.geometry import Point, check_point


@dataclass(frozen=True, slots=True)
class Record:
    """One data record: an m-dimensional key and its payload."""

    key: Point
    value: Any = None

    @classmethod
    def make(cls, key, value: Any = None, dims: int | None = None) -> "Record":
        """Validated constructor; checks arity/range when *dims* given."""
        key = tuple(key)
        if dims is not None:
            check_point(key, dims)
        return cls(key, value)

    @classmethod
    def coerce(cls, item, dims: int | None = None) -> "Record":
        """Normalise any accepted record spelling to a ``Record``.

        Bulk entry points (``insert_many``, ``bulk_load``) accept three
        spellings and this is their single normalisation rule:

        * a ``Record`` — revalidated (arity/range when *dims* given);
        * a ``(key, value)`` pair, recognised because its first element
          is itself a coordinate sequence;
        * a bare key — any sequence of coordinates, e.g. ``(0.2, 0.4)``.

        The pair form requires the key element to be a tuple or list —
        a bare 2-D key ``(0.3, 0.7)`` is two floats, not a pair, so the
        two cannot collide.
        """
        if isinstance(item, Record):
            return cls.make(item.key, item.value, dims=dims)
        if (
            isinstance(item, (tuple, list))
            and len(item) == 2
            and isinstance(item[0], (tuple, list))
        ):
            return cls.make(item[0], item[1], dims=dims)
        if isinstance(item, Sequence) and not isinstance(item, str):
            return cls.make(item, dims=dims)
        raise TypeError(
            f"cannot coerce {item!r} to a Record; pass a Record, a "
            "(key, value) pair, or a bare coordinate sequence"
        )

    @property
    def dims(self) -> int:
        """Dimensionality of the data key."""
        return len(self.key)
