"""Data records.

A record is an m-dimensional data key plus an opaque value, matching
the paper's model (Section 3.1): keys are vectors of reals normalised
into the unit interval per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.geometry import Point, check_point


@dataclass(frozen=True, slots=True)
class Record:
    """One data record: an m-dimensional key and its payload."""

    key: Point
    value: Any = None

    @classmethod
    def make(cls, key, value: Any = None, dims: int | None = None) -> "Record":
        """Validated constructor; checks arity/range when *dims* given."""
        key = tuple(key)
        if dims is not None:
            check_point(key, dims)
        return cls(key, value)

    @property
    def dims(self) -> int:
        """Dimensionality of the data key."""
        return len(self.key)
