"""DHT key namespace for m-LIGHT buckets.

A bucket named ``fmd(λ)`` is stored under ``"ml:" + fmd(λ)``.  The
prefix keeps m-LIGHT keys disjoint from any other index sharing the
same DHT (the paper deploys over OpenDHT-style shared substrates).
"""

from __future__ import annotations

_PREFIX = "ml:"


def bucket_key(name: str) -> str:
    """DHT key for the bucket named *name* (an internal-node label)."""
    return _PREFIX + name


def name_from_key(key: str) -> str:
    """Inverse of :func:`bucket_key`."""
    if not key.startswith(_PREFIX):
        raise ValueError(f"{key!r} is not an m-LIGHT bucket key")
    return key[len(_PREFIX):]
