"""The record-store plane: pluggable bucket interiors.

A :class:`~repro.core.bucket.LeafBucket` is the DHT's storage unit, but
*how* a bucket holds its records is a representation choice, not an
index-semantics choice.  This module makes that choice explicit:

* :class:`RecordStore` is the contract every backend satisfies —
  ``add`` / ``remove`` / ``count`` / ``matching`` / ``records`` /
  ``to_rows`` / ``from_rows`` — with a **generation counter** bumped on
  every successful mutation, so owners (and the stores' own lazily
  built query structures) invalidate derived state exactly when the
  contents changed, never by comparing record counts (an equal-count
  remove+add must not serve stale answers);
* :class:`Rows` is the zero-copy-ish interchange format between
  backends and the bulk-load partitioner: per-dimension coordinate
  columns plus an optional values tuple.  Splitting moves *columns*
  between stores without materialising one :class:`Record` object per
  key;
* :func:`register_store` is an open registry mirroring
  :func:`repro.runtime.register_runtime`, so external backends (a
  durable store, a compressed store) plug in without touching this
  module.  Three backends ship built in:

  ``"list"``
      the original naive scan over a ``list[Record]`` — kept as the
      equivalence oracle;
  ``"columnar"``
      the bisect-narrowed :class:`~repro.core.columnar.ColumnStore`
      fast path, re-homed behind the seam;
  ``"numpy"``
      vectorized per-dimension ``float64`` ndarrays
      (:mod:`repro.core.npstore`); falls back to ``"columnar"`` with a
      warning when numpy is not installed.

Every backend returns **bit-identical, insertion-ordered** answers;
``tests/test_hotpath_equivalence.py`` sweeps all three against the
naive scan on random workloads in 1–4 dimensions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from collections.abc import Callable, Sequence

from repro.common.errors import UnknownStoreError
from repro.core.columnar import ColumnStore
from repro.core.records import Record

__all__ = [
    "Rows",
    "RecordStore",
    "ListStore",
    "ColumnarStore",
    "register_store",
    "store_backends",
    "create_store",
    "DEFAULT_STORE",
]

DEFAULT_STORE = "columnar"


class Rows:
    """Column-major interchange form of a record batch.

    ``columns[d][i]`` is coordinate ``d`` of record ``i`` (insertion
    order); ``values`` is the aligned payload tuple, or ``None`` as a
    compact sentinel for "every payload is None" — the common case for
    bulk-loaded point sets, where it lets partitioning skip payload
    bookkeeping entirely.  Columns are any indexable float sequence:
    ``array('d')`` on the stdlib path, ``numpy.ndarray`` on the
    vectorized path (:meth:`partition` dispatches on the column type).
    """

    __slots__ = ("dims", "columns", "values")

    def __init__(self, dims: int, columns, values=None) -> None:
        self.dims = dims
        self.columns = columns
        self.values = values

    @classmethod
    def from_records(cls, records: Sequence[Record], dims: int) -> "Rows":
        columns = [
            array("d", (record.key[dim] for record in records))
            for dim in range(dims)
        ]
        if any(record.value is not None for record in records):
            values = tuple(record.value for record in records)
        else:
            values = None
        return cls(dims, columns, values)

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def record_at(self, position: int) -> Record:
        key = tuple(column[position] for column in self.columns)
        value = None if self.values is None else self.values[position]
        return Record(key, value)

    def to_records(self) -> list[Record]:
        columns = self.columns
        if self.values is None:
            return [Record(key) for key in zip(*columns)] if columns else []
        return [
            Record(key, value)
            for key, value in zip(zip(*columns), self.values)
        ]

    def partition(self, dim: int, midpoint: float) -> tuple["Rows", "Rows"]:
        """Split into (keys[dim] < midpoint, keys[dim] >= midpoint),
        preserving insertion order on both sides — exactly the float
        compare :func:`repro.core.split.partition_records` applies to
        record lists, applied to whole columns at once."""
        column = self.columns[dim]
        if hasattr(column, "__array_interface__"):
            from repro.core.npstore import partition_ndarray_rows

            return partition_ndarray_rows(self, dim, midpoint)
        lower_idx = []
        upper_idx = []
        for position, coordinate in enumerate(column):
            if coordinate < midpoint:
                lower_idx.append(position)
            else:
                upper_idx.append(position)
        return self._take(lower_idx), self._take(upper_idx)

    def _take(self, positions: list[int]) -> "Rows":
        columns = [
            array("d", (column[i] for i in positions))
            for column in self.columns
        ]
        values = (
            None
            if self.values is None
            else tuple(self.values[i] for i in positions)
        )
        return Rows(self.dims, columns, values)


class RecordStore(ABC):
    """One bucket interior: records plus a query structure over them.

    Subclasses set :attr:`kind` (the registry name) and must bump
    :attr:`generation` on every successful mutation — it is the *only*
    staleness signal owners may rely on.  ``matching`` answers a closed
    box query in insertion order, bit-identical to the naive scan.
    """

    kind: str = "abstract"

    __slots__ = ("dims", "sort_dim", "generation")

    def __init__(self, dims: int, sort_dim: int) -> None:
        self.dims = dims
        self.sort_dim = sort_dim
        self.generation = 0

    @property
    @abstractmethod
    def count(self) -> int:
        """Number of records stored."""

    @abstractmethod
    def add(self, record: Record) -> None:
        """Append *record* (bumps :attr:`generation`)."""

    @abstractmethod
    def remove(self, record: Record) -> bool:
        """Remove one occurrence; True when found (bumps generation)."""

    @abstractmethod
    def matching(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> list[Record]:
        """Records inside the closed box, in insertion order."""

    @abstractmethod
    def records(self) -> list[Record]:
        """The stored records as a list, insertion order.

        The returned list is owned by the store — callers must treat it
        as read-only (mutate through :meth:`add`/:meth:`remove`, which
        maintain the generation contract).
        """

    @abstractmethod
    def to_rows(self) -> Rows:
        """Column-major snapshot (insertion order) for codecs/splits."""

    def payload_values(self) -> tuple | None:
        """Aligned record payloads, or ``None`` when every payload is
        None (the codec's compact all-None encoding)."""
        records = self.records()
        if any(record.value is not None for record in records):
            return tuple(record.value for record in records)
        return None

    @classmethod
    @abstractmethod
    def from_rows(cls, rows: Rows, sort_dim: int) -> "RecordStore":
        """Build a store from interchange rows without going through
        per-record ``add`` calls."""


class ListStore(RecordStore):
    """The original representation: a plain list, linearly scanned.

    Kept as the oracle backend — every other store must agree with it
    bit for bit.
    """

    kind = "list"

    __slots__ = ("_records",)

    def __init__(
        self, dims: int, sort_dim: int, records: Sequence[Record] = ()
    ) -> None:
        super().__init__(dims, sort_dim)
        self._records = list(records)

    @property
    def count(self) -> int:
        return len(self._records)

    def add(self, record: Record) -> None:
        self._records.append(record)
        self.generation += 1

    def remove(self, record: Record) -> bool:
        try:
            self._records.remove(record)
        except ValueError:
            return False
        self.generation += 1
        return True

    def matching(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> list[Record]:
        return [
            record
            for record in self._records
            if all(
                low <= coordinate <= high
                for coordinate, low, high in zip(record.key, lows, highs)
            )
        ]

    def records(self) -> list[Record]:
        return self._records

    def to_rows(self) -> Rows:
        return Rows.from_records(self._records, self.dims)

    @classmethod
    def from_rows(cls, rows: Rows, sort_dim: int) -> "ListStore":
        return cls(rows.dims, sort_dim, rows.to_records())


class ColumnarStore(RecordStore):
    """The bisect-narrowed columnar fast path behind the seam.

    Wraps :class:`~repro.core.columnar.ColumnStore` (an immutable
    snapshot) with generation-tagged lazy rebuilds: mutations are O(1)
    list edits, the first ``matching`` after a mutation rebuilds the
    snapshot.  Rebuild condition is *generation equality only* — never
    a record-count compare.
    """

    kind = "columnar"

    __slots__ = ("_records", "_snapshot", "_built_generation")

    def __init__(
        self, dims: int, sort_dim: int, records: Sequence[Record] = ()
    ) -> None:
        super().__init__(dims, sort_dim)
        self._records = list(records)
        self._snapshot: ColumnStore | None = None
        self._built_generation = -1

    @property
    def count(self) -> int:
        return len(self._records)

    def add(self, record: Record) -> None:
        self._records.append(record)
        self.generation += 1

    def remove(self, record: Record) -> bool:
        try:
            self._records.remove(record)
        except ValueError:
            return False
        self.generation += 1
        return True

    def matching(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> list[Record]:
        snapshot = self._snapshot
        if snapshot is None or self._built_generation != self.generation:
            snapshot = ColumnStore(self._records, self.dims, self.sort_dim)
            self._snapshot = snapshot
            self._built_generation = self.generation
        return snapshot.matching(self._records, lows, highs)

    def records(self) -> list[Record]:
        return self._records

    def to_rows(self) -> Rows:
        return Rows.from_records(self._records, self.dims)

    @classmethod
    def from_rows(cls, rows: Rows, sort_dim: int) -> "ColumnarStore":
        return cls(rows.dims, sort_dim, rows.to_records())


# ----------------------------------------------------------------------
# The open backend registry (mirrors repro.runtime.register_runtime)
# ----------------------------------------------------------------------

#: kind -> factory(dims, sort_dim, source) where source is None, a
#: Record sequence, or a Rows batch.
_STORES: dict[str, Callable] = {}


def register_store(kind: str, factory: Callable) -> None:
    """Register (or override) a record-store backend.

    *factory* is called as ``factory(dims, sort_dim, source)`` with
    ``source`` one of ``None`` (empty store), a sequence of
    :class:`Record`, or a :class:`Rows` batch, and must return a
    :class:`RecordStore`.
    """
    if not kind:
        raise UnknownStoreError("store kind must be a non-empty string")
    _STORES[kind] = factory


def store_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (``("columnar", "list", ...)``)."""
    return tuple(sorted(_STORES))


def create_store(
    kind: str, dims: int, sort_dim: int, source=None
) -> RecordStore:
    """Instantiate backend *kind* over *source* records or rows."""
    factory = _STORES.get(kind)
    if factory is None:
        raise UnknownStoreError(
            f"unknown record store {kind!r}; expected one of "
            f"{store_backends()}"
        )
    return factory(dims, sort_dim, source)


def _sequence_factory(cls):
    def factory(dims: int, sort_dim: int, source=None) -> RecordStore:
        if source is None:
            return cls(dims, sort_dim)
        if isinstance(source, Rows):
            return cls.from_rows(source, sort_dim)
        return cls(dims, sort_dim, source)

    return factory


register_store("list", _sequence_factory(ListStore))
register_store("columnar", _sequence_factory(ColumnarStore))


def _numpy_factory(dims: int, sort_dim: int, source=None) -> RecordStore:
    """The ``"numpy"`` backend, degrading to columnar without numpy."""
    from repro.core import npstore

    if npstore.HAVE_NUMPY:
        return _sequence_factory(npstore.NumpyStore)(dims, sort_dim, source)
    npstore.warn_numpy_missing()
    return _sequence_factory(ColumnarStore)(dims, sort_dim, source)


register_store("numpy", _numpy_factory)
