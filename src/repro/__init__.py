"""repro — a reproduction of m-LIGHT (ICDCS 2009).

m-LIGHT indexes multi-dimensional data over any DHT exposing the
generic ``put/get/lookup`` interface.  This package provides the index
(:class:`~repro.core.index.MLightIndex`), the PHT and DST baselines it
is evaluated against, three interchangeable DHT substrates, dataset and
workload generators, and the experiment harness that regenerates every
figure of the paper's evaluation.

Quickstart::

    from repro import LocalDht, MLightIndex, IndexConfig, Region

    index = MLightIndex(LocalDht(n_peers=128), IndexConfig(dims=2))
    index.insert((0.31, 0.62), value="point-a")
    index.insert((0.35, 0.60), value="point-b")
    result = index.range_query(Region((0.3, 0.6), (0.4, 0.7)))
    print([record.value for record in result.records])
"""

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Point, Region, as_region, unit_region
from repro.core.bucket import LeafBucket
from repro.core.bulkload import bulk_load
from repro.core.cache import LeafCache
from repro.core.index import MLightIndex
from repro.core.records import Record
from repro.core.results import (
    KnnResult,
    LookupResult,
    RangeQueryResult,
)
from repro.core.split import DataAwareSplit, ThresholdSplit
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    Span,
    TraceSink,
    Tracer,
    profile_report,
)

__version__ = "1.0.0"

__all__ = [
    "IndexConfig",
    "ReproError",
    "Point",
    "Region",
    "as_region",
    "unit_region",
    "LeafBucket",
    "LeafCache",
    "bulk_load",
    "MLightIndex",
    "Record",
    "KnnResult",
    "LookupResult",
    "RangeQueryResult",
    "DataAwareSplit",
    "ThresholdSplit",
    "ChordDht",
    "KademliaDht",
    "LocalDht",
    "PastryDht",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Span",
    "TraceSink",
    "Tracer",
    "profile_report",
    "__version__",
]
