"""repro — a reproduction of m-LIGHT (ICDCS 2009).

m-LIGHT indexes multi-dimensional data over any DHT exposing the
generic ``put/get/lookup`` interface.  This package provides the index
(:class:`~repro.core.index.MLightIndex`), the PHT and DST baselines it
is evaluated against, three interchangeable DHT substrates, dataset and
workload generators, and the experiment harness that regenerates every
figure of the paper's evaluation.

Quickstart::

    from repro import MLightIndex, IndexConfig, Region, create_dht

    index = MLightIndex(create_dht(n_peers=128), IndexConfig(dims=2))
    index.insert((0.31, 0.62), value="point-a")
    index.insert((0.35, 0.60), value="point-b")
    result = index.range_query(Region((0.3, 0.6), (0.4, 0.7)))
    print([record.value for record in result.records])

Substrates are constructed through the runtime-neutral factory
(:func:`repro.runtime.create_dht` with a
:class:`~repro.runtime.RuntimeConfig`): one surface selects the
simulated substrates *and* the asyncio/TCP service runtime.  The old
per-overlay constructor aliases (``repro.LocalDht`` & co.) still
resolve, with a :class:`DeprecationWarning`; import them from their
defining modules (or use the factory) instead.
"""

import warnings

from repro.adaptive import AdaptiveConfig
from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Point, Region, as_region, unit_region
from repro.core.bucket import LeafBucket
from repro.core.bulkload import bulk_load
from repro.core.cache import LeafCache
from repro.core.index import MLightIndex
from repro.core.records import Record
from repro.core.results import (
    KnnResult,
    LookupResult,
    RangeQueryResult,
)
from repro.core.split import DataAwareSplit, ThresholdSplit
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    Span,
    TraceSink,
    Tracer,
    profile_report,
)
from repro.runtime import RuntimeConfig, create_dht
from repro.service.node import ServiceDht

#: Deprecated top-level aliases -> (module, attribute).  Resolved
#: lazily so importing :mod:`repro` stops endorsing scattered
#: per-overlay construction; `create_dht` is the supported surface.
_DEPRECATED_ALIASES = {
    "LocalDht": ("repro.dht.localhash", "LocalDht"),
    "ChordDht": ("repro.dht.chord", "ChordDht"),
    "KademliaDht": ("repro.dht.kademlia", "KademliaDht"),
    "PastryDht": ("repro.dht.pastry", "PastryDht"),
}


def __getattr__(name: str):
    target = _DEPRECATED_ALIASES.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = target
    warnings.warn(
        f"importing {name} from the repro top level is deprecated; "
        f"build substrates with repro.create_dht(RuntimeConfig(...)) or "
        f"import {name} from {module_name}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


__version__ = "1.1.0"

__all__ = [
    "AdaptiveConfig",
    "IndexConfig",
    "ReproError",
    "Point",
    "Region",
    "as_region",
    "unit_region",
    "LeafBucket",
    "LeafCache",
    "bulk_load",
    "MLightIndex",
    "Record",
    "KnnResult",
    "LookupResult",
    "RangeQueryResult",
    "DataAwareSplit",
    "ThresholdSplit",
    "RuntimeConfig",
    "create_dht",
    "ServiceDht",
    "ChordDht",
    "KademliaDht",
    "LocalDht",
    "PastryDht",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Span",
    "TraceSink",
    "Tracer",
    "profile_report",
    "__version__",
]
