"""Synthetic point generators.

Every generator is deterministic under its seed and returns keys
strictly inside [0, 1) per dimension, ready for insertion.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.common.rng import make_rng

#: Keys are clamped strictly below 1.0 (cells are half-open).
_UPPER = 1.0 - 2.0**-40


def clamp_unit(value: float) -> float:
    """Clamp *value* into [0, 1) (keys live in half-open cells)."""
    if value < 0.0:
        return 0.0
    if value >= 1.0:
        return _UPPER
    return value


# Internal alias used throughout this module.
_clamp = clamp_unit


def uniform_points(n: int, dims: int = 2, seed: int = 0) -> list[Point]:
    """*n* points uniform over the unit hypercube."""
    if n < 0:
        raise ReproError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    return [
        tuple(rng.random() for _ in range(dims)) for _ in range(n)
    ]


def clustered_points(
    n: int,
    centers: Sequence[Point],
    sigmas: Sequence[Sequence[float]],
    weights: Sequence[float] | None = None,
    background_fraction: float = 0.0,
    dims: int = 2,
    seed: int = 0,
) -> list[Point]:
    """A Gaussian mixture: per-cluster centre, per-axis sigma, weight.

    *background_fraction* of the points are uniform noise.  Samples are
    clamped into [0, 1).
    """
    if not centers:
        raise ReproError("at least one cluster centre is required")
    if len(sigmas) != len(centers):
        raise ReproError("sigmas and centers must have the same length")
    if weights is None:
        weights = [1.0] * len(centers)
    if len(weights) != len(centers):
        raise ReproError("weights and centers must have the same length")
    if not 0.0 <= background_fraction <= 1.0:
        raise ReproError("background_fraction must be in [0, 1]")
    rng = make_rng(seed)
    points: list[Point] = []
    for _ in range(n):
        if rng.random() < background_fraction:
            points.append(tuple(rng.random() for _ in range(dims)))
            continue
        index = rng.choices(range(len(centers)), weights=weights, k=1)[0]
        center = centers[index]
        sigma = sigmas[index]
        points.append(
            tuple(
                _clamp(rng.gauss(center[dim], sigma[dim]))
                for dim in range(dims)
            )
        )
    return points


def skewed_points(
    n: int, dims: int = 2, exponent: float = 3.0, seed: int = 0
) -> list[Point]:
    """Power-law skew toward the origin: each coordinate is
    ``u ** exponent`` for uniform u.  Useful for stress-testing split
    strategies on heavy one-sided skew."""
    if exponent <= 0:
        raise ReproError(f"exponent must be positive, got {exponent}")
    rng = make_rng(seed)
    return [
        tuple(_clamp(rng.random() ** exponent) for _ in range(dims))
        for _ in range(n)
    ]


def normalize_points(raw: Sequence[Sequence[float]]) -> list[Point]:
    """Min-max normalise arbitrary coordinates into [0, 1) per dimension,
    as the paper does with the postal addresses."""
    if not raw:
        return []
    dims = len(raw[0])
    lows = [min(point[dim] for point in raw) for dim in range(dims)]
    highs = [max(point[dim] for point in raw) for dim in range(dims)]
    spans = [
        high - low if high > low else 1.0
        for low, high in zip(lows, highs)
    ]
    return [
        tuple(
            _clamp((point[dim] - lows[dim]) / spans[dim] * _UPPER)
            for dim in range(dims)
        )
        for point in raw
    ]
