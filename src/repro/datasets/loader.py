"""Loading real point datasets from disk.

If you have the original NE file (``NE.zip`` from rtreeportal), unzip
it and point :func:`load_points` at the text file; every experiment
runner accepts the returned list in place of the surrogate.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.datasets.synthetic import normalize_points


def load_points(
    path: str | Path,
    dims: int = 2,
    delimiter: str | None = None,
    normalize: bool = True,
) -> list[Point]:
    """Read one point per line (whitespace- or *delimiter*-separated).

    Lines that are empty or start with ``#`` are skipped.  Extra
    columns beyond *dims* are ignored (several rtreeportal files carry
    an id column first — when a line has ``dims + 1`` columns the first
    is treated as an id and dropped).
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"dataset file {path} does not exist")
    raw: list[tuple[float, ...]] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(delimiter)
            if len(fields) == dims + 1:
                fields = fields[1:]
            if len(fields) < dims:
                raise ReproError(
                    f"{path}:{line_number}: expected {dims} coordinates, "
                    f"got {len(fields)}"
                )
            try:
                raw.append(tuple(float(field) for field in fields[:dims]))
            except ValueError as exc:
                raise ReproError(
                    f"{path}:{line_number}: non-numeric coordinate"
                ) from exc
    if normalize:
        return normalize_points(raw)
    return [tuple(point) for point in raw]
