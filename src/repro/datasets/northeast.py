"""Surrogate for the paper's NE postal-address dataset.

The real evaluation data — 123,593 postal addresses covering the New
York, Philadelphia and Boston metropolitan areas — is a clustered,
highly non-uniform 2-D point set.  The surrogate reproduces that
structure: three metropolitan mixtures placed with roughly the real
geography's relative positions, each combining a dense urban core,
several suburban satellite blobs and thin sprawl, plus a small rural
background.  Cardinality matches the original exactly.

Substitution note (see DESIGN.md): all effects the paper measures on
this data — empty buckets from space partitioning, load imbalance,
maintenance volume — depend on the clustering *shape*, not on the
specific street coordinates.
"""

from __future__ import annotations

from repro.common.geometry import Point
from repro.common.rng import derive_seed, make_rng
from repro.datasets.synthetic import clamp_unit as _clamp
from repro.datasets.synthetic import clustered_points

#: Cardinality of the original rtreeportal NE dataset.
NE_CARDINALITY = 123_593

# (center, per-axis sigma, weight) — cores, satellites, sprawl and
# road-like linear features for each metro.  Coordinates are already in
# the unit square with the rough NE-corridor geometry: Philadelphia
# south-west, New York centre, Boston north-east.  Postal addresses
# string along streets, so a large share of the mass sits in strongly
# anisotropic components (one sigma ~50x the other); when the kd-tree
# halves such a component across its long axis one half is often
# empty, which is the behaviour behind Fig. 6b.
_METRO_MIXTURE = [
    # Philadelphia
    ((0.22, 0.20), (0.012, 0.012), 10.0),
    ((0.26, 0.24), (0.030, 0.025), 6.0),
    ((0.17, 0.16), (0.020, 0.030), 3.0),
    ((0.24, 0.185), (0.070, 0.0015), 5.0),   # east-west arterial
    ((0.215, 0.22), (0.0015, 0.060), 4.0),   # north-south arterial
    # New York (largest)
    ((0.48, 0.45), (0.015, 0.015), 20.0),
    ((0.52, 0.50), (0.040, 0.030), 12.0),
    ((0.43, 0.41), (0.025, 0.020), 6.0),
    ((0.56, 0.42), (0.030, 0.045), 4.0),
    ((0.50, 0.47), (0.090, 0.0015), 8.0),    # east-west arterial
    ((0.47, 0.44), (0.0015, 0.080), 7.0),    # north-south arterial
    ((0.53, 0.41), (0.060, 0.0020), 4.0),    # southern parkway
    # Boston
    ((0.78, 0.76), (0.012, 0.012), 8.0),
    ((0.74, 0.72), (0.030, 0.030), 5.0),
    ((0.82, 0.80), (0.020, 0.035), 3.0),
    ((0.79, 0.745), (0.055, 0.0015), 4.0),   # east-west arterial
    ((0.765, 0.78), (0.0015, 0.050), 3.0),   # north-south arterial
    # I-95 corridor sprawl between the metros
    ((0.35, 0.33), (0.060, 0.045), 2.0),
    ((0.64, 0.60), (0.060, 0.050), 2.0),
]


#: Fraction of points that are corridor background rather than metro
#: clusters.
_BACKGROUND_FRACTION = 0.04


def northeast_surrogate(
    n: int = NE_CARDINALITY, seed: int = 20090622
) -> list[Point]:
    """*n* points shaped like the NE postal-address dataset.

    Background points follow the I-95 corridor (a diagonal band) rather
    than the whole square: the real map has large *truly empty* regions
    (the Atlantic to the south-east, sparse uplands north-west), and
    those empty regions are what drives the empty-bucket behaviour of
    threshold splitting in Fig. 6b.
    """
    rng = make_rng(derive_seed(seed, "northeast-background"))
    n_background = round(n * _BACKGROUND_FRACTION)
    centers = [entry[0] for entry in _METRO_MIXTURE]
    sigmas = [entry[1] for entry in _METRO_MIXTURE]
    weights = [entry[2] for entry in _METRO_MIXTURE]
    points = clustered_points(
        n - n_background,
        centers,
        sigmas,
        weights,
        background_fraction=0.0,
        dims=2,
        seed=derive_seed(seed, "northeast"),
    )
    for _ in range(n_background):
        along = rng.random()
        base_x = 0.12 + 0.74 * along
        base_y = 0.10 + 0.76 * along
        points.append(
            (
                _clamp(rng.gauss(base_x, 0.05)),
                _clamp(rng.gauss(base_y, 0.05)),
            )
        )
    rng.shuffle(points)
    return points


def northeast_sample(n: int, seed: int = 20090622) -> list[Point]:
    """A size-*n* draw from the same distribution (for fast tests)."""
    return northeast_surrogate(n, seed)
