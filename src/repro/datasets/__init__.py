"""Dataset generators and loaders.

The paper evaluates on 123,593 postal addresses from the New York /
Philadelphia / Boston metropolitan areas (the rtreeportal NE dataset),
normalised per-dimension into [0, 1].  That file is not redistributable
and the reproduction environment is offline, so
:func:`~repro.datasets.northeast.northeast_surrogate` generates a
synthetic surrogate with the same cardinality and the same *kind* of
skew — three anisotropic metropolitan clusters with dense cores,
suburban satellites and sparse background — which is what drives every
load-balance and maintenance effect the paper measures.
:func:`~repro.datasets.loader.load_points` ingests the real file when
available.
"""

from repro.datasets.synthetic import (
    uniform_points,
    clustered_points,
    skewed_points,
    normalize_points,
)
from repro.datasets.northeast import northeast_surrogate, NE_CARDINALITY

__all__ = [
    "uniform_points",
    "clustered_points",
    "skewed_points",
    "normalize_points",
    "northeast_surrogate",
    "NE_CARDINALITY",
]
