"""Simulated network substrate.

The DHT overlays in :mod:`repro.dht` exchange messages exclusively
through :class:`~repro.net.simnet.SimNetwork`, which meters every
message (count, payload size, per-link latency), can inject drops and
partitions, and drives time through a deterministic discrete-event
clock.  The indexing layers above never talk to the network directly —
they only see the DHT ``put/get/lookup`` facade — which mirrors the
paper's strictly layered over-DHT design.
"""

from repro.net.stats import NetworkStats
from repro.net.events import EventScheduler
from repro.net.latency import (
    LatencyModel,
    ConstantLatency,
    QueueingLatency,
    UniformLatency,
)
from repro.net.simnet import SimNetwork, RpcError

__all__ = [
    "NetworkStats",
    "EventScheduler",
    "LatencyModel",
    "ConstantLatency",
    "QueueingLatency",
    "UniformLatency",
    "SimNetwork",
    "RpcError",
]
