"""Deterministic discrete-event scheduler.

Backs everything time-dependent in the simulation: message latencies,
periodic DHT stabilization, and churn schedules.  Events with equal
timestamps fire in submission order (a monotonic sequence number breaks
ties), so runs are reproducible regardless of callback content.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.errors import ReproError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time


class EventScheduler:
    """A priority-queue event loop with explicit virtual time."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule *callback* to fire *delay* time units from now."""
        if delay < 0:
            raise ReproError(f"cannot schedule into the past: delay={delay}")
        event = _Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], None],
        jitter: Callable[[], float] | None = None,
    ) -> EventHandle:
        """Schedule *callback* to fire every *period* units until cancelled.

        *jitter*, when given, returns an extra delay added to each
        period (e.g. a seeded random draw) so periodic protocols do not
        fire in lockstep.
        """
        if period <= 0:
            raise ReproError(f"period must be positive, got {period}")
        handle_box: list[EventHandle] = []

        def fire() -> None:
            callback()
            extra = jitter() if jitter is not None else 0.0
            next_handle = self.schedule(period + extra, fire)
            # Rebind so cancel() stops the *next* firing too.
            handle_box[0]._event = next_handle._event

        first = self.schedule(period + (jitter() if jitter else 0.0), fire)
        handle_box.append(first)
        return first

    def advance(self, delay: float) -> int:
        """Move virtual time forward by *delay*, firing due events.

        The message-round machinery uses this to charge a whole batch
        its critical-path latency in one step.
        """
        if delay < 0:
            raise ReproError(f"cannot advance into the past: delay={delay}")
        return self.run_until(self._now + delay)

    def run_until(self, deadline: float) -> int:
        """Fire every event with time <= *deadline*; return count fired."""
        fired = 0
        while self._queue and self._queue[0].time <= deadline:
            event = heapq.heappop(self._queue)
            self._now = event.time
            if event.cancelled:
                continue
            event.callback()
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely; guard against runaway schedules."""
        fired = 0
        while self._queue:
            if fired >= max_events:
                raise ReproError(
                    f"event storm: more than {max_events} events fired"
                )
            event = heapq.heappop(self._queue)
            self._now = event.time
            if event.cancelled:
                continue
            event.callback()
            fired += 1
        return fired

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)
