"""Per-link latency models for the simulated network.

The experiments of the paper run on a LAN, so the default model is a
constant small delay; the uniform model adds seeded jitter for churn
stress tests.  Latency only matters to components that run under the
discrete-event clock (stabilization, churn); the synchronous metering
path of the index experiments is latency-agnostic by design, because
the paper measures latency in *rounds of DHT-lookups*, not seconds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.rng import make_rng


class LatencyModel(ABC):
    """Strategy returning the one-way delay between two addresses."""

    @abstractmethod
    def delay(self, src: str, dst: str) -> float:
        """One-way message delay in virtual time units."""


class ConstantLatency(LatencyModel):
    """Every link has the same fixed delay (LAN-like)."""

    def __init__(self, delay: float = 1.0) -> None:
        self._delay = delay

    def delay(self, src: str, dst: str) -> float:
        return self._delay


class QueueingLatency(LatencyModel):
    """Per-destination single-server FIFO queueing (M/D/1-flavoured).

    The constant and uniform models price a message by the *link*; this
    one prices it by the *server*: each destination peer processes one
    request at a time taking ``service`` time units, so requests
    arriving faster than a peer can drain them queue up and the
    round-trip time of an operation grows with that peer's backlog.
    This is the model under which hotspots *hurt* — a peer absorbing
    most of the read traffic (or a routing gateway absorbing every
    routing RPC) becomes a queue, and tail latency explodes — which is
    exactly what the adaptive plane's replication and shortcuts
    relieve, so E13 measures latency under it.

    The model is open-loop and deterministic.  The caller marks each
    top-level operation's arrival with :meth:`begin_op` (operations
    arrive on an external schedule, e.g. a fixed request rate,
    independent of when earlier operations finished); every
    :meth:`round_trip` within the operation then advances the
    operation's own timeline: wait for the destination server to free
    up, be served, come back.  :meth:`op_latency` reads the elapsed
    time of the operation so far, and :attr:`served` exposes how many
    requests each destination processed — the query-load measure.

    Deliberately not wired to the event scheduler: the queue state is
    the only clock this model needs, and keeping it self-contained
    makes a load-measurement phase trivially resettable
    (:meth:`reset` after bulk loading, so measurements start from idle
    servers).
    """

    def __init__(self, base: float = 0.1, service: float = 1.0) -> None:
        """*base* is the one-way propagation delay of any link;
        *service* the per-request processing time at a destination."""
        if base < 0:
            raise ValueError(f"base delay must be >= 0, got {base}")
        if service <= 0:
            raise ValueError(f"service time must be > 0, got {service}")
        self._base = base
        self._service = service
        self._busy: dict[str, float] = {}
        self.served: dict[str, int] = {}
        self._now = 0.0
        self._op_started = 0.0

    def begin_op(self, arrival: float) -> None:
        """Start one top-level operation arriving at time *arrival*."""
        self._now = arrival
        self._op_started = arrival

    def op_latency(self) -> float:
        """Elapsed time of the current operation so far."""
        return self._now - self._op_started

    def reset(self) -> None:
        """Forget all queue state (between load and measure phases)."""
        self._busy.clear()
        self.served.clear()
        self._now = 0.0
        self._op_started = 0.0

    def round_trip(self, src: str, dst: str) -> float:
        """Serve one request at *dst* on the operation's timeline."""
        arrival = self._now + self._base
        begin = max(arrival, self._busy.get(dst, 0.0))
        done = begin + self._service
        self._busy[dst] = done
        self.served[dst] = self.served.get(dst, 0) + 1
        previous = self._now
        self._now = done + self._base
        return self._now - previous

    def delay(self, src: str, dst: str) -> float:
        # One-way fallback for callers outside an operation timeline
        # (stabilization traffic); queue-free propagation only.
        return self._base


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high], deterministic per seed.

    The draw is keyed on (src, dst) order of calls, i.e. it is a stream,
    not a static per-link matrix; good enough for jittering periodic
    protocols apart.
    """

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = make_rng(seed)

    def delay(self, src: str, dst: str) -> float:
        return self._rng.uniform(self._low, self._high)
