"""Per-link latency models for the simulated network.

The experiments of the paper run on a LAN, so the default model is a
constant small delay; the uniform model adds seeded jitter for churn
stress tests.  Latency only matters to components that run under the
discrete-event clock (stabilization, churn); the synchronous metering
path of the index experiments is latency-agnostic by design, because
the paper measures latency in *rounds of DHT-lookups*, not seconds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.rng import make_rng


class LatencyModel(ABC):
    """Strategy returning the one-way delay between two addresses."""

    @abstractmethod
    def delay(self, src: str, dst: str) -> float:
        """One-way message delay in virtual time units."""


class ConstantLatency(LatencyModel):
    """Every link has the same fixed delay (LAN-like)."""

    def __init__(self, delay: float = 1.0) -> None:
        self._delay = delay

    def delay(self, src: str, dst: str) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high], deterministic per seed.

    The draw is keyed on (src, dst) order of calls, i.e. it is a stream,
    not a static per-link matrix; good enough for jittering periodic
    protocols apart.
    """

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = make_rng(seed)

    def delay(self, src: str, dst: str) -> float:
        return self._rng.uniform(self._low, self._high)
