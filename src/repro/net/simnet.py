"""Synchronous simulated network with fault injection.

Peers register a handler object; other peers reach them through
:meth:`SimNetwork.rpc`, which models one request message and one
response message.  The call itself executes synchronously (the DHT
protocols here are sequential request/response chains), while the
discrete-event clock in :mod:`repro.net.events` advances by the modelled
round-trip latency, so time-based protocols (stabilization, churn)
observe realistic orderings.

Fault injection supports: unregistered/crashed destinations, seeded
random message drops, and explicit bidirectional partitions.  All of it
is deterministic under a fixed seed.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.common.errors import NodeUnreachableError
from repro.common.rng import make_rng
from repro.net.events import EventScheduler
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.stats import NetworkStats

if TYPE_CHECKING:
    from repro.obs.trace import Tracer


class RpcError(NodeUnreachableError):
    """An RPC failed to reach its destination (crash, drop, partition)."""


#: result -> (reply_size_bytes, reply_payload_bytes).  Installed by
#: :func:`repro.dht.api.install_wire_model` (ultimately the codec in
#: :mod:`repro.core.codec`); the default prices replies at zero, the
#: pre-codec behaviour.  A module-level hook rather than an import so
#: the net layer stays below dht/core in the dependency graph.
_reply_cost_model = None


def install_reply_cost_model(model) -> None:
    """Set the function pricing RPC replies for byte accounting."""
    global _reply_cost_model
    _reply_cost_model = model


class MessageRound:
    """Latency bookkeeping for one parallel round of RPC chains.

    A *chain* is one batch element's sequence of dependent RPCs (e.g.
    every routing hop of one ``get``); its latency is the sum of its
    round trips.  Chains of one round are independent, so the round's
    latency — what the clock advances by at round end — is the *max*
    over chains, not the sum.  RPCs issued inside the round but outside
    any chain count as single-RPC chains.
    """

    __slots__ = ("_chains", "_open")

    def __init__(self) -> None:
        self._chains: list[float] = []
        self._open = False

    @contextmanager
    def chain(self) -> Iterator[None]:
        """Scope one batch element's dependent RPC sequence."""
        self._chains.append(0.0)
        self._open = True
        try:
            yield
        finally:
            self._open = False

    def add_latency(self, round_trip: float) -> None:
        """Charge one RPC's round trip to the current chain."""
        if self._open:
            self._chains[-1] += round_trip
        else:
            self._chains.append(round_trip)

    @property
    def fanout(self) -> int:
        """Number of independent chains the round carried so far."""
        return len(self._chains)

    @property
    def critical_path(self) -> float:
        """The slowest chain's latency (0.0 for an empty round)."""
        return max(self._chains, default=0.0)


class SimNetwork:
    """Registry plus transport for simulated peers."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._handlers: dict[str, Any] = {}
        self._latency = latency if latency is not None else ConstantLatency()
        self._drop_probability = drop_probability
        self._rng = make_rng(seed)
        self._partitions: set[frozenset[str]] = set()
        self.stats = NetworkStats()
        self.clock = EventScheduler()
        self._round: MessageRound | None = None
        # Set by Tracer.attach when the owning index traces; None keeps
        # the transport on the exact pre-tracing code path.
        self.tracer: "Tracer | None" = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, address: str, handler: Any) -> None:
        """Attach *handler* (an object with ``handle_rpc``) at *address*."""
        if address in self._handlers:
            raise NodeUnreachableError(f"address {address!r} already in use")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        """Detach the peer at *address* (models a crash or departure)."""
        self._handlers.pop(address, None)

    def is_registered(self, address: str) -> bool:
        """True while a live handler is attached at *address*."""
        return address in self._handlers

    def addresses(self) -> list[str]:
        """Snapshot of all live addresses."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Make every (a, b) pair across the two groups unreachable."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partitions(self) -> None:
        """Remove every injected partition."""
        self._partitions.clear()

    def _partitioned(self, src: str, dst: str) -> bool:
        return frozenset((src, dst)) in self._partitions

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def rpc(
        self,
        src: str,
        dst: str,
        method: str,
        *args: Any,
        size_bytes: int = 0,
        payload_bytes: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``handle_rpc(method, *args, **kwargs)`` on peer *dst*.

        Accounts two messages (request + response) and advances the
        virtual clock by the round-trip latency.  Raises
        :class:`RpcError` when the destination is dead, partitioned
        away, or the message is dropped by fault injection.
        """
        self.stats.record_rpc()
        if dst not in self._handlers:
            self.stats.record_drop()
            if self.tracer is not None:
                self.tracer.event("rpc_drop", dst=dst, reason="dead")
            raise RpcError(f"peer {dst!r} is not reachable (dead or unknown)")
        if self._partitioned(src, dst):
            self.stats.record_drop()
            if self.tracer is not None:
                self.tracer.event("rpc_drop", dst=dst, reason="partition")
            raise RpcError(f"peers {src!r} and {dst!r} are partitioned")
        if self._drop_probability and self._rng.random() < self._drop_probability:
            self.stats.record_drop()
            if self.tracer is not None:
                self.tracer.event("rpc_drop", dst=dst, reason="drop")
            raise RpcError(f"message {src!r} -> {dst!r} dropped")

        request = Message(src, dst, method, (args, kwargs), size_bytes)
        self.stats.record_message(method, size_bytes, payload=payload_bytes)
        handler = self._handlers[dst]
        result = handler.handle_rpc(request)
        if _reply_cost_model is None:
            reply_size = reply_payload = 0
        else:
            reply_size, reply_payload = _reply_cost_model(result)
        self.stats.record_message(
            method + ":reply", reply_size, payload=reply_payload
        )
        round_tripper = getattr(self._latency, "round_trip", None)
        if round_tripper is not None:
            # Stateful models (queueing) price the full round trip in
            # one call so they can serialize requests per destination.
            round_trip = round_tripper(src, dst)
        else:
            round_trip = self._latency.delay(src, dst) + self._latency.delay(
                dst, src
            )
        if self._round is not None:
            self._round.add_latency(round_trip)
        else:
            self.clock.advance(round_trip)
        return result

    @contextmanager
    def message_round(self) -> Iterator[MessageRound]:
        """Scope one parallel message round.

        Every RPC issued inside the ``with`` block charges its latency
        to the round instead of the clock; group dependent RPCs with
        :meth:`MessageRound.chain`.  On exit the clock advances once by
        the round's critical path (the slowest chain) — the latency
        model of multicast-style parallel dissemination, where a
        recursion level costs one round regardless of fan-out.  Nested
        rounds flatten into the enclosing round's current chain: a
        handler that batches internally is still part of one dependent
        sequence as seen from the outer round.
        """
        if self._round is not None:
            yield self._round
            return
        round_ = MessageRound()
        self._round = round_
        tracer = self.tracer
        if tracer is None:
            try:
                yield round_
            finally:
                self._round = None
                self.clock.advance(round_.critical_path)
                self.stats.record_round(round_.fanout, round_.critical_path)
            return
        with tracer.span("net", "message_round") as span:
            try:
                yield round_
            finally:
                self._round = None
                self.clock.advance(round_.critical_path)
                self.stats.record_round(round_.fanout, round_.critical_path)
                span.attrs["fanout"] = round_.fanout
                span.attrs["critical_path"] = round_.critical_path

    def broadcast_round(
        self,
        src: str,
        requests: Sequence[tuple],
        *,
        best_effort: bool = False,
    ) -> list[Any]:
        """Deliver several RPCs as one parallel message round.

        *requests* is a sequence of ``(dst, method, *args)`` tuples.
        Results come back in request order; the clock advances once, by
        the slowest delivery.  With *best_effort* a failed delivery
        yields ``None`` in its slot instead of raising.
        """
        results: list[Any] = []
        with self.message_round() as round_:
            for dst, method, *args in requests:
                with round_.chain():
                    try:
                        results.append(self.rpc(src, dst, method, *args))
                    except RpcError:
                        if not best_effort:
                            raise
                        results.append(None)
        return results

    def broadcast(self, src: str, method: str, *args: Any, **kwargs: Any) -> int:
        """Best-effort RPC to every live peer; returns delivery count.

        Deliveries ride one message round: the clock advances by the
        slowest delivery, not the sum — a broadcast is one round.
        """
        delivered = 0
        with self.message_round() as round_:
            for address in self.addresses():
                if address == src:
                    continue
                with round_.chain():
                    try:
                        self.rpc(src, address, method, *args, **kwargs)
                    except RpcError:
                        continue
                delivered += 1
        return delivered
