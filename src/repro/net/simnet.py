"""Synchronous simulated network with fault injection.

Peers register a handler object; other peers reach them through
:meth:`SimNetwork.rpc`, which models one request message and one
response message.  The call itself executes synchronously (the DHT
protocols here are sequential request/response chains), while the
discrete-event clock in :mod:`repro.net.events` advances by the modelled
round-trip latency, so time-based protocols (stabilization, churn)
observe realistic orderings.

Fault injection supports: unregistered/crashed destinations, seeded
random message drops, and explicit bidirectional partitions.  All of it
is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import NodeUnreachableError
from repro.common.rng import make_rng
from repro.net.events import EventScheduler
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.stats import NetworkStats


class RpcError(NodeUnreachableError):
    """An RPC failed to reach its destination (crash, drop, partition)."""


class SimNetwork:
    """Registry plus transport for simulated peers."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._handlers: dict[str, Any] = {}
        self._latency = latency if latency is not None else ConstantLatency()
        self._drop_probability = drop_probability
        self._rng = make_rng(seed)
        self._partitions: set[frozenset[str]] = set()
        self.stats = NetworkStats()
        self.clock = EventScheduler()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, address: str, handler: Any) -> None:
        """Attach *handler* (an object with ``handle_rpc``) at *address*."""
        if address in self._handlers:
            raise NodeUnreachableError(f"address {address!r} already in use")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        """Detach the peer at *address* (models a crash or departure)."""
        self._handlers.pop(address, None)

    def is_registered(self, address: str) -> bool:
        """True while a live handler is attached at *address*."""
        return address in self._handlers

    def addresses(self) -> list[str]:
        """Snapshot of all live addresses."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Make every (a, b) pair across the two groups unreachable."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partitions(self) -> None:
        """Remove every injected partition."""
        self._partitions.clear()

    def _partitioned(self, src: str, dst: str) -> bool:
        return frozenset((src, dst)) in self._partitions

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def rpc(
        self,
        src: str,
        dst: str,
        method: str,
        *args: Any,
        size_bytes: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``handle_rpc(method, *args, **kwargs)`` on peer *dst*.

        Accounts two messages (request + response) and advances the
        virtual clock by the round-trip latency.  Raises
        :class:`RpcError` when the destination is dead, partitioned
        away, or the message is dropped by fault injection.
        """
        self.stats.record_rpc()
        if dst not in self._handlers:
            self.stats.record_drop()
            raise RpcError(f"peer {dst!r} is not reachable (dead or unknown)")
        if self._partitioned(src, dst):
            self.stats.record_drop()
            raise RpcError(f"peers {src!r} and {dst!r} are partitioned")
        if self._drop_probability and self._rng.random() < self._drop_probability:
            self.stats.record_drop()
            raise RpcError(f"message {src!r} -> {dst!r} dropped")

        request = Message(src, dst, method, (args, kwargs), size_bytes)
        self.stats.record_message(method, size_bytes)
        handler = self._handlers[dst]
        result = handler.handle_rpc(request)
        self.stats.record_message(method + ":reply", 0)
        round_trip = self._latency.delay(src, dst) + self._latency.delay(dst, src)
        self.clock.run_until(self.clock.now + round_trip)
        return result

    def broadcast(self, src: str, method: str, *args: Any, **kwargs: Any) -> int:
        """Best-effort RPC to every live peer; returns delivery count."""
        delivered = 0
        for address in self.addresses():
            if address == src:
                continue
            try:
                self.rpc(src, address, method, *args, **kwargs)
            except RpcError:
                continue
            delivered += 1
        return delivered
