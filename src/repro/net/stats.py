"""Network-level accounting.

These counters meter what crosses the simulated wire.  They are
deliberately separate from the index-level counters in
:mod:`repro.metrics.counters`: the paper reports index-level costs
(number of DHT-lookups, records moved, rounds), which are substrate
independent, while these network counters let the DHT layer itself be
validated (e.g. Chord's O(log N) hops).
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields


@dataclass(slots=True)
class NetworkStats:
    """Mutable counters for one simulated network."""

    messages: int = 0
    bytes_sent: int = 0
    payload_bytes: int = 0
    dropped: int = 0
    rpc_calls: int = 0
    rounds: int = 0
    round_messages: int = 0
    max_round_fanout: int = 0
    critical_path_latency: float = 0.0
    wall_seconds: float = 0.0
    per_type: dict[str, int] = field(default_factory=dict)
    bytes_per_type: dict[str, int] = field(default_factory=dict)

    def record_message(
        self, msg_type: str, size_bytes: int, payload: int = 0
    ) -> None:
        """Account one delivered message of *msg_type*.

        *size_bytes* is the full modelled message (framing included);
        *payload* is the data-plane portion — encoded record bytes, per
        the shared codec — so experiments can separate goodput from
        protocol overhead.  ``bytes_per_type`` keeps the same split per
        message type, which is what lets a simulated overlay's
        data-plane traffic be compared against a wire runtime that
        performs no overlay routing.
        """
        self.messages += 1
        self.bytes_sent += size_bytes
        self.payload_bytes += payload
        self.per_type[msg_type] = self.per_type.get(msg_type, 0) + 1
        self.bytes_per_type[msg_type] = (
            self.bytes_per_type.get(msg_type, 0) + size_bytes
        )

    def record_drop(self) -> None:
        """Account one injected message drop."""
        self.dropped += 1

    def record_rpc(self) -> None:
        """Account one request/response exchange."""
        self.rpc_calls += 1

    def record_round(self, fanout: int, latency: float) -> None:
        """Account one parallel message round.

        *fanout* — how many independent RPC chains the round carried;
        *latency* — the slowest chain's total round-trip latency, the
        round's critical path (what the clock advanced by).
        """
        self.rounds += 1
        self.round_messages += fanout
        self.max_round_fanout = max(self.max_round_fanout, fanout)
        self.critical_path_latency += latency

    def record_wall_span(self, seconds: float) -> None:
        """Account real elapsed time spent serving requests.

        The service runtime (:mod:`repro.service`) drives this instead
        of a latency model: each request/round contributes the
        wall-clock span between issuing the frame and decoding its
        reply.  ``critical_path_latency`` stays the *simulated* clock's
        measure; keeping the two in separate fields is what lets
        :meth:`latency_clock` reconcile them instead of silently mixing
        units.
        """
        self.wall_seconds += seconds

    def latency_clock(self) -> tuple[str, float]:
        """The clock this network's latency actually ran on.

        Returns ``("wall", seconds)`` when wall-clock spans were
        recorded (the service runtime), else ``("simulated", time)``
        from the round critical paths (the simulated runtime).  One
        reporting surface for experiments that compare runtimes: the
        label says which units the number carries, so a table can never
        present simulated rounds as real seconds or vice versa.
        """
        if self.wall_seconds > 0.0:
            return ("wall", self.wall_seconds)
        return ("simulated", self.critical_path_latency)

    def mean_round_fanout(self) -> float:
        """Average chains per message round (0.0 before any round)."""
        if not self.rounds:
            return 0.0
        return self.round_messages / self.rounds

    def snapshot(self) -> dict[str, float]:
        """Return an immutable copy of the headline counters.

        Derived from the dataclass fields (``per_type`` excepted — the
        breakdown is reachable directly), so a counter added to this
        class is snapshotted, and reset, by construction.
        """
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.default is not MISSING
        }

    def reset(self) -> None:
        """Zero every counter (between experiment phases).

        Covers exactly the :meth:`snapshot` keyset plus ``per_type``,
        by construction.
        """
        for spec in fields(self):
            if spec.default is not MISSING:
                setattr(self, spec.name, spec.default)
            else:
                getattr(self, spec.name).clear()
