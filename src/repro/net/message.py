"""Message envelope for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``size_bytes`` is the *accounted* payload size.  The index layers
    report data movement in records (as the paper does); the DHT layer
    translates that to an approximate byte size only for network-level
    accounting, so nothing depends on Python object sizes.
    """

    src: str
    dst: str
    msg_type: str
    payload: Any
    size_bytes: int = 0
