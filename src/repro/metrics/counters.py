"""Cost metering around index operations.

Wrap a phase of an experiment in a :class:`CostMeter` to read off how
many DHT-lookups and record transfers that phase consumed — the two
maintenance measures of Fig. 5 — without the phases having to reset the
underlying counters.

The delta covers the *entire* :meth:`~repro.dht.api.DhtStats.snapshot`
keyset, not a hand-picked subset: batch primitives (``batch_rounds``,
``batched_ops``), the retry wrapper (``retries``, ``backoff_waits``,
``backoff_time``) and fault injection (``faults_*``) are all metered.
An earlier revision hardcoded six classic fields, so phases running on
the batched plane or over faulty substrates silently under-reported —
a counter added to ``DhtStats`` now shows up in every delta by
construction.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.dht.api import Dht, DhtStats

#: The classic positional order, preserved for source compatibility:
#: ``CostDelta(1, 2, 3, 4, 5, 6)`` still means (lookups, records_moved,
#: gets, puts, removes, hops).
_CLASSIC_FIELDS = (
    "lookups",
    "records_moved",
    "gets",
    "puts",
    "removes",
    "hops",
)


class CostDelta(Mapping):
    """Counter increments across one metered phase.

    Behaves as an immutable mapping over every counter that moved (or
    was explicitly given), with attribute access for convenience:
    ``delta.lookups`` and ``delta["lookups"]`` agree, and any counter
    name valid on :class:`~repro.dht.api.DhtStats` reads as 0 when the
    phase never touched it.  Positional construction keeps the classic
    six-field order for source compatibility.
    """

    __slots__ = ("_values",)

    def __init__(self, *classic: float, **counters: float) -> None:
        if len(classic) > len(_CLASSIC_FIELDS):
            raise TypeError(
                f"at most {len(_CLASSIC_FIELDS)} positional counters "
                f"(the classic {_CLASSIC_FIELDS}), got {len(classic)}"
            )
        values = dict(zip(_CLASSIC_FIELDS, classic))
        for name, value in counters.items():
            if name in values:
                raise TypeError(f"counter {name!r} given twice")
            values[name] = value
        object.__setattr__(self, "_values", values)

    # -- mapping surface ------------------------------------------------

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- attribute surface ----------------------------------------------

    def __getattr__(self, name: str) -> float:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._values[name]
        except KeyError:
            # Any real DhtStats counter the phase never moved reads 0;
            # unknown names are attribute errors as usual.
            if name in _known_counter_names():
                return 0
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("CostDelta is immutable")

    # -- value semantics ------------------------------------------------

    def __add__(self, other: "CostDelta") -> "CostDelta":
        if not isinstance(other, CostDelta):
            return NotImplemented
        merged = dict(self._values)
        for name, value in other._values.items():
            merged[name] = merged.get(name, 0) + value
        return CostDelta(**merged)

    def __eq__(self, other) -> bool:
        if isinstance(other, CostDelta):
            return self._nonzero() == other._nonzero()
        if isinstance(other, Mapping):
            return self._nonzero() == {
                name: value for name, value in other.items() if value
            }
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._nonzero().items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value}" for name, value in sorted(self._values.items())
        )
        return f"CostDelta({inner})"

    def _nonzero(self) -> dict[str, float]:
        return {name: value for name, value in self._values.items() if value}


def _known_counter_names() -> frozenset[str]:
    global _KNOWN
    if _KNOWN is None:
        _KNOWN = frozenset(DhtStats().snapshot())
    return _KNOWN


_KNOWN: frozenset[str] | None = None


class CostMeter:
    """Context manager measuring DhtStats increments.

    Usage::

        with CostMeter(index.dht) as meter:
            index.insert(key)
        print(meter.delta.lookups, meter.delta.records_moved)

    The delta is computed over the full ``snapshot()`` keyset, so
    round, retry, backoff and fault counters are metered alongside the
    classic lookup/movement costs.
    """

    def __init__(self, dht: Dht) -> None:
        self._stats: DhtStats = dht.stats
        self._before: dict[str, int | float] | None = None
        self.delta: CostDelta | None = None

    def __enter__(self) -> "CostMeter":
        self._before = self._stats.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        after = self._stats.snapshot()
        before = self._before or {}
        self.delta = CostDelta(**{
            name: value - before.get(name, 0)
            for name, value in after.items()
        })
