"""Cost metering around index operations.

Wrap a phase of an experiment in a :class:`CostMeter` to read off how
many DHT-lookups and record transfers that phase consumed — the two
maintenance measures of Fig. 5 — without the phases having to reset the
underlying counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.api import Dht, DhtStats


@dataclass(frozen=True, slots=True)
class CostDelta:
    """Counter increments across one metered phase."""

    lookups: int
    records_moved: int
    gets: int
    puts: int
    removes: int
    hops: int

    def __add__(self, other: "CostDelta") -> "CostDelta":
        return CostDelta(
            self.lookups + other.lookups,
            self.records_moved + other.records_moved,
            self.gets + other.gets,
            self.puts + other.puts,
            self.removes + other.removes,
            self.hops + other.hops,
        )


class CostMeter:
    """Context manager measuring DhtStats increments.

    Usage::

        with CostMeter(index.dht) as meter:
            index.insert(key)
        print(meter.delta.lookups, meter.delta.records_moved)
    """

    def __init__(self, dht: Dht) -> None:
        self._stats: DhtStats = dht.stats
        self._before: dict[str, int] | None = None
        self.delta: CostDelta | None = None

    def __enter__(self) -> "CostMeter":
        self._before = self._stats.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        after = self._stats.snapshot()
        before = self._before or {}
        self.delta = CostDelta(
            lookups=after["lookups"] - before.get("lookups", 0),
            records_moved=(
                after["records_moved"] - before.get("records_moved", 0)
            ),
            gets=after["gets"] - before.get("gets", 0),
            puts=after["puts"] - before.get("puts", 0),
            removes=after["removes"] - before.get("removes", 0),
            hops=after["hops"] - before.get("hops", 0),
        )
