"""Storage load-balance statistics (Fig. 6 measures).

The paper reports two measures for the splitting-strategy comparison:
the **variance of storage on each peer** and the **percentage of empty
buckets**.  Absolute variance scales with dataset size, so we report it
normalised by the squared mean (the squared coefficient of variation),
which makes curves comparable across tree sizes; the raw variance is
also available.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.common.errors import ReproError
from repro.core.bucket import LeafBucket
from repro.dht.api import Dht


def load_variance(loads: Sequence[float]) -> float:
    """Population variance of *loads*."""
    if not loads:
        raise ReproError("variance of an empty load vector is undefined")
    mean = sum(loads) / len(loads)
    return sum((load - mean) ** 2 for load in loads) / len(loads)


def normalized_load_variance(loads: Sequence[float]) -> float:
    """Squared coefficient of variation: ``var / mean**2``.

    Zero for perfectly even loads; dimensionless, so the Fig. 6a curves
    for different tree sizes share one scale.  Defined as 0 when every
    load is zero.
    """
    if not loads:
        raise ReproError("variance of an empty load vector is undefined")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    return load_variance(loads) / (mean * mean)


def empty_bucket_fraction(buckets: Iterable[LeafBucket]) -> float:
    """Fraction of leaf buckets holding zero records (Fig. 6b)."""
    total = 0
    empty = 0
    for bucket in buckets:
        total += 1
        if bucket.is_empty:
            empty += 1
    if total == 0:
        raise ReproError("no buckets to measure")
    return empty / total


def gini_coefficient(loads: Sequence[float]) -> float:
    """Gini coefficient of *loads* — a complementary imbalance view."""
    if not loads:
        raise ReproError("Gini of an empty load vector is undefined")
    ordered = sorted(loads)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for rank, load in enumerate(ordered, start=1):
        cumulative += load
        weighted += cumulative
    n = len(ordered)
    # Standard formula: G = (n + 1 - 2 * sum(cum_i) / total) / n
    return (n + 1 - 2 * weighted / total) / n


def peer_record_loads(dht: Dht, key_prefix: str = "ml:") -> list[int]:
    """Records stored per peer, counting buckets under *key_prefix*.

    This is the Fig. 6a population: every peer of the DHT, weighted by
    the records of the index buckets it hosts (peers hosting none count
    as zero).
    """
    loads = {peer: 0 for peer in dht.peers()}
    for key, value in dht.items():
        if not key.startswith(key_prefix):
            continue
        if isinstance(value, LeafBucket):
            loads[dht.peer_of(key)] += value.load
    return list(loads.values())


def peer_query_loads(dht: Dht, read_counts: dict[str, int]) -> list[int]:
    """Reads served per peer, attributing *read_counts* by key owner.

    The query-side complement of :func:`peer_record_loads`: Theorem 6
    balances what peers *store*, this measures what peers *serve*.
    *read_counts* maps DHT keys to how many reads each received (the
    adaptive plane's per-bucket counters, or any equivalent tally);
    every peer of the DHT appears, peers serving nothing count as zero.
    """
    loads = {peer: 0 for peer in dht.peers()}
    for key, count in read_counts.items():
        loads[dht.peer_of(key)] += count
    return list(loads.values())


def max_mean_ratio(loads: Sequence[float]) -> float:
    """``max(loads) / mean(loads)`` — the hotspot factor.

    1.0 for perfectly even loads, ``n`` when one peer of ``n`` serves
    everything; defined as 0 when every load is zero.
    """
    if not loads:
        raise ReproError("max/mean of an empty load vector is undefined")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    return max(loads) / mean
