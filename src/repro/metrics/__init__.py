"""Measurement utilities: cost meters and load-balance statistics."""

from repro.metrics.counters import CostMeter, CostDelta
from repro.metrics.loadbalance import (
    load_variance,
    normalized_load_variance,
    empty_bucket_fraction,
    gini_coefficient,
    peer_record_loads,
)

__all__ = [
    "CostMeter",
    "CostDelta",
    "load_variance",
    "normalized_load_variance",
    "empty_bucket_fraction",
    "gini_coefficient",
    "peer_record_loads",
]
