"""The one construction surface for DHT substrates.

Historically every experiment picked its substrate by importing a
concrete constructor (``LocalDht(n_peers)``, ``ChordDht.build(...)``,
...).  With the service plane there are now two *runtimes* (simulated
and asyncio/TCP) times several *overlays*, so construction goes through
a single registry-backed factory instead::

    from repro.runtime import RuntimeConfig, create_dht

    dht = create_dht(RuntimeConfig(kind="sim", overlay="chord",
                                   n_peers=64))
    dht = create_dht(RuntimeConfig(kind="asyncio", n_peers=8))

``kind`` selects the runtime plane:

* ``"sim"`` — the single-threaded simulated substrates.  ``overlay``
  picks which one: the ``"local"`` consistent-hashing oracle or the
  routed ``"chord"``/``"kademlia"``/``"pastry"`` protocols over
  :class:`~repro.net.simnet.SimNetwork`.
* ``"asyncio"`` / ``"tcp"`` — the service runtime
  (:class:`~repro.service.node.ServiceDht`): every peer an independent
  asyncio actor speaking the framed wire protocol, through in-process
  inboxes or real loopback sockets.  Placement is runtime-neutral
  consistent hashing; ``overlay`` only names the peers (routed overlay
  *protocols* remain a sim-plane concern).  Remember to ``close()``
  service substrates (or use them as context managers).

Query answers and index-level :class:`~repro.dht.api.DhtStats` meters
are identical whichever runtime serves them — that is the over-DHT
contract, and ``tests/test_service_equivalence.py`` holds the factory
to it.

Third-party runtimes register with :func:`register_runtime`; unknown
kinds and overlays raise :class:`~repro.common.errors.
UnknownRuntimeError` (a ``ValueError``) naming the registry contents.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import (
    ReproError,
    UnknownDurabilityError,
    UnknownRuntimeError,
)
from repro.dht.api import Dht
from repro.dht.chord import ChordDht
from repro.dht.durable import store_backend_kinds
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.service.node import ServiceDht

OVERLAYS = ("local", "chord", "kademlia", "pastry")


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Everything needed to construct one DHT substrate.

    Attributes:
        kind: runtime plane — ``"sim"``, ``"asyncio"`` or ``"tcp"``
            (or any kind added via :func:`register_runtime`).
        overlay: substrate flavour within the runtime; one of
            ``"local"``, ``"chord"``, ``"kademlia"``, ``"pastry"``.
        n_peers: how many peers the substrate simulates or serves.
        virtual_nodes: ring positions per peer (consistent-hashing
            placements only, i.e. ``local`` and the service runtime).
        replication: stored copies per key (``sim``/``chord`` only).
        durability: durable-backend kind journaling every peer store
            (``"log"``, ``"file"``, or any kind added via
            :func:`~repro.dht.durable.register_store_backend`); ``None``
            keeps stores purely in-memory.  Required for
            :meth:`~repro.dht.api.Dht.restart`.
        data_dir: directory for the durable backend files; ``None``
            gives each substrate its own fresh temporary directory, so
            parallel test workers never share a log.
    """

    kind: str = "sim"
    overlay: str = "local"
    n_peers: int = 128
    virtual_nodes: int = 1
    replication: int = 1
    durability: str | None = None
    data_dir: str | None = None

    def __post_init__(self) -> None:
        if self.overlay not in OVERLAYS:
            raise UnknownRuntimeError(
                f"unknown overlay {self.overlay!r}; expected one of "
                f"{OVERLAYS}"
            )
        if self.n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {self.n_peers}")
        if self.virtual_nodes < 1:
            raise ReproError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.replication < 1:
            raise ReproError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.virtual_nodes > 1 and self.overlay != "local":
            raise ReproError(
                "virtual_nodes applies only to consistent-hashing "
                f"placement (overlay='local'), not {self.overlay!r}"
            )
        if self.replication > 1 and self.overlay != "chord":
            raise ReproError(
                "replication is implemented by the chord overlay only, "
                f"not {self.overlay!r}"
            )
        if self.durability is not None:
            kinds = store_backend_kinds()
            if self.durability not in kinds:
                raise UnknownDurabilityError(
                    f"unknown durability {self.durability!r}; expected "
                    f"one of {kinds}"
                )
        if self.data_dir is not None and self.durability is None:
            raise ReproError(
                "data_dir has no effect without durability; pass "
                "durability='log' or 'file' alongside it"
            )


def _build_sim(config: RuntimeConfig) -> Dht:
    durable = {
        "durability": config.durability,
        "data_dir": config.data_dir,
    }
    if config.overlay == "local":
        return LocalDht(config.n_peers, config.virtual_nodes, **durable)
    if config.overlay == "chord":
        return ChordDht.build(
            config.n_peers, replication=config.replication, **durable
        )
    if config.overlay == "kademlia":
        return KademliaDht.build(config.n_peers, **durable)
    return PastryDht.build(config.n_peers, **durable)


def _build_service(transport: str) -> Callable[[RuntimeConfig], Dht]:
    def build(config: RuntimeConfig) -> Dht:
        return ServiceDht(
            config.n_peers,
            transport=transport,
            virtual_nodes=config.virtual_nodes,
            peer_prefix="peer" if config.overlay == "local"
            else config.overlay,
            durability=config.durability,
            data_dir=config.data_dir,
        )

    return build


_RUNTIMES: dict[str, Callable[[RuntimeConfig], Dht]] = {
    "sim": _build_sim,
    "asyncio": _build_service("asyncio"),
    "tcp": _build_service("tcp"),
}


def runtime_kinds() -> tuple[str, ...]:
    """The registered runtime kinds, registration order."""
    return tuple(_RUNTIMES)


def register_runtime(
    kind: str, builder: Callable[[RuntimeConfig], Dht]
) -> None:
    """Add (or replace) a runtime *kind* in the factory registry."""
    if not kind:
        raise ReproError("runtime kind must be a non-empty string")
    _RUNTIMES[kind] = builder


def create_dht(config: RuntimeConfig | None = None, **overrides) -> Dht:
    """Build the substrate *config* describes.

    Keyword overrides are merged over *config* (or over a default
    ``RuntimeConfig``), so the short forms read naturally::

        create_dht(kind="asyncio", n_peers=8)
        create_dht(RuntimeConfig(overlay="chord"), n_peers=32)
    """
    if config is None:
        config = RuntimeConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    builder = _RUNTIMES.get(config.kind)
    if builder is None:
        raise UnknownRuntimeError(
            f"unknown runtime kind {config.kind!r}; expected one of "
            f"{tuple(_RUNTIMES)}"
        )
    return builder(config)
