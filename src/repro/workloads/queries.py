"""Range-query workloads.

The paper's Fig. 7 uses "rectangles uniformly distributed in the data
space" parameterised by *range span* — the area of the rectangle.
:func:`uniform_range_queries` reproduces that: given a span (area
fraction), it draws axis-aligned boxes of that volume, at uniformly
random positions, with mild random aspect-ratio jitter.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.common.geometry import Point, Region
from repro.common.rng import make_rng


def uniform_range_queries(
    n: int,
    span: float,
    dims: int = 2,
    aspect_jitter: float = 0.5,
    seed: int = 0,
) -> list[Region]:
    """*n* boxes of volume *span*, uniformly placed in the unit cube.

    *aspect_jitter* in [0, 1) scales how far each side may deviate from
    the cube root shape (0 = perfect hypercubes).
    """
    if not 0.0 < span <= 1.0:
        raise ReproError(f"span must be in (0, 1], got {span}")
    if not 0.0 <= aspect_jitter < 1.0:
        raise ReproError("aspect_jitter must be in [0, 1)")
    rng = make_rng(seed)
    base_side = span ** (1.0 / dims)
    queries: list[Region] = []
    for _ in range(n):
        # Draw side factors that multiply to 1 to preserve the volume.
        factors = [
            1.0 + aspect_jitter * (rng.random() * 2.0 - 1.0)
            for _ in range(dims)
        ]
        geometric_mean = 1.0
        for factor in factors:
            geometric_mean *= factor
        geometric_mean **= 1.0 / dims
        sides = [
            min(1.0, base_side * factor / geometric_mean)
            for factor in factors
        ]
        lows = tuple(
            rng.uniform(0.0, 1.0 - side) for side in sides
        )
        highs = tuple(low + side for low, side in zip(lows, sides))
        queries.append(Region(lows, highs))
    return queries


def point_queries(
    points: list[Point], n: int, seed: int = 0
) -> list[Point]:
    """*n* exact-match targets sampled from *points* (with replacement)."""
    if not points:
        raise ReproError("cannot sample queries from an empty dataset")
    rng = make_rng(seed)
    return [rng.choice(points) for _ in range(n)]
