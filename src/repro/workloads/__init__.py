"""Workload generators: range queries and insertion/deletion traces."""

from repro.workloads.queries import uniform_range_queries, point_queries
from repro.workloads.traces import (
    Operation,
    insert_trace,
    mixed_trace,
    request_trace,
    run_operation,
    zipf_sampler,
)

__all__ = [
    "uniform_range_queries",
    "point_queries",
    "Operation",
    "insert_trace",
    "mixed_trace",
    "request_trace",
    "run_operation",
    "zipf_sampler",
]
