"""Insertion/deletion traces for maintenance experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ReproError
from repro.common.geometry import Point
from repro.common.rng import make_rng


@dataclass(frozen=True, slots=True)
class Operation:
    """One trace step: ``kind`` is ``"insert"`` or ``"delete"``."""

    kind: str
    key: Point
    value: Any = None


def insert_trace(points: list[Point], value: Any = None) -> list[Operation]:
    """Progressive insertion of *points*, in order — the Fig. 5 workload."""
    return [Operation("insert", point, value) for point in points]


def mixed_trace(
    points: list[Point],
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> list[Operation]:
    """Insert everything, interleaving deletions of earlier keys.

    After a warm-up of 10% pure inserts, each step is a deletion of a
    uniformly chosen live key with probability *delete_fraction*,
    otherwise the next insertion.  Exercises the merge paths.
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ReproError("delete_fraction must be in [0, 1)")
    rng = make_rng(seed)
    operations: list[Operation] = []
    live: list[Point] = []
    warmup = max(1, len(points) // 10)
    cursor = 0
    while cursor < len(points):
        if (
            len(operations) > warmup
            and live
            and rng.random() < delete_fraction
        ):
            index = rng.randrange(len(live))
            live[index], live[-1] = live[-1], live[index]
            operations.append(Operation("delete", live.pop()))
            continue
        point = points[cursor]
        cursor += 1
        live.append(point)
        operations.append(Operation("insert", point))
    return operations


def apply_trace(index, operations: list[Operation]) -> tuple[int, int]:
    """Apply *operations* to any over-DHT index; returns
    (inserts, deletes) applied."""
    inserts = deletes = 0
    for operation in operations:
        if operation.kind == "insert":
            index.insert(operation.key, operation.value)
            inserts += 1
        elif operation.kind == "delete":
            index.delete(operation.key, operation.value)
            deletes += 1
        else:
            raise ReproError(f"unknown trace op {operation.kind!r}")
    return inserts, deletes
