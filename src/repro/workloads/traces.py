"""Insertion/deletion/query traces for experiments and the load
generator."""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ReproError
from repro.common.geometry import Point, Region
from repro.common.rng import make_rng


@dataclass(frozen=True, slots=True)
class Operation:
    """One trace step.

    ``kind`` is ``"insert"``, ``"delete"``, ``"lookup"`` (exact-match
    query of ``key``) or ``"range"`` (range query of ``region``;
    ``key`` then carries the region's centre for reference).
    """

    kind: str
    key: Point
    value: Any = None
    region: Region | None = None


def insert_trace(points: list[Point], value: Any = None) -> list[Operation]:
    """Progressive insertion of *points*, in order — the Fig. 5 workload."""
    return [Operation("insert", point, value) for point in points]


def mixed_trace(
    points: list[Point],
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> list[Operation]:
    """Insert everything, interleaving deletions of earlier keys.

    After a warm-up of 10% pure inserts, each step is a deletion of a
    uniformly chosen live key with probability *delete_fraction*,
    otherwise the next insertion.  Exercises the merge paths.
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ReproError("delete_fraction must be in [0, 1)")
    rng = make_rng(seed)
    operations: list[Operation] = []
    live: list[Point] = []
    warmup = max(1, len(points) // 10)
    cursor = 0
    while cursor < len(points):
        if (
            len(operations) > warmup
            and live
            and rng.random() < delete_fraction
        ):
            index = rng.randrange(len(live))
            live[index], live[-1] = live[-1], live[index]
            operations.append(Operation("delete", live.pop()))
            continue
        point = points[cursor]
        cursor += 1
        live.append(point)
        operations.append(Operation("insert", point))
    return operations


def zipf_sampler(n: int, skew: float, rng) -> Any:
    """A zero-arg sampler of ranks ``0..n-1`` with Zipf(s = *skew*).

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** skew`` — the standard skewed-access model (hot
    spots concentrate on the low ranks).  ``skew = 0`` degrades to the
    uniform ``rng.randrange(n)`` draw, bit-identically.  Sampling is
    one uniform variate inverted against the precomputed cumulative
    weights, so a trace costs O(n + ops log n).
    """
    if skew < 0:
        raise ReproError(f"skew must be >= 0, got {skew}")
    if skew == 0:
        return lambda: rng.randrange(n)
    cumulative = list(
        itertools.accumulate(
            1.0 / (rank + 1.0) ** skew for rank in range(n)
        )
    )
    total = cumulative[-1]
    return lambda: bisect.bisect_left(cumulative, rng.random() * total)


def request_trace(
    points: list[Point],
    n_operations: int,
    *,
    lookup_fraction: float = 0.7,
    range_fraction: float = 0.2,
    insert_fraction: float = 0.1,
    span: float = 0.0004,
    skew: float = 0.0,
    dims: int = 2,
    seed: int = 0,
) -> list[Operation]:
    """A mixed request stream over an already-loaded index.

    The service load generator's workload: each step is an exact-match
    lookup of a loaded key, a range query of volume *span* centred on a
    loaded key, or an insertion of a fresh point, drawn with the given
    weights.  *points* are the keys the index was loaded with; fresh
    insertion points are drawn uniformly.  Deterministic under *seed*.

    *skew* selects which loaded key a lookup or range step targets:
    ``0`` (the default) draws uniformly; ``s > 0`` draws point ranks
    from Zipf(s) (see :func:`zipf_sampler`), so a handful of keys —
    hence a handful of leaf buckets and peers — absorb most of the
    query traffic.  The skewed-workload experiments (E13) run
    ``skew=1.1``.
    """
    if not points:
        raise ReproError("request_trace needs at least one loaded point")
    weights = (lookup_fraction, range_fraction, insert_fraction)
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ReproError(
            "lookup/range/insert fractions must be >= 0 and sum > 0, "
            f"got {weights}"
        )
    if not 0.0 < span <= 1.0:
        raise ReproError(f"span must be in (0, 1], got {span}")
    rng = make_rng(seed)
    sample_rank = zipf_sampler(len(points), skew, rng)
    side = span ** (1.0 / dims)
    operations: list[Operation] = []
    kinds = ("lookup", "range", "insert")
    for _ in range(n_operations):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "insert":
            operations.append(
                Operation(
                    "insert", tuple(rng.random() for _ in range(dims))
                )
            )
            continue
        centre = points[sample_rank()]
        if kind == "lookup":
            operations.append(Operation("lookup", centre))
            continue
        lows = tuple(
            min(max(c - side / 2, 0.0), 1.0 - side) for c in centre
        )
        highs = tuple(low + side for low in lows)
        operations.append(
            Operation("range", centre, region=Region(lows, highs))
        )
    return operations


def apply_trace(index, operations: list[Operation]) -> tuple[int, int]:
    """Apply *operations* to any over-DHT index; returns
    (inserts, deletes) applied.  Query steps (``lookup``/``range``)
    execute for their side effects on the meters; their answers are the
    equivalence tests' concern (see :func:`run_operation`)."""
    inserts = deletes = 0
    for operation in operations:
        if operation.kind == "insert":
            index.insert(operation.key, operation.value)
            inserts += 1
        elif operation.kind == "delete":
            index.delete(operation.key, operation.value)
            deletes += 1
        elif operation.kind in ("lookup", "range"):
            run_operation(index, operation)
        else:
            raise ReproError(f"unknown trace op {operation.kind!r}")
    return inserts, deletes


def run_operation(index, operation: Operation) -> Any:
    """Execute one trace step against *index*, returning its answer.

    The load generator and the sim-vs-service equivalence tests share
    this dispatcher so "the same workload" means the same calls.
    """
    if operation.kind == "insert":
        return index.insert(operation.key, operation.value)
    if operation.kind == "delete":
        return index.delete(operation.key, operation.value)
    if operation.kind == "lookup":
        return index.lookup(operation.key)
    if operation.kind == "range":
        return index.range_query(operation.region)
    raise ReproError(f"unknown trace op {operation.kind!r}")
