"""Label algebra for the space kd-tree (Section 3.2 of the paper).

A *label* is a binary string identifying one node of the space kd-tree:

* the **virtual root** is ``m`` consecutive ``'0'`` characters, where
  ``m`` is the data dimensionality;
* the **ordinary root**, written ``#`` in the paper, is the virtual
  root followed by ``'1'`` (for 2-D data, ``# == "001"``, three bits);
* every other node appends one bit per tree edge below the root —
  ``'0'`` for the lower half of the split, ``'1'`` for the upper half.

The split at tree depth ``d`` (the root is depth 0) halves dimension
``d % m``; this is the alternating space partitioning of Fig. 1a.  The
partitioning is *data independent*, so every peer can reconstruct the
cell of any label locally — the property all distributed algorithms in
the paper rely on.

Labels are plain Python ``str`` values.  They are hashable, cheap, and
directly usable as DHT keys, which keeps the whole stack explicit.

Packed fast path
----------------
The ``str`` form is the canonical external representation, but the
per-character loops it forces are the CPU bottleneck of the hot loops
(one ``candidate_string`` per lookup, one naming scan per probe).  The
``packed_*`` family below mirrors every label operation on a
**bit-packed** form — ``(bits, length)`` where ``bits`` is the label
read as a big-endian binary integer — so the inner loops become O(1)
integer arithmetic (shifts, xors, table-driven Morton spreads) and the
string is materialised once at the edge with a single ``format`` call.
``pack_label``/``unpack_label`` convert between the two forms;
``tests/test_hotpath_equivalence.py`` asserts bit-identical behaviour
against the string implementations on randomized workloads.

Coordinate convention
---------------------
We interleave dimension 0 first (standard Morton order).  The paper's
worked example interleaves its second printed coordinate first; the two
conventions differ only by a relabelling of axes and every theorem holds
under either.  See ``DESIGN.md``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.common.errors import InvalidLabelError, InvalidPointError

#: Number of bits of per-dimension resolution used when converting a
#: float coordinate in [0, 1) to its binary expansion.  Multiplying by a
#: power of two is exact for IEEE-754 doubles, so the expansion is
#: deterministic.  60 bits is far deeper than any index tree we build.
MAX_RESOLUTION_BITS = 60

_SCALE = 1 << MAX_RESOLUTION_BITS


def virtual_root(dims: int) -> str:
    """Return the virtual-root label: ``m`` consecutive ``'0'`` bits."""
    _check_dims(dims)
    return "0" * dims


def root_label(dims: int) -> str:
    """Return the ordinary root label ``#`` (virtual root plus ``'1'``)."""
    _check_dims(dims)
    return "0" * dims + "1"


def is_valid_label(label: str, dims: int) -> bool:
    """Return True when *label* names a node of an ``m``-d space kd-tree.

    Valid labels are the virtual root itself, or any extension of the
    ordinary root by zero or more ``0``/``1`` edge bits.
    """
    if dims < 1:
        return False
    if not label or any(ch not in "01" for ch in label):
        return False
    if label == virtual_root(dims):
        return True
    return label.startswith(root_label(dims))


def label_depth(label: str, dims: int) -> int:
    """Return the tree depth of *label*; the ordinary root has depth 0.

    The virtual root has depth -1 by convention (it sits above the
    ordinary root).
    """
    _check_label(label, dims)
    return len(label) - dims - 1


def parent(label: str, dims: int) -> str:
    """Return the parent label (one bit shorter).

    The parent of the ordinary root is the virtual root; the virtual
    root has no parent and asking for one raises
    :class:`InvalidLabelError`.
    """
    _check_label(label, dims)
    if label == virtual_root(dims):
        raise InvalidLabelError("the virtual root has no parent")
    return label[:-1]


def children(label: str, dims: int) -> tuple[str, str]:
    """Return the two child labels ``(label + '0', label + '1')``.

    The virtual root is special: its only child is the ordinary root,
    and this function rejects it — use :func:`root_label` directly.
    """
    _check_label(label, dims)
    if label == virtual_root(dims):
        raise InvalidLabelError(
            "the virtual root has a single child; use root_label()"
        )
    return label + "0", label + "1"


def sibling(label: str, dims: int) -> str:
    """Return the sibling label (last edge bit inverted).

    The ordinary root and the virtual root have no sibling.
    """
    _check_label(label, dims)
    if len(label) <= dims + 1:
        raise InvalidLabelError(f"label {label!r} has no sibling")
    last = "1" if label[-1] == "0" else "0"
    return label[:-1] + last


def ancestors(label: str, dims: int) -> Iterator[str]:
    """Yield proper ancestors of *label*, nearest first, ending at the
    virtual root.

    For leaf ``#01`` in 2-D this yields ``#0``, ``#`` and ``00``.
    """
    _check_label(label, dims)
    for end in range(len(label) - 1, dims - 1, -1):
        yield label[:end]


def branch_nodes_between(leaf: str, top: str, dims: int) -> list[str]:
    """Return the *branch nodes* between *leaf* and its ancestor *top*.

    Branch nodes are the siblings of every node on the path from *leaf*
    up to, but excluding, *top* (Section 3.3).  Together with *leaf*
    itself their regions exactly tile the region of *top*, which is what
    the range-query decomposition exploits.  Returned nearest-to-*top*
    first (shallowest first).
    """
    _check_label(leaf, dims)
    _check_label(top, dims)
    if not leaf.startswith(top) or leaf == top:
        raise InvalidLabelError(
            f"{top!r} is not a proper ancestor of {leaf!r}"
        )
    branches = []
    for end in range(len(top) + 1, len(leaf) + 1):
        branches.append(sibling(leaf[:end], dims))
    return branches


def split_dimension(label: str, dims: int) -> int:
    """Return the dimension halved when *label*'s cell splits.

    The root cell (depth 0) splits dimension 0, its children split
    dimension 1, and so on, cycling through all ``m`` dimensions.
    """
    depth = label_depth(label, dims)
    if depth < 0:
        raise InvalidLabelError("the virtual root does not split the space")
    return depth % dims


def coordinate_bits(coordinate: float, depth: int) -> str:
    """Return the first *depth* bits of the binary expansion of
    *coordinate*, which must lie in ``[0, 1)``.

    ``0.2 -> '0011...'`` and ``0.4 -> '0110...'`` as in the paper's
    lookup example (Section 5).
    """
    if not 0.0 <= coordinate < 1.0:
        raise InvalidPointError(
            f"coordinate {coordinate!r} outside [0, 1)"
        )
    if depth < 0:
        raise InvalidPointError(f"negative bit depth {depth}")
    if depth > MAX_RESOLUTION_BITS:
        raise InvalidPointError(
            f"bit depth {depth} exceeds resolution {MAX_RESOLUTION_BITS}"
        )
    scaled = int(coordinate * _SCALE)
    bits = []
    for position in range(1, depth + 1):
        bits.append("1" if scaled >> (MAX_RESOLUTION_BITS - position) & 1 else "0")
    return "".join(bits)


def interleave(point: Sequence[float], depth: int) -> str:
    """Interleave the binary expansions of all coordinates of *point*.

    Produces *depth* bits total: bit ``k`` (0-based) is bit
    ``k // m + 1`` of coordinate ``k % m``.  Prefixes of the result,
    appended to the root label, enumerate the cells containing *point*
    from the whole space downward.

    The bits are computed on the packed integer fast path
    (:func:`packed_interleave`) and rendered with one ``format`` call;
    :func:`coordinate_bits` remains the per-character reference the
    equivalence tests check against.
    """
    bits, length = packed_interleave(point, depth)
    if length == 0:
        return ""
    return format(bits, f"0{length}b")


def candidate_string(point: Sequence[float], max_depth: int) -> str:
    """Return the longest candidate label for *point* (Section 5).

    This is the root label followed by ``max_depth`` interleaved bits;
    the leaf bucket covering *point* is labelled by exactly one prefix
    of this string of length at least ``m + 1``.
    """
    bits, length = packed_candidate(point, max_depth)
    return format(bits, f"0{length}b")


def common_prefix(first: str, second: str) -> str:
    """Return the longest common prefix of two bit strings."""
    limit = min(len(first), len(second))
    for position in range(limit):
        if first[position] != second[position]:
            return first[:position]
    return first[:limit]


# ----------------------------------------------------------------------
# Packed fast path: labels as (bits, length) integers
# ----------------------------------------------------------------------

#: A bit-packed label: the label's bits read as a big-endian integer,
#: plus the explicit bit length (leading zeros are significant — the
#: virtual root is all zeros — so the length cannot be recovered from
#: the integer alone).
PackedLabel = tuple[int, int]

#: Morton spread tables, one per dimensionality: ``table[byte]`` is
#: *byte* with ``dims - 1`` zero bits inserted between consecutive
#: bits, so interleaving processes eight bits per table hit instead of
#: one per loop iteration.
_SPREAD_TABLES: dict[int, list[int]] = {}


def _spread_table(dims: int) -> list[int]:
    table = _SPREAD_TABLES.get(dims)
    if table is None:
        table = []
        for byte in range(256):
            spread = 0
            for bit in range(8):
                if byte >> bit & 1:
                    spread |= 1 << (bit * dims)
            table.append(spread)
        _SPREAD_TABLES[dims] = table
    return table


def _spread(value: int, dims: int, table: list[int]) -> int:
    """Insert ``dims - 1`` zeros between consecutive bits of *value*."""
    out = 0
    shift = 0
    while value:
        out |= table[value & 0xFF] << (shift * dims)
        value >>= 8
        shift += 8
    return out


def pack_label(label: str) -> PackedLabel:
    """Pack a bit-string label into ``(bits, length)`` form."""
    if not label:
        return 0, 0
    return int(label, 2), len(label)


def unpack_label(packed: PackedLabel) -> str:
    """Render a packed label back to its canonical ``str`` form."""
    bits, length = packed
    if length == 0:
        return ""
    return format(bits, f"0{length}b")


def packed_virtual_root(dims: int) -> PackedLabel:
    """Packed form of :func:`virtual_root`."""
    _check_dims(dims)
    return 0, dims


def packed_root(dims: int) -> PackedLabel:
    """Packed form of :func:`root_label`."""
    _check_dims(dims)
    return 1, dims + 1


def packed_is_valid(packed: PackedLabel, dims: int) -> bool:
    """Packed form of :func:`is_valid_label`."""
    bits, length = packed
    if dims < 1 or bits < 0 or bits.bit_length() > length:
        return False
    if length == dims:
        return bits == 0
    if length <= dims:
        return False
    # Must extend the ordinary root: the top dims+1 bits are 0…01.
    return bits >> (length - dims - 1) == 1


def packed_depth(packed: PackedLabel, dims: int) -> int:
    """Packed form of :func:`label_depth` (no validation)."""
    return packed[1] - dims - 1


def packed_parent(packed: PackedLabel, dims: int) -> PackedLabel:
    """Packed form of :func:`parent` (structural checks only)."""
    bits, length = packed
    if length <= dims:
        raise InvalidLabelError("the virtual root has no parent")
    return bits >> 1, length - 1


def packed_children(
    packed: PackedLabel, dims: int
) -> tuple[PackedLabel, PackedLabel]:
    """Packed form of :func:`children` (structural checks only)."""
    bits, length = packed
    if length <= dims:
        raise InvalidLabelError(
            "the virtual root has a single child; use packed_root()"
        )
    doubled = bits << 1
    return (doubled, length + 1), (doubled | 1, length + 1)


def packed_sibling(packed: PackedLabel, dims: int) -> PackedLabel:
    """Packed form of :func:`sibling` (structural checks only)."""
    bits, length = packed
    if length <= dims + 1:
        raise InvalidLabelError(
            f"label {unpack_label(packed)!r} has no sibling"
        )
    return bits ^ 1, length


def packed_prefix(packed: PackedLabel, length: int) -> PackedLabel:
    """The leading *length* bits of *packed* (an ancestor label)."""
    bits, full = packed
    if not 0 <= length <= full:
        raise InvalidLabelError(
            f"prefix length {length} out of range for a {full}-bit label"
        )
    return bits >> (full - length), length


def packed_is_prefix(prefix: PackedLabel, packed: PackedLabel) -> bool:
    """True when *prefix* is a (non-strict) prefix of *packed*."""
    p_bits, p_len = prefix
    bits, length = packed
    return p_len <= length and bits >> (length - p_len) == p_bits


def packed_common_prefix(a: PackedLabel, b: PackedLabel) -> PackedLabel:
    """Packed form of :func:`common_prefix`."""
    a_bits, a_len = a
    b_bits, b_len = b
    if a_len > b_len:
        a_bits, b_bits = b_bits, a_bits
        a_len, b_len = b_len, a_len
    b_bits >>= b_len - a_len
    keep = a_len - (a_bits ^ b_bits).bit_length()
    return a_bits >> (a_len - keep), keep


def packed_split_dimension(packed: PackedLabel, dims: int) -> int:
    """Packed form of :func:`split_dimension`."""
    depth = packed[1] - dims - 1
    if depth < 0:
        raise InvalidLabelError("the virtual root does not split the space")
    return depth % dims


def packed_interleave(point: Sequence[float], depth: int) -> PackedLabel:
    """Packed form of :func:`interleave`: *depth* Morton bits of *point*.

    Each coordinate contributes its top ``ceil(depth / m)`` expansion
    bits, spread table-driven to stride ``m`` and OR-merged — no
    per-bit Python loop.
    """
    dims = len(point)
    _check_dims(dims)
    if depth < 0:
        raise InvalidPointError(f"negative bit depth {depth}")
    per_dim = -(-depth // dims)  # ceil division
    if per_dim > MAX_RESOLUTION_BITS:
        raise InvalidPointError(
            f"bit depth {per_dim} exceeds resolution {MAX_RESOLUTION_BITS}"
        )
    table = _spread_table(dims)
    drop = MAX_RESOLUTION_BITS - per_dim
    out = 0
    for position, value in enumerate(point):
        if not 0.0 <= value < 1.0:
            raise InvalidPointError(
                f"coordinate {value!r} outside [0, 1)"
            )
        out |= _spread(int(value * _SCALE) >> drop, dims, table) << (
            dims - 1 - position
        )
    return out >> (per_dim * dims - depth), depth


def packed_candidate(point: Sequence[float], max_depth: int) -> PackedLabel:
    """Packed form of :func:`candidate_string`: root label followed by
    ``max_depth`` interleaved bits."""
    dims = len(point)
    bits, depth = packed_interleave(point, max_depth)
    return (1 << depth) | bits, dims + 1 + depth


def _check_dims(dims: int) -> None:
    if dims < 1:
        raise InvalidLabelError(f"dimensionality must be >= 1, got {dims}")


def _check_label(label: str, dims: int) -> None:
    if not is_valid_label(label, dims):
        raise InvalidLabelError(
            f"{label!r} is not a valid label for {dims}-dimensional data"
        )
