"""Exception hierarchy for the repro library.

Every library-raised exception derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Errors are raised as
early as the offending input is detected (fail fast), per the library's
style guide.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidLabelError(ReproError, ValueError):
    """A kd-tree label string is malformed for the given dimensionality."""


class InvalidPointError(ReproError, ValueError):
    """A data key is outside the unit hypercube or has the wrong arity."""


class InvalidRegionError(ReproError, ValueError):
    """A query region is degenerate or outside the unit hypercube."""


class UnknownRuntimeError(ReproError, ValueError):
    """A runtime kind or overlay name is not in the runtime registry.

    Raised by :func:`repro.runtime.create_dht` and by
    :class:`~repro.common.config.IndexConfig` validation of the
    ``runtime=`` field.  Subclasses :class:`ValueError` because the
    offending name is a plain bad value, catchable without importing
    the library's hierarchy.
    """


class UnknownStoreError(ReproError, ValueError):
    """A record-store backend name is not in the store registry.

    Raised by :func:`repro.core.store.create_store` and by
    :class:`~repro.common.config.IndexConfig` validation of the
    ``store=`` field.  Subclasses :class:`ValueError` for the same
    reason as :class:`UnknownRuntimeError`: the offending name is a
    plain bad value.
    """


class UnknownDurabilityError(ReproError, ValueError):
    """A durable-backend name is not in the durability registry.

    Raised by :func:`repro.dht.durable.create_store_backend` and by
    :class:`~repro.runtime.RuntimeConfig` /
    :class:`~repro.common.config.IndexConfig` validation of the
    ``durability=`` field.  Subclasses :class:`ValueError` for the
    same reason as its sibling registry errors.
    """


class CorruptValueError(ReproError, RuntimeError):
    """A stored byte blob could not be decoded back into an object.

    Raised instead of a bare :mod:`pickle` exception when an
    :class:`~repro.dht.storage.EncodedValue` blob is truncated or
    otherwise mangled — a torn durable-log write, a corrupted handoff
    frame.  Catching :class:`ReproError` at the API boundary therefore
    covers data corruption too.
    """


class IndexCorruptionError(ReproError, RuntimeError):
    """The distributed index reached a state that violates an invariant.

    Seeing this exception means a bug in the index layer (or a lossy DHT
    used where a lossless one was required), never a bad user input.
    """


class DhtKeyError(ReproError, KeyError):
    """A DHT operation referenced a key that does not exist."""


class NodeUnreachableError(ReproError, RuntimeError):
    """A simulated peer was contacted after it left or failed."""
