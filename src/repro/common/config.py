"""Configuration dataclasses shared by indexes and experiments.

All tunables of the paper's Section 7 appear here with the paper's
values as defaults, so an experiment is fully described by one
:class:`IndexConfig` plus a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ReproError, UnknownRuntimeError


@dataclass(frozen=True, slots=True)
class IndexConfig:
    """Static parameters of an over-DHT index instance.

    Attributes:
        dims: data dimensionality ``m`` (the paper evaluates 2-D).
        max_depth: the maximum possible index-tree depth ``D`` known to
            every peer in advance (Section 5; the paper's evaluation
            uses ``D = 28``).
        split_threshold: ``theta_split`` — a leaf holding more records
            splits (threshold-based maintenance, Section 4.1).
        merge_threshold: ``theta_merge`` — a sibling leaf pair holding
            fewer records in total merges; must stay below
            ``split_threshold`` for split/merge consistency (the paper
            suggests ``theta_split / 2``).
        expected_load: ``epsilon`` — the expected per-bucket load of the
            data-aware splitting strategy (Section 4.2; paper uses 70).
        strategy: which maintenance strategy the index builds —
            ``"threshold"`` (Section 4.1, uses ``split_threshold`` /
            ``merge_threshold``) or ``"data-aware"`` (Section 4.2, uses
            ``expected_load``).  Passing an explicit ``SplitStrategy``
            to :class:`~repro.core.index.MLightIndex` overrides this.
        cache_capacity: size of the client-side leaf cache
            (:mod:`repro.core.cache`); ``0`` disables caching, keeping
            every lookup on the paper's cold binary-search path (the
            default, so metered costs match the paper's model unless a
            cache is asked for).
        default_lookahead: the lookahead ``h`` range queries use when
            the caller does not pass one — 1 is the basic Algorithm 2/3
            walk, powers of two >= 2 select the parallel variant with
            that many speculative subqueries per branch node (Fig. 7).
        execution: which execution plane the index's engines run on —
            ``"batched"`` (each recursion level's probes issued as one
            parallel DHT round) or ``"sequential"`` (one ``get`` per
            probe, the reference semantics).  Answers and lookup meters
            are identical either way.
        runtime: which runtime plane the experiment's DHT should be
            created on by :func:`repro.runtime.create_dht` —
            ``"sim"`` (the single-threaded simulated substrates, the
            reference semantics), ``"asyncio"`` (each peer an
            independent asyncio actor behind the framed wire protocol)
            or ``"tcp"`` (asyncio actors behind real loopback
            sockets).  Query answers and index-level cost meters are
            identical across runtimes; only clocks differ (simulated
            rounds vs wall-clock spans).
        store: which record-store backend leaf buckets keep their
            records in — a kind registered with
            :func:`repro.core.store.register_store`: ``"list"`` (the
            naive scan oracle), ``"columnar"`` (sorted struct-of-arrays
            snapshots, the default) or ``"numpy"`` (per-dimension
            ``float64`` ndarrays with vectorized mask-reduction
            matching; falls back to columnar with a warning when numpy
            is not installed).  Query answers are bit-identical across
            backends; only the constant factors differ.
        durability: durable per-peer storage for the DHT substrate — a
            backend kind registered with
            :func:`repro.dht.durable.register_store_backend`:
            ``"log"`` (checksummed append-only log framed with the
            service wire codec, compacted in place) or ``"file"``
            (one checksummed file per key).  ``None`` (the default)
            keeps peer stores purely in-memory, bit-identical to a
            build without the durability plane.  Required for
            crash-restart recovery (:meth:`repro.dht.api.Dht.restart`).
        tracing: when True the index builds a
            :class:`~repro.obs.trace.Tracer` and threads it through the
            engines, planes, DHT stack and simulated network, so every
            query emits a hierarchical span tree (query → round → DHT
            primitive → network round).  Off by default: the disabled
            path is a single ``is None`` check per operation, keeping
            metered and timed behaviour bit-identical to an untraced
            index.
        adaptive: an :class:`~repro.adaptive.AdaptiveConfig` selecting
            the adaptive read plane (online hotspot detection, read
            replication of hot leaf buckets, learned routing
            shortcuts; :mod:`repro.adaptive`), or ``None`` (the
            default) for no plane at all — with ``None`` the index is
            bit-identical, in answers and cost counters, to a build
            without the plane.
    """

    dims: int = 2
    max_depth: int = 28
    split_threshold: int = 100
    merge_threshold: int = 50
    expected_load: int = 70
    strategy: str = "threshold"
    cache_capacity: int = 0
    default_lookahead: int = 1
    execution: str = "batched"
    runtime: str = "sim"
    store: str = "columnar"
    durability: str | None = None
    tracing: bool = False
    adaptive: object | None = None

    STRATEGIES = ("threshold", "data-aware")
    EXECUTION_PLANES = ("batched", "sequential")
    RUNTIMES = ("sim", "asyncio", "tcp")

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise ReproError(f"dims must be >= 1, got {self.dims}")
        if self.max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.split_threshold < 1:
            raise ReproError("split_threshold must be >= 1")
        if not 0 <= self.merge_threshold < self.split_threshold:
            raise ReproError(
                "merge_threshold must satisfy 0 <= theta_merge < theta_split "
                f"(got {self.merge_threshold} vs {self.split_threshold})"
            )
        if self.expected_load < 1:
            raise ReproError("expected_load (epsilon) must be >= 1")
        if self.strategy not in self.STRATEGIES:
            raise ReproError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{self.STRATEGIES}"
            )
        if self.cache_capacity < 0:
            raise ReproError(
                "cache_capacity must be >= 0 (0 disables the cache), "
                f"got {self.cache_capacity}"
            )
        if self.default_lookahead < 1 or (
            self.default_lookahead & (self.default_lookahead - 1)
        ):
            raise ReproError(
                "default_lookahead must be a power of two >= 1 "
                "(1 disables speculative expansion), got "
                f"{self.default_lookahead}"
            )
        if self.execution not in self.EXECUTION_PLANES:
            raise ReproError(
                f"unknown execution plane {self.execution!r}; expected "
                f"one of {self.EXECUTION_PLANES}"
            )
        if self.runtime not in self.RUNTIMES:
            raise UnknownRuntimeError(
                f"unknown runtime {self.runtime!r}; expected one of "
                f"{self.RUNTIMES}"
            )
        # Validated against the live registry, not a frozen tuple, so a
        # backend added via register_store is immediately configurable.
        # Imported lazily: repro.common must stay importable below
        # repro.core in the layering.
        if self.adaptive is not None:
            # Same lazy-import pattern: repro.common stays at the
            # bottom of the layering.
            from repro.adaptive.config import AdaptiveConfig

            if not isinstance(self.adaptive, AdaptiveConfig):
                raise ReproError(
                    "adaptive must be an AdaptiveConfig or None, got "
                    f"{self.adaptive!r}"
                )
        from repro.core.store import store_backends

        if self.store not in store_backends():
            from repro.common.errors import UnknownStoreError

            raise UnknownStoreError(
                f"unknown store backend {self.store!r}; expected one "
                f"of {store_backends()}"
            )
        if self.durability is not None:
            from repro.dht.durable import store_backend_kinds

            if self.durability not in store_backend_kinds():
                from repro.common.errors import UnknownDurabilityError

                raise UnknownDurabilityError(
                    f"unknown durability {self.durability!r}; expected "
                    f"one of {store_backend_kinds()}"
                )

    def __repr__(self) -> str:
        """Every field, in declaration order, derived from the
        dataclass machinery — the one authoritative listing of the
        config surface (a field added above appears here, in
        :meth:`snapshot`-style docs and in ``repr`` output by
        construction, so the three can never drift apart)."""
        body = ", ".join(
            f"{spec.name}={getattr(self, spec.name)!r}"
            for spec in fields(self)
        )
        return f"{type(self).__name__}({body})"
