"""Configuration dataclasses shared by indexes and experiments.

All tunables of the paper's Section 7 appear here with the paper's
values as defaults, so an experiment is fully described by one
:class:`IndexConfig` plus a workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError


@dataclass(frozen=True, slots=True)
class IndexConfig:
    """Static parameters of an over-DHT index instance.

    Attributes:
        dims: data dimensionality ``m`` (the paper evaluates 2-D).
        max_depth: the maximum possible index-tree depth ``D`` known to
            every peer in advance (Section 5; the paper's evaluation
            uses ``D = 28``).
        split_threshold: ``theta_split`` — a leaf holding more records
            splits (threshold-based maintenance, Section 4.1).
        merge_threshold: ``theta_merge`` — a sibling leaf pair holding
            fewer records in total merges; must stay below
            ``split_threshold`` for split/merge consistency (the paper
            suggests ``theta_split / 2``).
        expected_load: ``epsilon`` — the expected per-bucket load of the
            data-aware splitting strategy (Section 4.2; paper uses 70).
    """

    dims: int = 2
    max_depth: int = 28
    split_threshold: int = 100
    merge_threshold: int = 50
    expected_load: int = 70

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise ReproError(f"dims must be >= 1, got {self.dims}")
        if self.max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.split_threshold < 1:
            raise ReproError("split_threshold must be >= 1")
        if not 0 <= self.merge_threshold < self.split_threshold:
            raise ReproError(
                "merge_threshold must satisfy 0 <= theta_merge < theta_split "
                f"(got {self.merge_threshold} vs {self.split_threshold})"
            )
        if self.expected_load < 1:
            raise ReproError("expected_load (epsilon) must be >= 1")
