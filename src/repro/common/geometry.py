"""Multi-dimensional geometry for cells and query regions.

Two kinds of axis-aligned boxes appear in the system and they have
different boundary semantics:

* **Cells** — the regions of kd-tree labels.  Cells are half-open,
  ``[low, high)`` in every dimension, so the cells at any tree level
  tile the unit cube with every data key in *exactly one* cell.  Data
  keys therefore must lie in ``[0, 1)`` per dimension.
* **Queries** — user-supplied range-query rectangles.  Queries are
  closed, ``[low, high]``, matching the paper's "rated above 4 and
  published during 2007 and 2008" reading.

Both are represented by the same frozen :class:`Region`; the functions
below make the mixed-semantics predicates (overlap, coverage) explicit
so no call site re-derives boundary logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from functools import lru_cache

from repro.common.errors import (
    InvalidLabelError,
    InvalidPointError,
    InvalidRegionError,
)

#: A data key: one float in [0, 1) per dimension.
Point = tuple[float, ...]


def check_point(point: Sequence[float], dims: int) -> Point:
    """Validate *point* and return it as a tuple.

    Raises :class:`InvalidPointError` for wrong arity or out-of-range
    coordinates.
    """
    if len(point) != dims:
        raise InvalidPointError(
            f"expected {dims} coordinates, got {len(point)}"
        )
    for value in point:
        if not 0.0 <= value < 1.0:
            raise InvalidPointError(
                f"coordinate {value!r} outside [0, 1); normalise the "
                "dataset first (see repro.datasets)"
            )
    return tuple(point)


@dataclass(frozen=True, slots=True)
class Region:
    """An axis-aligned box given by per-dimension ``lows`` and ``highs``.

    Immutable and hashable, so regions can key dictionaries and be used
    in sets during query decomposition.
    """

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise InvalidRegionError(
                f"lows/highs arity mismatch: {self.lows} vs {self.highs}"
            )
        if not self.lows:
            raise InvalidRegionError("regions must have at least 1 dimension")
        for low, high in zip(self.lows, self.highs):
            if not (0.0 <= low <= high <= 1.0):
                raise InvalidRegionError(
                    f"invalid extent [{low}, {high}] (need 0 <= low <= "
                    "high <= 1)"
                )

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    def volume(self) -> float:
        """Product of per-dimension extents."""
        result = 1.0
        for low, high in zip(self.lows, self.highs):
            result *= high - low
        return result

    def side(self, dim: int) -> float:
        """Extent along dimension *dim*."""
        return self.highs[dim] - self.lows[dim]

    def center(self) -> Point:
        """Geometric centre of the region."""
        return tuple(
            (low + high) / 2.0 for low, high in zip(self.lows, self.highs)
        )

    def corner_low(self) -> Point:
        """The all-lows corner (always inside a half-open cell)."""
        return self.lows

    # ------------------------------------------------------------------
    # Cell semantics: half-open [low, high) boxes.
    # ------------------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        """Half-open containment: ``low <= p < high`` per dimension.

        Raises :class:`InvalidPointError` on arity mismatch — ``zip``
        would otherwise silently truncate, letting a 1-D point "match"
        a 2-D region.
        """
        if len(point) != len(self.lows):
            raise InvalidPointError(
                f"point {tuple(point)!r} has {len(point)} coordinates, "
                f"region has {len(self.lows)} dimensions"
            )
        return all(
            low <= value < high
            for value, low, high in zip(point, self.lows, self.highs)
        )

    def split(self, dim: int) -> tuple["Region", "Region"]:
        """Halve the region along *dim*; return (lower, upper) halves.

        Cell bounds are dyadic rationals so the midpoint is exact in
        IEEE-754 arithmetic.
        """
        mid = (self.lows[dim] + self.highs[dim]) / 2.0
        lower_highs = self.highs[:dim] + (mid,) + self.highs[dim + 1:]
        upper_lows = self.lows[:dim] + (mid,) + self.lows[dim + 1:]
        return (
            Region(self.lows, lower_highs),
            Region(upper_lows, self.highs),
        )

    def contains_region(self, other: "Region") -> bool:
        """True when *other* (any semantics) nests inside this box."""
        return all(
            s_low <= o_low and o_high <= s_high
            for s_low, o_low, o_high, s_high in zip(
                self.lows, other.lows, other.highs, self.highs
            )
        )

    # ------------------------------------------------------------------
    # Query semantics: closed [low, high] boxes.
    # ------------------------------------------------------------------

    def contains_point_closed(self, point: Sequence[float]) -> bool:
        """Closed containment: ``low <= p <= high`` per dimension.

        Raises :class:`InvalidPointError` on arity mismatch (same
        guard as :meth:`contains_point`).
        """
        if len(point) != len(self.lows):
            raise InvalidPointError(
                f"point {tuple(point)!r} has {len(point)} coordinates, "
                f"region has {len(self.lows)} dimensions"
            )
        return all(
            low <= value <= high
            for value, low, high in zip(point, self.lows, self.highs)
        )


def unit_region(dims: int) -> Region:
    """The whole data space ``[0, 1]^m``."""
    if dims < 1:
        raise InvalidRegionError(f"dimensionality must be >= 1, got {dims}")
    return Region((0.0,) * dims, (1.0,) * dims)


#: What query entry points accept wherever a region is expected: a
#: ready :class:`Region`, or a ``(lows, highs)`` pair of coordinate
#: sequences.
RegionLike = Region | tuple[Sequence[float], Sequence[float]]


def as_region(value: RegionLike) -> Region:
    """Coerce *value* to a :class:`Region`.

    Accepts a ``Region`` unchanged, or a 2-element ``(lows, highs)``
    pair of per-dimension coordinate sequences — the normalisation used
    by every query entry point (``range_query``, aggregation), so call
    sites can pass plain tuples without importing geometry.
    """
    if isinstance(value, Region):
        return value
    if (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and isinstance(value[0], Sequence)
        and isinstance(value[1], Sequence)
        and not isinstance(value[0], str)
        and not isinstance(value[1], str)
    ):
        return Region(tuple(value[0]), tuple(value[1]))
    raise InvalidRegionError(
        f"cannot interpret {value!r} as a region; pass a Region or a "
        "(lows, highs) pair of coordinate sequences"
    )


def query_overlaps_cell(query: Region, cell: Region) -> bool:
    """True when a closed *query* can contain a data key of the
    half-open *cell*.

    Per dimension, a point ``p`` with ``cell.low <= p < cell.high`` and
    ``query.low <= p <= query.high`` exists iff
    ``query.high >= cell.low`` and ``query.low < cell.high``.  The
    asymmetry matters on shared boundaries: a query ending exactly at a
    cell's low edge still reaches that cell's records, while a query
    starting at a cell's high edge does not.
    """
    return all(
        q_high >= c_low and q_low < c_high
        for q_low, q_high, c_low, c_high in zip(
            query.lows, query.highs, cell.lows, cell.highs
        )
    )


def query_covers_cell(query: Region, cell: Region) -> bool:
    """True when every data key of half-open *cell* matches *query*."""
    return all(
        q_low <= c_low and c_high <= q_high
        for q_low, q_high, c_low, c_high in zip(
            query.lows, query.highs, cell.lows, cell.highs
        )
    )


def cell_resolves_query(cell: Region, query: Region) -> bool:
    """True when *cell* alone holds every record matching *query*.

    Besides nesting, the query's upper face must be strictly inside the
    cell (or on the global boundary), because records sitting exactly on
    a shared upper face belong to the *adjacent* cell.
    """
    for c_low, q_low, q_high, c_high in zip(
        cell.lows, query.lows, query.highs, cell.highs
    ):
        if q_low < c_low:
            return False
        if q_high > c_high:
            return False
        if q_high == c_high and c_high != 1.0:
            return False
    return True


def clip(query: Region, cell: Region) -> Region | None:
    """Intersection of *query* and *cell*, or None when they do not
    overlap (in the mixed closed/half-open sense)."""
    if not query_overlaps_cell(query, cell):
        return None
    lows = tuple(max(q, c) for q, c in zip(query.lows, cell.lows))
    highs = tuple(min(q, c) for q, c in zip(query.highs, cell.highs))
    return Region(lows, highs)


def region_of_label(label: str, dims: int) -> Region:
    """Return the half-open cell of kd-tree *label*.

    Walks the edge bits below the ordinary root, halving dimension
    ``depth % m`` at each step (the alternating splits of Fig. 1a).  The
    virtual root and the ordinary root both cover the whole space.

    Derivations are memoized (regions are frozen, so sharing is safe):
    repeated geometry of the same label — every ``LeafBucket.region``
    access, every range-query frontier expansion — costs one cache hit,
    and a *new* label costs one :meth:`Region.split` off its cached
    parent instead of a from-scratch root walk.
    """
    # Import here to avoid a cycle: labels.py is independent of geometry.
    from repro.common import labels as _labels

    if not _labels.is_valid_label(label, dims):
        raise InvalidLabelError(
            f"{label!r} is not a valid label for {dims}-dimensional data"
        )
    return _cell_of_bits(label[dims + 1:], dims)


def region_of_bits(bits: str, dims: int) -> Region:
    """Return the cell reached from the whole space by *bits*.

    Bit ``k`` (0-based) halves dimension ``k % m``: ``'0'`` keeps the
    lower half, ``'1'`` the upper half.  Used both for kd-tree labels
    (with the root prefix stripped) and for z-order prefixes in the
    PHT/DST baselines — the two trees share one space partition.
    Memoized like :func:`region_of_label`.
    """
    for bit in bits:
        if bit not in "01":
            raise InvalidLabelError(f"invalid bit {bit!r} in {bits!r}")
    return _cell_of_bits(bits, dims)


@lru_cache(maxsize=1 << 16)
def _cell_of_bits(bits: str, dims: int) -> Region:
    """Memoized cell derivation; recursion makes every prefix's cell a
    cache entry, so a child is one split off its cached parent."""
    if not bits:
        return unit_region(dims)
    lower, upper = _cell_of_bits(bits[:-1], dims).split((len(bits) - 1) % dims)
    return upper if bits[-1] == "1" else lower
