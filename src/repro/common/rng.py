"""Deterministic randomness helpers.

Every stochastic component of the library (dataset generators, workload
generators, churn schedules) takes an explicit seed and builds a private
``random.Random`` from it, so experiments are reproducible bit-for-bit
and components never interfere through shared global RNG state.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | str) -> random.Random:
    """Return a private ``random.Random`` seeded deterministically.

    String seeds are hashed with SHA-256 (Python's ``hash()`` is
    per-process randomised and must not leak into experiments).
    """
    if isinstance(seed, str):
        seed = derive_seed(seed)
    return random.Random(seed)


def derive_seed(*parts: int | str) -> int:
    """Derive a stable 64-bit sub-seed from a tuple of parts.

    Use this to give each component of a larger experiment its own
    stream, e.g. ``derive_seed(base_seed, "queries")``.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")
