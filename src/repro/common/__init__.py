"""Shared primitives used by every subsystem.

This package holds the label algebra of the space kd-tree, the
multi-dimensional geometry helpers, deterministic randomness, and the
configuration dataclasses.  Nothing in here knows about DHTs or indexes.
"""

from repro.common.errors import (
    ReproError,
    InvalidLabelError,
    InvalidPointError,
    InvalidRegionError,
    IndexCorruptionError,
    DhtKeyError,
)
from repro.common.labels import (
    virtual_root,
    root_label,
    is_valid_label,
    label_depth,
    parent,
    children,
    sibling,
    ancestors,
    branch_nodes_between,
    split_dimension,
    interleave,
    candidate_string,
    PackedLabel,
    pack_label,
    unpack_label,
    packed_candidate,
    packed_interleave,
)
from repro.common.geometry import (
    Point,
    Region,
    unit_region,
    region_of_label,
    region_of_bits,
)

__all__ = [
    "ReproError",
    "InvalidLabelError",
    "InvalidPointError",
    "InvalidRegionError",
    "IndexCorruptionError",
    "DhtKeyError",
    "virtual_root",
    "root_label",
    "is_valid_label",
    "label_depth",
    "parent",
    "children",
    "sibling",
    "ancestors",
    "branch_nodes_between",
    "split_dimension",
    "interleave",
    "candidate_string",
    "PackedLabel",
    "pack_label",
    "unpack_label",
    "packed_candidate",
    "packed_interleave",
    "Point",
    "Region",
    "unit_region",
    "region_of_label",
    "region_of_bits",
]
