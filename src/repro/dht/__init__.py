"""DHT substrates.

Everything above this package consumes only the generic
``put/get/remove/lookup`` facade of :class:`repro.dht.api.Dht` — the
defining constraint of the over-DHT indexing paradigm.  Three
interchangeable substrates are provided:

* :class:`repro.dht.localhash.LocalDht` — an O(1) consistent-hashing
  oracle.  It meters exactly the same index-level costs as the routed
  overlays (the paper's metrics count DHT operations, not hops), so the
  figure reproductions use it for speed.
* :class:`repro.dht.chord.ChordDht` — a full Chord ring with finger
  tables, successor lists, stabilization and churn.
* :class:`repro.dht.kademlia.KademliaDht` — an XOR-metric overlay with
  k-buckets and iterative lookup, demonstrating substrate independence.
* :class:`repro.dht.pastry.PastryDht` — prefix routing with leaf sets,
  the closest cousin of Bamboo (the paper's actual substrate).

Two stackable wrappers decorate any substrate without the index layers
noticing: :class:`repro.dht.faults.FaultyDht` injects reproducible
faults from a seeded :class:`repro.dht.faults.FaultPlan`, and
:class:`repro.dht.retry.RetryingDht` retries unreachable primitives
with exponential backoff under an attempt/deadline budget.
"""

from repro.dht.api import Dht, DhtStats
from repro.dht.hashing import key_digest, ring_between
from repro.dht.localhash import LocalDht
from repro.dht.chord import ChordDht
from repro.dht.faults import FaultInjectedError, FaultPlan, FaultyDht
from repro.dht.kademlia import KademliaDht
from repro.dht.pastry import PastryDht
from repro.dht.retry import RetryingDht

__all__ = [
    "Dht",
    "DhtStats",
    "key_digest",
    "ring_between",
    "LocalDht",
    "ChordDht",
    "FaultInjectedError",
    "FaultPlan",
    "FaultyDht",
    "KademliaDht",
    "PastryDht",
    "RetryingDht",
]
