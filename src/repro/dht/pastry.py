"""A Pastry-style DHT over the simulated network.

Pastry (Rowstron & Druschel, Middleware'01) routes by prefix matching
on hexadecimal digits of the 160-bit identifier, keeping per-node a
*routing table* (one row per shared-prefix length, one column per next
digit) and a *leaf set* (the numerically closest nodes on either side).
Ownership follows the numerically closest identifier, which the leaf
set resolves in the final hop.

Bamboo — the substrate of the paper's evaluation — is a Pastry variant
hardened for churn, so this overlay is the closest cousin of the
paper's actual deployment.  It implements the third point of the
substrate-independence argument: m-LIGHT's costs are identical over
ring, XOR and prefix-routing DHTs.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.api import Dht, data_wire_size, request_wire_size
from repro.dht.batching import NetworkRoundBatchMixin
from repro.dht.durable import (
    backend_path,
    create_store_backend,
    resolve_data_dir,
)
from repro.dht.hashing import ID_BITS, key_digest, node_id_from_name
from repro.dht.storage import PeerStore
from repro.net.message import Message
from repro.net.simnet import RpcError, SimNetwork

#: Digit width in bits (b = 4: hexadecimal digits, as in the paper).
DIGIT_BITS = 4

#: Number of digits in an identifier.
N_DIGITS = ID_BITS // DIGIT_BITS

#: Leaf-set size per side.
LEAF_SET_SIDE = 4


def digits_of(ident: int) -> tuple[int, ...]:
    """The identifier as big-endian base-16 digits."""
    return tuple(
        ident >> (ID_BITS - DIGIT_BITS * (position + 1)) & (2**DIGIT_BITS - 1)
        for position in range(N_DIGITS)
    )


def shared_prefix_length(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Number of leading digits *a* and *b* share."""
    for position, (da, db) in enumerate(zip(a, b)):
        if da != db:
            return position
    return len(a)


def numeric_distance(a: int, b: int) -> int:
    """Plain absolute distance on the identifier line (Pastry's leaf
    sets use numeric closeness, not ring arcs)."""
    return abs(a - b)


class PastryNode:
    """One Pastry peer: routing table, leaf set, storage."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        store: PeerStore | None = None,
    ) -> None:
        self.name = name
        self.ident = node_id_from_name(name)
        self.digits = digits_of(self.ident)
        self.network = network
        self.store = store if store is not None else PeerStore()
        # routing_table[row][column] -> (ident, name) | None
        self.routing_table: list[list[tuple[int, str] | None]] = [
            [None] * (2**DIGIT_BITS) for _ in range(N_DIGITS)
        ]
        self.leaf_set: list[tuple[int, str]] = []
        network.register(name, self)

    # ------------------------------------------------------------------
    # State maintenance
    # ------------------------------------------------------------------

    def learn(self, ident: int, name: str) -> None:
        """Insert a contact into the routing table and leaf set."""
        if ident == self.ident:
            return
        row = shared_prefix_length(self.digits, digits_of(ident))
        if row < N_DIGITS:
            column = digits_of(ident)[row]
            slot = self.routing_table[row][column]
            if slot is None or not self.network.is_registered(slot[1]):
                self.routing_table[row][column] = (ident, name)
        entry = (ident, name)
        if entry not in self.leaf_set:
            self.leaf_set.append(entry)
            self.leaf_set.sort(
                key=lambda pair: numeric_distance(pair[0], self.ident)
            )
            del self.leaf_set[2 * LEAF_SET_SIDE:]

    def forget(self, name: str) -> None:
        """Drop a dead contact everywhere."""
        self.leaf_set = [pair for pair in self.leaf_set if pair[1] != name]
        for row in self.routing_table:
            for column, slot in enumerate(row):
                if slot is not None and slot[1] == name:
                    row[column] = None

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------

    def handle_rpc(self, message: Message) -> Any:
        args, kwargs = message.payload
        method = getattr(self, "rpc_" + message.msg_type, None)
        if method is None:
            raise RpcError(f"unknown RPC {message.msg_type!r}")
        return method(*args, **kwargs)

    def rpc_next_hop(self, ident: int) -> tuple[int, str]:
        """Pastry's routing step, all three rules of the paper:

        1. target within the leaf-set range -> deliver to the
           numerically closest leaf-set member (the leaf set is a
           contiguous identifier neighbourhood, so that member is the
           global owner);
        2. otherwise forward along the routing-table entry with one
           more shared digit;
        3. otherwise (rare case) forward to any known node that is
           numerically closer with a shared prefix at least as long.
        """
        live_leaves = [
            pair
            for pair in self.leaf_set
            if self.network.is_registered(pair[1])
        ]
        if live_leaves:
            span = [pair[0] for pair in live_leaves] + [self.ident]
            if min(span) <= ident <= max(span):
                return min(
                    live_leaves + [(self.ident, self.name)],
                    key=lambda pair: numeric_distance(pair[0], ident),
                )
        target_digits = digits_of(ident)
        row = shared_prefix_length(self.digits, target_digits)
        if row < N_DIGITS:
            slot = self.routing_table[row][target_digits[row]]
            if slot is not None and self.network.is_registered(slot[1]):
                return slot
        # Fall back to a numerically closer contact whose shared prefix
        # is at least as long as ours — the Pastry paper's "rare case"
        # rule.  Without the prefix condition two nodes can ping-pong:
        # one prefix-hops away (longer prefix, numerically farther) and
        # the other hops numerically back.
        best = (self.ident, self.name)
        best_distance = numeric_distance(self.ident, ident)
        for contact_ident, contact_name in self._all_contacts():
            if not self.network.is_registered(contact_name):
                continue
            if (
                shared_prefix_length(digits_of(contact_ident), target_digits)
                < row
            ):
                continue
            distance = numeric_distance(contact_ident, ident)
            if distance < best_distance:
                best = (contact_ident, contact_name)
                best_distance = distance
        return best

    def _all_contacts(self) -> Iterator[tuple[int, str]]:
        yield from self.leaf_set
        for row in self.routing_table:
            for slot in row:
                if slot is not None:
                    yield slot

    def rpc_get_state(self) -> list[tuple[int, str]]:
        """Contacts shared with a joining node."""
        return [(self.ident, self.name)] + list(self._all_contacts())

    def rpc_learn_from(self, contacts: list[tuple[int, str]]) -> None:
        for ident, name in contacts:
            self.learn(ident, name)

    def rpc_store_get(self, key: str) -> Any | None:
        return self.store.get(key)

    def rpc_store_put(self, key: str, value: Any) -> None:
        self.store.put(key, value)

    def rpc_store_remove(self, key: str) -> Any:
        return self.store.remove(key)

    def rpc_store_contains(self, key: str) -> bool:
        return key in self.store

    def rpc_handoff(self, joiner_ident: int, joiner_name: str) -> list:
        """Give a newly joined neighbour the keys now closer to it."""
        return self.store.pop_range(
            lambda digest: numeric_distance(digest, joiner_ident)
            < numeric_distance(digest, self.ident)
        )


class PastryDht(NetworkRoundBatchMixin, Dht):
    """The :class:`~repro.dht.api.Dht` facade over a Pastry overlay."""

    def __init__(
        self,
        network: SimNetwork | None = None,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> None:
        super().__init__()
        self.network = network if network is not None else SimNetwork()
        self.encoded_storage = encoded_storage
        self.durability = durability
        self.data_dir = (
            resolve_data_dir(data_dir, "pastry")
            if durability is not None
            else None
        )
        self._nodes: dict[str, PastryNode] = {}

    def _new_store(self, name: str) -> PeerStore:
        backend = None
        if self.durability is not None:
            backend = create_store_backend(
                self.durability, backend_path(self.data_dir, name)
            )
        return PeerStore(encoded=self.encoded_storage, backend=backend)

    @classmethod
    def build(
        cls,
        n_peers: int,
        network: SimNetwork | None = None,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> "PastryDht":
        """Create *n_peers* with fully populated state."""
        if n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {n_peers}")
        dht = cls(network, encoded_storage, durability, data_dir)
        for index in range(n_peers):
            name = f"pastry-{index:04d}"
            dht._nodes[name] = PastryNode(
                name, dht.network, store=dht._new_store(name)
            )
        everyone = [(node.ident, node.name) for node in dht._nodes.values()]
        for node in dht._nodes.values():
            for ident, name in everyone:
                node.learn(ident, name)
        return dht

    def join(self, name: str, gateway: str | None = None) -> None:
        """Join protocol: route to the closest node, copy state, take
        over the key range, and announce the newcomer."""
        if name in self._nodes:
            raise ReproError(f"peer {name!r} already joined")
        node = PastryNode(name, self.network, store=self._new_store(name))
        self._nodes[name] = node
        others = [n for n in self._nodes if n != name]
        if not others:
            return
        gateway_name = gateway if gateway else min(others)
        gateway_node = self._nodes[gateway_name]
        node.learn(gateway_node.ident, gateway_node.name)
        closest_name = self._route_from(gateway_node, node.ident)
        # Copy state from the nodes along the way (simplified: gateway
        # plus the closest node, which covers rows 0 and the leaf set).
        for source in {gateway_name, closest_name}:
            contacts = self.network.rpc(name, source, "get_state")
            for ident, contact in contacts:
                node.learn(ident, contact)
        entries = self.network.rpc(
            name, closest_name, "handoff", node.ident, node.name
        )
        for key, value in entries:
            node.store.put(key, value)
        # Announce to everyone in the new node's state.
        announcement = [(node.ident, node.name)]
        for ident, contact in list(node._all_contacts()):
            try:
                self.network.rpc(name, contact, "learn_from", announcement)
            except RpcError:
                continue

    def leave(self, name: str) -> None:
        """Graceful departure: hand each stored key to the remaining
        numerically closest node, then go.

        Handoff moves raw store entries (blobs on an encoded overlay)
        and wipes the peer's durable state so handed-off keys cannot
        resurrect through a later :meth:`restart`."""
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        others = [n for n in self._nodes.values() if n.name != name]
        if others:
            for key, value in node.store.pop_range(lambda digest: True):
                digest = key_digest(key)
                target = min(
                    others,
                    key=lambda n: numeric_distance(n.ident, digest),
                )
                self.network.rpc(name, target.name, "store_put", key, value)
        node.store.wipe_backend()
        self.network.unregister(name)
        del self._nodes[name]
        for survivor in self._nodes.values():
            survivor.forget(name)

    def stabilize_all(self, rounds: int = 1) -> None:
        """Periodic maintenance, run to convergence.

        Equivalent to the steady state of Pastry's upkeep: dead
        contacts are purged, leaf sets and routing tables are refilled
        with live nodes, and each key migrates to the node now
        numerically closest to it (what neighbouring leaf sets
        exchange when membership changes).  Done from global knowledge
        so churn tests converge quickly, the same shortcut
        :meth:`build` takes.
        """
        for _ in range(rounds):
            live = set(self._nodes)
            everyone = [
                (node.ident, node.name) for node in self._nodes.values()
            ]
            for node in self._nodes.values():
                dead = {
                    contact
                    for _, contact in node._all_contacts()
                    if contact not in live
                }
                for contact in dead:
                    node.forget(contact)
                for ident, contact in everyone:
                    node.learn(ident, contact)
            for node in list(self._nodes.values()):
                moved = node.store.pop_range(
                    lambda digest, me=node: min(
                        self._nodes.values(),
                        key=lambda n: numeric_distance(n.ident, digest),
                    )
                    is not me
                )
                for key, value in moved:
                    digest = key_digest(key)
                    owner = min(
                        self._nodes.values(),
                        key=lambda n: numeric_distance(n.ident, digest),
                    )
                    self.network.rpc(
                        node.name, owner.name, "store_put", key, value
                    )

    def fail(self, name: str) -> None:
        """Abrupt crash; survivors lazily forget the dead contact.
        Durable state stays on disk for :meth:`restart`."""
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        node.store.close_backend()
        self.network.unregister(name)
        del self._nodes[name]
        for survivor in self._nodes.values():
            survivor.forget(name)

    def _do_restart(self, name: str) -> None:
        """Recover a crashed peer: replay its durable log, rejoin via
        the join protocol's state copy and handoff, then re-home keys
        whose ownership moved while the peer was down."""
        if name in self._nodes:
            raise ReproError(f"peer {name!r} is already live")
        if self.durability is None:
            raise ReproError(
                "restart requires a durable backend; build the overlay "
                "with durability=..."
            )
        backend = create_store_backend(
            self.durability, backend_path(self.data_dir, name)
        )
        store = PeerStore.recover(backend, encoded=self.encoded_storage)
        node = PastryNode(name, self.network, store=store)
        self._nodes[name] = node
        stats = self.stats
        stats.restarts += 1
        stats.restart_replayed += len(store)
        others = [n for n in self._nodes if n != name]
        if not others:
            return
        gateway_node = self._nodes[min(others)]
        node.learn(gateway_node.ident, gateway_node.name)
        closest_name = self._route_from(gateway_node, node.ident)
        for source in {gateway_node.name, closest_name}:
            contacts = self.network.rpc(name, source, "get_state")
            for ident, contact in contacts:
                node.learn(ident, contact)
        # Reconcile: while the peer was down, writes in its range landed
        # on whichever neighbour was then numerically closest — on
        # either side of its identifier — so pull the handoff from
        # every leaf-set neighbour, not just the single closest node.
        sources = {contact for _, contact in node.leaf_set}
        sources.discard(name)
        for source in sorted(sources):
            entries = self.network.rpc(
                name, source, "handoff", node.ident, node.name
            )
            for key, value in entries:
                node.store.put(key, value)
                stats.restart_reconciled += 1
                stats.restart_repair_bytes += request_wire_size(key, value)
        announcement = [(node.ident, node.name)]
        for ident, contact in list(node._all_contacts()):
            try:
                self.network.rpc(name, contact, "learn_from", announcement)
            except RpcError:
                continue
        # Re-home: keys whose ownership moved while this peer was down.
        moved = node.store.pop_range(
            lambda digest: min(
                self._nodes.values(),
                key=lambda n: numeric_distance(n.ident, digest),
            )
            is not node
        )
        for key, value in moved:
            digest = key_digest(key)
            owner = min(
                self._nodes.values(),
                key=lambda n: numeric_distance(n.ident, digest),
            )
            self.network.rpc(
                name, owner.name, "store_put", key, value,
                size_bytes=request_wire_size(key, value),
                payload_bytes=data_wire_size(value),
            )
            stats.restart_rehomed += 1
            stats.restart_repair_bytes += request_wire_size(key, value)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _gateway(self) -> PastryNode:
        if not self._nodes:
            raise ReproError("the overlay has no peers")
        return self._nodes[min(self._nodes)]

    def _route_from(self, start: PastryNode, ident: int) -> str:
        """Iterative prefix routing; meters overlay hops.

        Each hop strictly reduces numeric distance to the target (or
        lengthens the shared prefix), so this terminates at the
        numerically closest node.
        """
        current = (start.ident, start.name)
        for _ in range(N_DIGITS + 2 * LEAF_SET_SIDE + 8):
            nxt = self.network.rpc(
                self._gateway().name, current[1], "next_hop", ident
            )
            if nxt[1] == current[1]:
                return current[1]
            self.stats.hops += 1
            current = nxt
        raise ReproError(f"Pastry routing for {ident:x} did not converge")

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> str:
        digest = key_digest(key)
        return min(
            self._nodes.values(),
            key=lambda node: numeric_distance(node.ident, digest),
        ).name

    def peers(self) -> list[str]:
        return sorted(self._nodes)

    def items(self) -> Iterator[tuple[str, Any]]:
        for node in self._nodes.values():
            yield from node.store.items()

    def key_count(self) -> int:
        """Stored keys via the non-decoding ``keys()`` walk."""
        return sum(len(node.store) for node in self._nodes.values())

    def node(self, name: str) -> PastryNode:
        """Direct peer access (tests only)."""
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    def _owner(self, key: str) -> PastryNode:
        owner_name = self._route_from(self._gateway(), key_digest(key))
        return self._nodes[owner_name]

    def _do_lookup(self, key: str) -> str:
        return self._owner(key).name

    def _do_get(self, key: str) -> Any | None:
        owner = self._owner(key)
        return self.network.rpc(
            self._gateway().name, owner.name, "store_get", key,
            size_bytes=request_wire_size(key),
        )

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        # One point-to-point store read, no prefix routing.
        return self.network.rpc(
            self._gateway().name, peer, "store_get", key,
            size_bytes=request_wire_size(key),
        )

    def _do_put(self, key: str, value: Any) -> None:
        owner = self._owner(key)
        self.network.rpc(
            self._gateway().name, owner.name, "store_put", key, value,
            size_bytes=request_wire_size(key, value),
            payload_bytes=data_wire_size(value),
        )

    def _do_remove(self, key: str) -> Any:
        owner = self._owner(key)
        if not self.network.rpc(
            self._gateway().name, owner.name, "store_contains", key,
            size_bytes=request_wire_size(key),
        ):
            raise DhtKeyError(f"key {key!r} does not exist")
        return self.network.rpc(
            self._gateway().name, owner.name, "store_remove", key,
            size_bytes=request_wire_size(key),
        )

    def rewrite_local(self, key: str, value: Any) -> None:
        """Zero-cost in-place rewrite by the peer holding the key (no
        routing; see the over-DHT cost model in repro.dht.api)."""
        for node in self._nodes.values():
            if key in node.store:
                node.store.put(key, value)
                return
        raise DhtKeyError(
            f"rewrite_local of absent key {key!r}; a routed put is "
            "required to create it"
        )

    def _do_contains(self, key: str) -> bool:
        owner = self._owner(key)
        return self.network.rpc(
            self._gateway().name, owner.name, "store_contains", key,
            size_bytes=request_wire_size(key),
        )
