"""A Chord DHT over the simulated network.

Implements the protocol of Stoica et al. (SIGCOMM'01): a 160-bit
identifier ring, successor ownership, finger tables for O(log N)
routing, successor lists for fault tolerance, and the periodic
``stabilize`` / ``fix_fingers`` / ``check_predecessor`` loop.  Key
handoff moves stored objects on graceful join/leave, so the index
layers above survive membership changes.

Two construction modes:

* :meth:`ChordDht.build` wires a perfect ring directly — the right
  choice for experiments where the overlay is only a substrate.
* :meth:`ChordDht.join` runs the real join protocol; tests drive
  :meth:`ChordDht.stabilize_all` to convergence afterwards.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Any

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.api import Dht, data_wire_size, request_wire_size
from repro.dht.batching import NetworkRoundBatchMixin
from repro.dht.durable import (
    backend_path,
    create_store_backend,
    resolve_data_dir,
)
from repro.dht.hashing import (
    ID_BITS,
    ID_SPACE,
    key_digest,
    node_id_from_name,
    ring_between,
    ring_between_right_inclusive,
)
from repro.dht.storage import PeerStore
from repro.net.message import Message
from repro.net.simnet import RpcError, SimNetwork

#: Entries kept in each node's successor list (Bamboo uses a leaf set
#: of comparable size).
SUCCESSOR_LIST_LEN = 4


class _NodeRef:
    """(identifier, address) pair — what Chord nodes gossip about."""

    __slots__ = ("ident", "name")

    def __init__(self, ident: int, name: str) -> None:
        self.ident = ident
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NodeRef) and other.ident == self.ident

    def __hash__(self) -> int:
        return hash(self.ident)

    def __repr__(self) -> str:
        return f"_NodeRef({self.name})"


class ChordNode:
    """One Chord peer: routing state, storage, and RPC handlers."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        encoded: bool = False,
        store: PeerStore | None = None,
    ) -> None:
        self.name = name
        self.ident = node_id_from_name(name)
        self.ref = _NodeRef(self.ident, name)
        self.network = network
        self.store = store if store is not None else PeerStore(encoded=encoded)
        self.successors: list[_NodeRef] = [self.ref]
        self.predecessor: _NodeRef | None = None
        self.fingers: list[_NodeRef | None] = [None] * ID_BITS
        self._next_finger = 0
        network.register(name, self)

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------

    def handle_rpc(self, message: Message) -> Any:
        args, kwargs = message.payload
        method = getattr(self, "rpc_" + message.msg_type, None)
        if method is None:
            raise RpcError(f"unknown RPC {message.msg_type!r}")
        return method(*args, **kwargs)

    def _call(self, target: _NodeRef, method: str, *args: Any, **kwargs: Any) -> Any:
        return self.network.rpc(self.name, target.name, method, *args, **kwargs)

    # ------------------------------------------------------------------
    # Read-only RPCs
    # ------------------------------------------------------------------

    def rpc_ping(self) -> bool:
        return True

    def rpc_get_successor(self) -> _NodeRef:
        # Nodes ping successor-list entries and skip dead ones, so the
        # returned successor is always live (or self).
        return self._first_live_successor()

    def rpc_get_successor_list(self) -> list[_NodeRef]:
        return list(self.successors)

    def rpc_get_predecessor(self) -> _NodeRef | None:
        return self.predecessor

    def rpc_closest_preceding(
        self, ident: int, avoid: tuple[str, ...] = ()
    ) -> _NodeRef:
        """The closest known live node strictly preceding *ident*
        (finger table first, then successor list), per the Chord paper.

        *avoid* lists peers the router already found dead; entries the
        node itself can see are dead (failed ping) are skipped too.
        """
        candidates: list[_NodeRef] = [
            ref for ref in self.fingers if ref is not None
        ]
        candidates.extend(self.successors)
        best = self.ref
        for ref in candidates:
            if ref.name in avoid:
                continue
            if ref != self.ref and not self.network.is_registered(ref.name):
                continue
            if ring_between(ref.ident, self.ident, ident) and ring_between(
                ref.ident, best.ident, ident
            ):
                best = ref
        return best

    # ------------------------------------------------------------------
    # Storage RPCs
    # ------------------------------------------------------------------

    def rpc_store_get(self, key: str) -> Any | None:
        return self.store.get(key)

    def rpc_store_put(self, key: str, value: Any) -> None:
        self.store.put(key, value)

    def rpc_store_remove(self, key: str) -> Any:
        return self.store.remove(key)

    def rpc_store_contains(self, key: str) -> bool:
        return key in self.store

    def rpc_handoff(self, new_pred_ident: int, requester: _NodeRef) -> list:
        """Give the joining predecessor the keys it now owns.

        The requester owns digests in (old_predecessor, requester], i.e.
        everything this node stores that does *not* fall in
        (requester, self]."""
        def belongs_to_requester(digest: int) -> bool:
            return not ring_between_right_inclusive(
                digest, new_pred_ident, self.ident
            )

        return self.store.pop_range(belongs_to_requester)

    def rpc_absorb(self, entries: list) -> None:
        """Accept keys pushed by a gracefully departing neighbour."""
        for key, value in entries:
            self.store.put(key, value)

    def rpc_notify(self, candidate: _NodeRef) -> None:
        """Chord ``notify``: *candidate* believes it is our predecessor."""
        if self.predecessor is None or ring_between(
            candidate.ident, self.predecessor.ident, self.ident
        ):
            self.predecessor = candidate

    # ------------------------------------------------------------------
    # Periodic protocol
    # ------------------------------------------------------------------

    def _first_live_successor(self) -> _NodeRef:
        """Drop dead entries from the successor list head."""
        while self.successors:
            head = self.successors[0]
            if head == self.ref or self.network.is_registered(head.name):
                return head
            self.successors.pop(0)
        self.successors = [self.ref]
        return self.ref

    def stabilize(self) -> None:
        """One round of Chord stabilization."""
        successor = self._first_live_successor()
        if successor == self.ref:
            if self.predecessor is not None and self.predecessor != self.ref:
                if self.network.is_registered(self.predecessor.name):
                    self.successors = [self.predecessor]
                    successor = self.predecessor
        try:
            their_pred = self._call(successor, "get_predecessor")
        except RpcError:
            if self.successors:
                self.successors.pop(0)
            return
        if (
            their_pred is not None
            and their_pred != self.ref
            and ring_between(their_pred.ident, self.ident, successor.ident)
            and self.network.is_registered(their_pred.name)
        ):
            successor = their_pred
        try:
            succ_list = self._call(successor, "get_successor_list")
            self._call(successor, "notify", self.ref)
        except RpcError:
            return
        merged = [successor] + [ref for ref in succ_list if ref != self.ref]
        self.successors = merged[:SUCCESSOR_LIST_LEN]

    def fix_fingers(self, find_successor) -> None:
        """Refresh one finger-table entry (round-robin)."""
        index = self._next_finger
        self._next_finger = (self._next_finger + 1) % ID_BITS
        start = (self.ident + (1 << index)) % ID_SPACE
        self.fingers[index] = find_successor(start)

    def check_predecessor(self) -> None:
        """Clear the predecessor pointer when it stops answering."""
        if self.predecessor is None or self.predecessor == self.ref:
            return
        if not self.network.is_registered(self.predecessor.name):
            self.predecessor = None


class ChordDht(NetworkRoundBatchMixin, Dht):
    """The :class:`~repro.dht.api.Dht` facade over a Chord ring.

    *replication* > 1 stores each key on the owner plus that many minus
    one of its ring successors (DHash-style), so data survives crashes
    of fewer than *replication* consecutive peers; run
    :meth:`repair_replicas` after churn to restore the invariant.
    """

    def __init__(
        self,
        network: SimNetwork | None = None,
        replication: int = 1,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> None:
        super().__init__()
        if replication < 1:
            raise ReproError(
                f"replication must be >= 1, got {replication}"
            )
        self.network = network if network is not None else SimNetwork()
        self.replication = replication
        #: Keep peer values as encoded wire bytes (decode on access),
        #: so churn handoff moves byte blobs, not object graphs.
        self.encoded_storage = encoded_storage
        #: Durable backend kind every peer store journals into
        #: (``None``: in-memory only, no restart support).
        self.durability = durability
        self.data_dir = (
            resolve_data_dir(data_dir, "chord")
            if durability is not None
            else None
        )
        self._nodes: dict[str, ChordNode] = {}

    def _new_store(self, name: str) -> PeerStore:
        backend = None
        if self.durability is not None:
            backend = create_store_backend(
                self.durability, backend_path(self.data_dir, name)
            )
        return PeerStore(encoded=self.encoded_storage, backend=backend)

    # ------------------------------------------------------------------
    # Construction and membership
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        n_peers: int,
        network: SimNetwork | None = None,
        replication: int = 1,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> "ChordDht":
        """Create a converged ring of *n_peers* directly."""
        if n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {n_peers}")
        dht = cls(network, replication, encoded_storage, durability, data_dir)
        for index in range(n_peers):
            name = f"chord-{index:04d}"
            dht._nodes[name] = ChordNode(
                name, dht.network, store=dht._new_store(name)
            )
        dht.rewire()
        return dht

    def rewire(self) -> None:
        """Recompute every node's ring state from global knowledge.

        Used after bulk construction; the incremental protocol
        (:meth:`join` + :meth:`stabilize_all`) reaches the same state.
        """
        refs = sorted(
            (node.ref for node in self._nodes.values()),
            key=lambda ref: ref.ident,
        )
        count = len(refs)
        by_ident = [ref.ident for ref in refs]
        for position, ref in enumerate(refs):
            node = self._nodes[ref.name]
            node.successors = [
                refs[(position + offset) % count]
                for offset in range(1, min(SUCCESSOR_LIST_LEN, count) + 1)
            ] or [ref]
            node.predecessor = refs[(position - 1) % count]
            for index in range(ID_BITS):
                start = (ref.ident + (1 << index)) % ID_SPACE
                slot = bisect.bisect_left(by_ident, start) % count
                node.fingers[index] = refs[slot]

    def join(self, name: str, gateway: str | None = None) -> None:
        """Run the Chord join protocol for a new peer called *name*."""
        if name in self._nodes:
            raise ReproError(f"peer {name!r} already in the ring")
        node = ChordNode(name, self.network, store=self._new_store(name))
        self._nodes[name] = node
        others = [n for n in self._nodes.values() if n.name != name]
        if not others:
            return
        gateway_node = self._nodes[gateway] if gateway else others[0]
        successor = self._route(gateway_node.ref, node.ident)
        node.successors = [successor]
        node.predecessor = None
        # Take over the key range this node now owns.
        entries = self.network.rpc(
            name, successor.name, "handoff", node.ident, node.ref
        )
        for key, value in entries:
            node.store.put(key, value)
        self.network.rpc(name, successor.name, "notify", node.ref)

    def leave(self, name: str) -> None:
        """Graceful departure: push keys to the successor, then go.

        Handoff moves the store's raw entries (on an encoded ring,
        byte blobs — nothing is unpickled on the way out), and the
        peer's durable state is wiped: a handed-off key must never
        resurrect through a later :meth:`restart`.
        """
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        successor = node._first_live_successor()
        if successor != node.ref:
            entries = node.store.pop_range(lambda digest: True)
            self.network.rpc(name, successor.name, "absorb", entries)
        node.store.wipe_backend()
        self.network.unregister(name)
        del self._nodes[name]

    def fail(self, name: str) -> None:
        """Abrupt crash: the peer and its in-memory data vanish.

        The durable backend's file handle is closed but its state
        stays on disk — that is what :meth:`restart` replays.
        """
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        node.store.close_backend()
        self.network.unregister(name)
        del self._nodes[name]

    def _do_restart(self, name: str) -> None:
        """Recover a crashed peer from its durable log and rejoin.

        Three phases, with repair traffic proportional to ownership
        churn, not store size:

        1. *Replay* — rebuild the store from the peer's own durable
           backend (local disk, zero network bytes).
        2. *Reconcile* — the standard join handoff pulls back keys
           written into this peer's range while it was down.
        3. *Re-home* — keys the peer still holds but no longer owns
           (the ring changed underneath it) are pushed to their
           current owners and dropped locally.
        """
        if name in self._nodes:
            raise ReproError(f"peer {name!r} is already live")
        if self.durability is None:
            raise ReproError(
                "restart requires a durable backend; build the ring "
                "with durability=..."
            )
        backend = create_store_backend(
            self.durability, backend_path(self.data_dir, name)
        )
        store = PeerStore.recover(backend, encoded=self.encoded_storage)
        node = ChordNode(name, self.network, store=store)
        self._nodes[name] = node
        stats = self.stats
        stats.restarts += 1
        stats.restart_replayed += len(store)
        others = [n for n in self._nodes.values() if n.name != name]
        if not others:
            return
        # The rejoin successor comes from live membership, not a routed
        # lookup: peers that never stabilized during the outage still
        # hold refs to the old incarnation, so a route for this ident
        # can terminate on the half-initialised node itself.  (The
        # oracle stands in for routing here, as in repair_replicas.)
        by_ident = sorted(others, key=lambda n: n.ident)
        successor = next(
            (n for n in by_ident if n.ident > node.ident), by_ident[0]
        ).ref
        node.successors = [successor]
        entries = self.network.rpc(
            name, successor.name, "handoff", node.ident, node.ref
        )
        for key, value in entries:
            node.store.put(key, value)
            stats.restart_reconciled += 1
            stats.restart_repair_bytes += request_wire_size(key, value)
        self.network.rpc(name, successor.name, "notify", node.ref)
        # Re-converge the ring: until the predecessor adopts the
        # restarted node as its successor, routing bypasses it (join
        # leaves this to the caller; restart must restore service).
        self.stabilize_all(1)
        self._rehome_after_restart(node)

    def _rehome_after_restart(self, node: ChordNode) -> None:
        """Push keys whose ownership moved while *node* was down."""
        def misplaced(digest: int) -> bool:
            owner = self._nodes[self._successor_name(digest)]
            return node.name not in self._replica_targets(owner)

        stats = self.stats
        for key, value in node.store.pop_range(misplaced):
            owner_name = self._successor_name(key_digest(key))
            self.network.rpc(
                node.name, owner_name, "store_put", key, value,
                size_bytes=request_wire_size(key, value),
                payload_bytes=data_wire_size(value),
            )
            stats.restart_rehomed += 1
            stats.restart_repair_bytes += request_wire_size(key, value)

    def stabilize_all(self, rounds: int = 1) -> None:
        """Drive the periodic protocol on every node *rounds* times."""
        for _ in range(rounds):
            for node in list(self._nodes.values()):
                node.stabilize()
                node.check_predecessor()
            for node in list(self._nodes.values()):
                for _ in range(8):  # refresh a few fingers per round
                    node.fix_fingers(
                        lambda ident, start=node: self._route(start.ref, ident)
                    )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _gateway(self) -> ChordNode:
        if not self._nodes:
            raise ReproError("the ring has no peers")
        return self._nodes[min(self._nodes)]

    def _rpc_insistent(self, src: str, dst: str, method: str, *args: Any):
        """RPC with bounded retries for *transient* message drops.

        A dead peer fails every attempt and the error propagates, so
        churn handling is unaffected; a lossy link usually succeeds on
        a retry, so random drops do not get misdiagnosed as failures
        (which would misroute keys around their true owner).
        """
        last: RpcError | None = None
        for _ in range(3):
            try:
                return self.network.rpc(src, dst, method, *args)
            except RpcError as error:
                last = error
                if not self.network.is_registered(dst):
                    break  # genuinely dead; do not burn retries
        assert last is not None
        raise last

    def _route(self, start: _NodeRef, ident: int) -> _NodeRef:
        """Iterative find_successor from *start*; meters overlay hops.

        Dead hops (stale fingers after churn) are added to an avoid set
        and routing resumes from the gateway, mirroring how a real
        client retries around failures.
        """
        current = start
        avoid: set[str] = set()
        for _ in range(4 * ID_BITS):  # generous loop bound
            try:
                successor = self._rpc_insistent(
                    current.name, current.name, "get_successor"
                )
            except RpcError:
                avoid.add(current.name)
                current = self._gateway().ref
                continue
            if current == successor or ring_between_right_inclusive(
                ident, current.ident, successor.ident
            ):
                return successor
            try:
                nxt = self._rpc_insistent(
                    start.name,
                    current.name,
                    "closest_preceding",
                    ident,
                    tuple(avoid),
                )
            except RpcError:
                avoid.add(current.name)
                current = self._gateway().ref
                continue
            if nxt == current:
                return successor
            self.stats.hops += 1
            current = nxt
        raise ReproError(f"routing for {ident:x} did not converge")

    def find_successor(self, ident: int) -> str:
        """Public routed successor lookup (address of the owner)."""
        return self._route(self._gateway().ref, ident).name

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def _successor_name(self, digest: int) -> str:
        """Ring successor of *digest* among live nodes (oracle)."""
        refs = sorted(
            (node.ident, node.name) for node in self._nodes.values()
        )
        idents = [ident for ident, _ in refs]
        index = bisect.bisect_left(idents, digest)
        if index == len(idents):
            index = 0
        return refs[index][1]

    def peer_of(self, key: str) -> str:
        return self._successor_name(key_digest(key))

    def peers(self) -> list[str]:
        return sorted(self._nodes)

    def items(self) -> Iterator[tuple[str, Any]]:
        seen: set[str] = set()
        for node in self._nodes.values():
            for key, value in node.store.items():
                if key in seen:
                    continue  # replica copies count once
                seen.add(key)
                yield key, value

    def key_count(self) -> int:
        """Distinct stored keys via the non-decoding ``keys()`` walk
        (replica copies count once, same rule as :meth:`items`)."""
        seen: set[str] = set()
        for node in self._nodes.values():
            seen.update(node.store.keys())
        return len(seen)

    def node(self, name: str) -> ChordNode:
        """Direct access to a peer (tests and invariant checks)."""
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    def _owner(self, key: str) -> ChordNode:
        owner_name = self._route(
            self._gateway().ref, key_digest(key)
        ).name
        return self._nodes[owner_name]

    def _do_lookup(self, key: str) -> str:
        return self._owner(key).name

    def _do_get(self, key: str) -> Any | None:
        owner = self._owner(key)
        for target in self._replica_targets(owner):
            value = self.network.rpc(
                self._gateway().name, target, "store_get", key,
                size_bytes=request_wire_size(key),
            )
            if value is not None:
                return value
        return None

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        # One point-to-point store read, no routing, no hop metering:
        # this is exactly what a learned shortcut buys.
        return self.network.rpc(
            self._gateway().name, peer, "store_get", key,
            size_bytes=request_wire_size(key),
        )

    def _replica_targets(self, owner: ChordNode) -> list[str]:
        """The owner plus its next ``replication - 1`` live successors."""
        targets = [owner.name]
        for ref in owner.successors:
            if len(targets) >= self.replication:
                break
            if ref.name not in targets and self.network.is_registered(
                ref.name
            ):
                targets.append(ref.name)
        return targets

    def _do_put(self, key: str, value: Any) -> None:
        owner = self._owner(key)
        for target in self._replica_targets(owner):
            self.network.rpc(
                self._gateway().name, target, "store_put", key, value,
                size_bytes=request_wire_size(key, value),
                payload_bytes=data_wire_size(value),
            )

    def _do_remove(self, key: str) -> Any:
        owner = self._owner(key)
        removed: Any = None
        found = False
        for target in self._replica_targets(owner):
            if self.network.rpc(
                self._gateway().name, target, "store_contains", key,
                size_bytes=request_wire_size(key),
            ):
                value = self.network.rpc(
                    self._gateway().name, target, "store_remove", key,
                    size_bytes=request_wire_size(key),
                )
                if not found:
                    removed = value
                    found = True
        if not found:
            raise DhtKeyError(f"key {key!r} does not exist")
        return removed

    def rewrite_local(self, key: str, value: Any) -> None:
        """Zero-cost in-place rewrite by whichever peer holds the key.

        On a routed substrate this models the storing peer updating its
        own store — no routing, no wire messages (the base-class
        implementation would route a contains + put).  All replica
        copies are refreshed.
        """
        holders = [
            node for node in self._nodes.values() if key in node.store
        ]
        if not holders:
            raise DhtKeyError(
                f"rewrite_local of absent key {key!r}; a routed put is "
                "required to create it"
            )
        for node in holders:
            node.store.put(key, value)

    def _do_contains(self, key: str) -> bool:
        owner = self._owner(key)
        return any(
            self.network.rpc(
                self._gateway().name, target, "store_contains", key,
                size_bytes=request_wire_size(key),
            )
            for target in self._replica_targets(owner)
        )

    def repair_replicas(self) -> int:
        """Restore the replication invariant after churn.

        Every node re-homes keys it holds: the current owner and its
        successor set receive fresh copies, and copies held by nodes no
        longer in a key's replica set are dropped.  Returns the number
        of copies written.  (Each node can determine ownership by
        routing; the oracle stands in for that routing here.)
        """
        if self.replication < 1:
            return 0
        written = 0
        # Gather one authoritative value per key from any holder.
        values: dict[str, Any] = {}
        for node in self._nodes.values():
            for key, value in node.store.items():
                values.setdefault(key, value)
        for key, value in values.items():
            owner = self._nodes[self.peer_of(key)]
            targets = set(self._replica_targets(owner))
            for name, node in self._nodes.items():
                if name in targets:
                    if key not in node.store:
                        node.store.put(key, value)
                        written += 1
                elif key in node.store:
                    node.store.remove(key)
        return written
