"""Runtime-neutral peer building blocks.

Every substrate — the in-process :class:`~repro.dht.localhash.LocalDht`
oracle, the routed overlays over :class:`~repro.net.simnet.SimNetwork`,
and the asyncio/TCP service runtime (:mod:`repro.service`) — needs the
same two ingredients: a *placement* rule mapping keys to peers, and a
per-peer *request server* over a :class:`~repro.dht.storage.PeerStore`.
Both used to live tangled inside substrate classes; this module hosts
them runtime-free so a peer can be driven by a plain method call, a
simulated RPC, an asyncio inbox, or a real socket without rewriting
storage semantics.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.hashing import key_digest, node_id_from_name
from repro.dht.storage import PeerStore


class HashRing:
    """Consistent-hashing placement over a fixed peer set.

    Each peer owns the ring arc ending at its identifier (successor
    ownership, the same rule Chord applies to live node ids), with
    optional virtual nodes to even out arc lengths.  This is pure
    placement — no storage, no transport — so every runtime that wants
    oracle-grade O(log n) ownership resolution shares one implementation.
    """

    __slots__ = ("_peer_names", "_ring_ids", "_ring_names")

    def __init__(
        self, peer_names: list[str], virtual_nodes: int = 1
    ) -> None:
        if not peer_names:
            raise ReproError("a hash ring needs at least one peer")
        if virtual_nodes < 1:
            raise ReproError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self._peer_names = list(peer_names)
        ids = sorted(
            (node_id_from_name(f"{name}#{vnode}"), name)
            for name in self._peer_names
            for vnode in range(virtual_nodes)
        )
        self._ring_ids = [ident for ident, _ in ids]
        self._ring_names = [name for _, name in ids]

    def peer_of(self, key: str) -> str:
        """Successor-style owner of *key* on the ring."""
        digest = key_digest(key)
        index = bisect.bisect_left(self._ring_ids, digest)
        if index == len(self._ring_ids):
            index = 0
        return self._ring_names[index]

    def peers(self) -> list[str]:
        """The peer names, in construction order."""
        return list(self._peer_names)


class KeyValuePeer:
    """One peer's storage plus the request server over it.

    ``serve`` is the runtime-neutral entry point: the five primitive
    operations of the :class:`~repro.dht.api.Dht` contract, dispatched
    by name.  The simulated substrates call it in-process; the service
    runtime calls it from an actor task after decoding a wire frame.
    Storage semantics (absent-key errors included) therefore cannot
    drift between runtimes.
    """

    __slots__ = ("name", "store")

    def __init__(self, name: str, store: PeerStore | None = None) -> None:
        self.name = name
        self.store = store if store is not None else PeerStore()

    def serve(self, op: str, key: str, value: Any = None) -> Any:
        """Execute one primitive against this peer's store."""
        if op == "get":
            return self.store.get(key)
        if op == "put":
            self.store.put(key, value)
            return None
        if op == "remove":
            if key not in self.store:
                raise DhtKeyError(f"key {key!r} does not exist")
            return self.store.remove(key)
        if op == "contains":
            return key in self.store
        if op == "lookup":
            # Reaching this peer at all answers the question: placement
            # already routed here, so the peer confirms ownership.
            return self.name
        raise ReproError(f"unknown peer operation {op!r}")
