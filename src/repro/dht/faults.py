"""Deterministic fault injection for any DHT substrate.

The paper delegates robustness to the underlying DHT ("m-LIGHT
inherits Bamboo's resilience") and never quantifies what the *index*
loses when probes fail mid-query.  This module supplies the missing
instrument: a wrapper that injects reproducible faults at the
``_do_*`` primitive boundary, so every substrate — LocalDht oracle or
routed overlay — can be made exactly as unreliable as an experiment
demands.

Two pieces:

* :class:`FaultPlan` — a seeded decision stream.  Each primitive
  operation draws one uniform variate from a private RNG and maps it
  to a fault kind (or none) by the configured rates, so the same plan
  seed over the same operation sequence reproduces the same faults
  bit-for-bit.  Keys listed in ``dead_keys`` fail deterministically on
  every touch — the tool for "kill exactly this bucket" tests.
* :class:`FaultyDht` — the :class:`~repro.dht.api.Dht` wrapper that
  consults the plan before delegating.  Injections are metered on the
  shared :class:`~repro.dht.api.DhtStats` (``faults_*`` counters) and
  time-costing faults (timeouts, slow replies) charge the simulated
  clock from :mod:`repro.net.events` — never ``time.sleep``.

Fault kinds:

``drop``
    The primitive raises :class:`FaultInjectedError` immediately — a
    lost request or a crashed responder.
``timeout``
    The clock advances by ``timeout_delay`` first (the caller waited
    for a reply that never came), then the primitive raises.
``slow``
    The clock advances by ``slow_delay`` and the primitive succeeds —
    a congested link.
``stale``
    A read returns the value a prior write *replaced*, when one is
    known; writes and never-overwritten keys fall through to the live
    value.  Models read-your-replica-behind semantics.

Batch primitives inject per element: faulted slots carry a
:class:`~repro.dht.api.BatchFailure` while the clean subset still runs
through the inner substrate's own batch machinery, so round-parallel
latency modelling is preserved and one injected fault never poisons
the other slots of its round.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.rng import derive_seed, make_rng
from repro.dht.api import BatchFailure, Dht
from repro.net.events import EventScheduler

__all__ = [
    "FAULT_KINDS",
    "FaultInjectedError",
    "FaultPlan",
    "FaultyDht",
]

#: Injectable fault kinds, in the order the decision stream maps them.
FAULT_KINDS = ("drop", "timeout", "slow", "stale")

#: Private slot marker for reads the plan decided to serve stale.
_STALE = object()


class FaultInjectedError(NodeUnreachableError):
    """An operation failed because the fault plan said so."""


class FaultPlan:
    """Seeded, reproducible stream of per-operation fault decisions.

    *drop_rate*, *timeout_rate*, *slow_rate* and *stale_rate* are
    probabilities per primitive operation; their sum must stay below
    1.0.  Every decision consumes exactly one RNG draw whatever its
    outcome, so the stream stays aligned across configurations with
    the same seed.

    *dead_keys* fail deterministically (as drops) on every operation
    that touches them, without consuming a draw — the stream of random
    decisions is identical with or without dead keys.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop_rate: float = 0.0,
        timeout_rate: float = 0.0,
        slow_rate: float = 0.0,
        stale_rate: float = 0.0,
        timeout_delay: float = 4.0,
        slow_delay: float = 1.0,
        dead_keys: Iterable[str] = (),
    ) -> None:
        rates = {
            "drop": drop_rate,
            "timeout": timeout_rate,
            "slow": slow_rate,
            "stale": stale_rate,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate < 1.0:
                raise ReproError(
                    f"{kind}_rate must be in [0, 1), got {rate}"
                )
        if sum(rates.values()) >= 1.0:
            raise ReproError(
                "fault rates must sum below 1.0, got "
                f"{sum(rates.values())}"
            )
        for delay, name in ((timeout_delay, "timeout_delay"),
                            (slow_delay, "slow_delay")):
            if delay < 0:
                raise ReproError(f"{name} must be >= 0, got {delay}")
        self.seed = seed
        self.rates = rates
        self.timeout_delay = timeout_delay
        self.slow_delay = slow_delay
        self.dead_keys = frozenset(dead_keys)
        self._rng = make_rng(derive_seed(seed, "fault-plan"))

    def reset(self) -> None:
        """Rewind the decision stream to its initial state.

        Two runs separated by a ``reset()`` see identical decisions —
        the reproducibility contract experiments rely on.
        """
        self._rng = make_rng(derive_seed(self.seed, "fault-plan"))

    def decide(self, op: str, key: str | None) -> str | None:
        """The fault to inject for one primitive operation, or None.

        *op* names the primitive (``"get"``, ``"put"``, ...); *key* is
        the key it touches (None for keyless operations).  Dead keys
        short-circuit to ``"drop"`` without consuming a draw.
        """
        if key is not None and key in self.dead_keys:
            return "drop"
        draw = self._rng.random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.rates[kind]
            if draw < cumulative:
                return kind
        return None


class FaultyDht(Dht):
    """Wrap *inner* so its primitives fail according to a *plan*.

    Shares the inner substrate's :class:`~repro.dht.api.DhtStats` (so
    index layers keep reading one counter set) and meters every
    injection on the ``faults_*`` counters.  Time-costing faults
    advance *clock* — resolved from ``inner.network.clock`` when the
    substrate routes over a :class:`~repro.net.simnet.SimNetwork`, or
    a private :class:`~repro.net.events.EventScheduler` otherwise.

    Injection sits at the ``_do_*`` boundary: public operations meter
    as usual, then the primitive consults the plan.  ``rewrite_local``
    and the oracle methods (``peek``/``peer_of``/``peers``/``items``)
    never fault — they model local work, not wire traffic.
    """

    def __init__(
        self,
        inner: Dht,
        plan: FaultPlan,
        *,
        clock: EventScheduler | None = None,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._plan = plan
        self.enabled = True
        if clock is None:
            network = getattr(inner, "network", None)
            clock = getattr(network, "clock", None) or EventScheduler()
        self._clock = clock
        # Superseded values for stale reads: key -> the value the most
        # recent routed put replaced.
        self._superseded: dict[str, Any] = {}
        self._last_written: dict[str, Any] = {}
        # Share the inner stats object (and tracer, when one is already
        # attached) so injections, costs and retries all land on the one
        # counter set experiments read.
        self.stats = inner.stats
        self.tracer = inner.tracer

    @property
    def inner(self) -> Dht:
        """The wrapped substrate."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        """The active fault plan."""
        return self._plan

    @property
    def clock(self) -> EventScheduler:
        """The simulated clock time-costing faults charge."""
        return self._clock

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Scope with injection off (ground-truth phases of experiments).

        Suspended operations consume no plan draws, so the decision
        stream resumes exactly where it paused.
        """
        previous, self.enabled = self.enabled, False
        try:
            yield
        finally:
            self.enabled = previous

    # ------------------------------------------------------------------
    # Injection core
    # ------------------------------------------------------------------

    def _inject(self, op: str, key: str | None) -> str | None:
        """Decide, meter and time-charge one operation's fault.

        Returns the fault kind still to be *acted on* by the caller
        (``"drop"``/``"timeout"`` were already raised; ``"stale"`` is
        returned for reads to resolve, ``"slow"`` already charged)."""
        if not self.enabled:
            return None
        kind = self._plan.decide(op, key)
        if kind is None:
            return None
        if self.tracer is not None:
            self.tracer.event("fault", kind=kind, op=op, key=key)
        if kind == "drop":
            self.stats.faults_dropped += 1
            raise FaultInjectedError(
                f"injected drop: {op} of {key!r} lost"
            )
        if kind == "timeout":
            self.stats.faults_timed_out += 1
            self._clock.advance(self._plan.timeout_delay)
            raise FaultInjectedError(
                f"injected timeout: {op} of {key!r} gave no reply "
                f"within {self._plan.timeout_delay}"
            )
        if kind == "slow":
            self.stats.faults_slowed += 1
            self._clock.advance(self._plan.slow_delay)
            return None  # delivered, just late
        return kind  # "stale": only reads can act on it

    def _record_write(self, key: str, value: Any) -> None:
        if key in self._last_written:
            self._superseded[key] = self._last_written[key]
        self._last_written[key] = value

    def _stale_read(self, key: str) -> Any:
        """The superseded value for *key*, or the live one when none
        exists yet (a key written once has no stale version)."""
        if key in self._superseded:
            self.stats.faults_stale += 1
            return self._superseded[key]
        return self._inner._do_get(key)

    # ------------------------------------------------------------------
    # Substrate primitives (inject, then delegate)
    # ------------------------------------------------------------------

    def _do_lookup(self, key: str) -> str:
        self._inject("lookup", key)
        return self._inner._do_lookup(key)

    def _do_get(self, key: str) -> Any | None:
        if self._inject("get", key) == "stale":
            return self._stale_read(key)
        return self._inner._do_get(key)

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        if self._inject("get", key) == "stale":
            return self._stale_read(key)
        return self._inner._do_get_direct(peer, key)

    def _do_put(self, key: str, value: Any) -> None:
        self._inject("put", key)
        self._inner._do_put(key, value)
        self._record_write(key, value)

    def _do_remove(self, key: str) -> Any:
        self._inject("remove", key)
        value = self._inner._do_remove(key)
        self._superseded.pop(key, None)
        self._last_written.pop(key, None)
        return value

    def _do_contains(self, key: str) -> bool:
        self._inject("contains", key)
        return self._inner._do_contains(key)

    # ------------------------------------------------------------------
    # Batch primitives: per-element injection, clean subset still rides
    # the inner substrate's round machinery
    # ------------------------------------------------------------------

    def _batch_inject(
        self, op: str, keys: Sequence[str | None]
    ) -> tuple[list[Any | None], list[int]]:
        """Pre-draw each element's fault; failed slots get their
        BatchFailure immediately, surviving slot indices are returned
        for the delegated sub-batch."""
        outcomes: list[Any | None] = [None] * len(keys)
        survivors: list[int] = []
        for slot, key in enumerate(keys):
            try:
                kind = self._inject(op, key)
            except FaultInjectedError as error:
                outcomes[slot] = BatchFailure(error)
                continue
            if kind == "stale" and op == "get":
                outcomes[slot] = _STALE
            survivors.append(slot)
        return outcomes, survivors

    def _do_get_many(self, keys: Sequence[str]) -> list[Any]:
        outcomes, survivors = self._batch_inject("get", keys)
        live = [slot for slot in survivors if outcomes[slot] is not _STALE]
        if live:
            results = self._inner._do_get_many([keys[slot] for slot in live])
            for slot, result in zip(live, results):
                outcomes[slot] = result
        for slot in survivors:
            if outcomes[slot] is _STALE:
                outcomes[slot] = self._stale_read(keys[slot])
        return outcomes

    def _do_put_many(self, items: Sequence[tuple[str, Any]]) -> list[Any]:
        outcomes, survivors = self._batch_inject(
            "put", [key for key, _ in items]
        )
        if survivors:
            results = self._inner._do_put_many(
                [items[slot] for slot in survivors]
            )
            for slot, result in zip(survivors, results):
                outcomes[slot] = result
                if not isinstance(result, BatchFailure):
                    self._record_write(*items[slot])
        return outcomes

    def _do_lookup_many(self, keys: Sequence[str]) -> list[Any]:
        outcomes, survivors = self._batch_inject("lookup", keys)
        if survivors:
            results = self._inner._do_lookup_many(
                [keys[slot] for slot in survivors]
            )
            for slot, result in zip(survivors, results):
                outcomes[slot] = result
        return outcomes

    # ------------------------------------------------------------------
    # Local and oracle operations: never faulted
    # ------------------------------------------------------------------

    def rewrite_local(self, key: str, value: Any) -> None:
        # No peek of the inner value: on routed substrates peeking
        # costs overlay hops, which would break the zero-fault
        # bit-equivalence of this wrapper.  Stale versions are tracked
        # from writes observed through the wrapper alone.
        self._inner.rewrite_local(key, value)
        self._record_write(key, value)

    def peek(self, key: str) -> Any | None:
        return self._inner.peek(key)

    def peer_of(self, key: str) -> str:
        return self._inner.peer_of(key)

    def peers(self) -> list[str]:
        return self._inner.peers()

    def items(self) -> Iterator[tuple[str, Any]]:
        return self._inner.items()

    def key_count(self) -> int:
        return self._inner.key_count()
