"""The generic DHT facade every index runs over.

The paper's cost model (Section 7) counts, per index operation:

* **DHT-lookup cost** — how many times the index layer asked the DHT to
  locate the peer responsible for a key.  A ``put``/``get``/``remove``
  embeds one DHT-lookup each, so the facade meters them uniformly.
* **Data-movement cost** — how many data records crossed the network.
  Only the index layer knows how many records a stored object carries,
  so write operations take an explicit ``records_moved`` argument.

The facade also exposes :meth:`Dht.rewrite_local`: replacing the value
at a key *already resolved and owned* costs neither a DHT-lookup nor a
transfer.  This is exactly the operation behind m-LIGHT's incremental
split (Theorem 5): the surviving child keeps the dead bucket's key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.common.errors import DhtKeyError

#: Rough wire size of one record and of an object envelope, used only
#: for network-level byte accounting (the paper's metrics count records
#: and lookups; bytes validate the network layer, nothing else).
RECORD_WIRE_BYTES = 32
ENVELOPE_WIRE_BYTES = 16


def estimate_wire_size(value: Any) -> int:
    """Approximate bytes a stored object occupies on the wire."""
    records = getattr(value, "records", None)
    if isinstance(records, list):
        return ENVELOPE_WIRE_BYTES + RECORD_WIRE_BYTES * len(records)
    return ENVELOPE_WIRE_BYTES


@dataclass(slots=True)
class DhtStats:
    """Index-level cost counters, shared by all substrates.

    The ``cache_*`` counters meter the client-side leaf cache
    (:mod:`repro.core.cache`): ``cache_hits`` — hinted probes whose
    bucket covered the point (1 DHT-get total), ``cache_stale`` —
    hinted probes that proved the cached leaf gone (the probe is still
    metered in ``lookups``; the binary search resumed with tightened
    bounds), ``cache_misses`` — lookups for which nothing useful was
    cached.  They are outcome tallies, not costs: every hint probe is
    already counted in ``lookups``/``gets``.
    """

    lookups: int = 0
    gets: int = 0
    puts: int = 0
    removes: int = 0
    records_moved: int = 0
    hops: int = 0
    cache_hits: int = 0
    cache_stale: int = 0
    cache_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        """Immutable copy of all counters."""
        return {
            "lookups": self.lookups,
            "gets": self.gets,
            "puts": self.puts,
            "removes": self.removes,
            "records_moved": self.records_moved,
            "hops": self.hops,
            "cache_hits": self.cache_hits,
            "cache_stale": self.cache_stale,
            "cache_misses": self.cache_misses,
        }

    def reset(self) -> None:
        """Zero all counters (between experiment phases)."""
        self.lookups = 0
        self.gets = 0
        self.puts = 0
        self.removes = 0
        self.records_moved = 0
        self.hops = 0
        self.cache_hits = 0
        self.cache_stale = 0
        self.cache_misses = 0


class Dht(ABC):
    """Abstract ``put/get/remove/lookup`` interface plus metering.

    Concrete substrates implement the five ``_do_*`` primitives; the
    public methods handle accounting so that every substrate meters
    identically.
    """

    def __init__(self) -> None:
        self.stats = DhtStats()

    # ------------------------------------------------------------------
    # Public, metered operations
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """Locate the peer responsible for *key*; costs one DHT-lookup."""
        self.stats.lookups += 1
        return self._do_lookup(key)

    def get(self, key: str) -> Any | None:
        """Fetch the value at *key* (None when absent); one DHT-lookup."""
        self.stats.lookups += 1
        self.stats.gets += 1
        return self._do_get(key)

    def put(self, key: str, value: Any, *, records_moved: int = 0) -> None:
        """Store *value* at *key*; one DHT-lookup plus *records_moved*
        records of transfer."""
        self.stats.lookups += 1
        self.stats.puts += 1
        self.stats.records_moved += records_moved
        self._do_put(key, value)

    def remove(self, key: str, *, records_moved: int = 0) -> Any:
        """Delete and return the value at *key*; one DHT-lookup.

        *records_moved* accounts records pulled back to the caller
        (e.g. a bucket absorbed during a merge).  Raises
        :class:`DhtKeyError` when the key is absent.
        """
        self.stats.lookups += 1
        self.stats.removes += 1
        self.stats.records_moved += records_moved
        return self._do_remove(key)

    def rewrite_local(self, key: str, value: Any) -> None:
        """Replace the value at an existing key at zero metered cost.

        Models a peer rewriting an object it already stores.  The key
        must exist; raising otherwise catches index-layer bugs where a
        "free" write would actually have required routing.
        """
        if not self._do_contains(key):
            raise DhtKeyError(
                f"rewrite_local of absent key {key!r}; a routed put is "
                "required to create it"
            )
        self._do_put(key, value)

    # ------------------------------------------------------------------
    # Zero-cost oracle access (metrics, tests, debugging only)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        """Read a key without metering.  Experiments must not use this
        on query paths; it exists for invariant checks and metrics."""
        return self._do_get(key)

    @abstractmethod
    def peer_of(self, key: str) -> str:
        """Responsible peer for *key* without metering (oracle)."""

    @abstractmethod
    def peers(self) -> list[str]:
        """All live peer addresses."""

    @abstractmethod
    def items(self) -> Iterator[tuple[str, Any]]:
        """Iterate every (key, value) pair stored anywhere (oracle)."""

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    @abstractmethod
    def _do_lookup(self, key: str) -> str: ...

    @abstractmethod
    def _do_get(self, key: str) -> Any | None: ...

    @abstractmethod
    def _do_put(self, key: str, value: Any) -> None: ...

    @abstractmethod
    def _do_remove(self, key: str) -> Any: ...

    @abstractmethod
    def _do_contains(self, key: str) -> bool: ...
