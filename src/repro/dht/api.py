"""The generic DHT facade every index runs over.

The paper's cost model (Section 7) counts, per index operation:

* **DHT-lookup cost** — how many times the index layer asked the DHT to
  locate the peer responsible for a key.  A ``put``/``get``/``remove``
  embeds one DHT-lookup each, so the facade meters them uniformly.
* **Data-movement cost** — how many data records crossed the network.
  Only the index layer knows how many records a stored object carries,
  so write operations take an explicit ``records_moved`` argument.

The facade also exposes :meth:`Dht.rewrite_local`: replacing the value
at a key *already resolved and owned* costs neither a DHT-lookup nor a
transfer.  This is exactly the operation behind m-LIGHT's incremental
split (Theorem 5): the surviving child keeps the dead bucket's key.
"""

from __future__ import annotations

import atexit
import os
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

from repro.common.errors import DhtKeyError, NodeUnreachableError, ReproError

#: Rough wire size of one record and of an object envelope.  The
#: record constant survives only as the *fallback* model (active before
#: the codec registers itself); the envelope constant still prices
#: control payloads (peer names, booleans) under the codec model.
RECORD_WIRE_BYTES = 32
ENVELOPE_WIRE_BYTES = 16

#: Bytes of per-message framing — kept equal to the service plane's
#: frame header (``repro.service.wire.HEADER.size``: magic, version,
#: opcode, request id, payload length), so simulated and TCP byte
#: counts frame messages identically.
MESSAGE_HEADER_BYTES = 14


def _fallback_payload_size(value: Any) -> int:
    """The pre-codec model: a flat per-record estimate."""
    records = getattr(value, "records", None)
    if isinstance(records, list):
        return ENVELOPE_WIRE_BYTES + RECORD_WIRE_BYTES * len(records)
    return ENVELOPE_WIRE_BYTES


#: (payload_size, data_size) — installed by :mod:`repro.core.codec` at
#: import time.  The indirection keeps the layering acyclic (``dht``
#: cannot import ``core`` at module level); in practice any program
#: importing :mod:`repro` has the codec model active.
_wire_model: tuple[Any, Any] = (_fallback_payload_size, lambda value: 0)


def install_wire_model(payload_size, data_size) -> None:
    """Install the byte-accounting model all substrates charge with.

    *payload_size(value)* prices a message payload; *data_size(value)*
    prices only its data-plane bytes (encoded records), feeding
    ``NetworkStats.payload_bytes``.  Called once by
    :mod:`repro.core.codec`; replaceable by external codecs the same
    way.
    """
    global _wire_model
    _wire_model = (payload_size, data_size)
    from repro.net import simnet

    simnet.install_reply_cost_model(
        lambda result: (reply_wire_size(result), data_size(result))
    )


def estimate_wire_size(value: Any) -> int:
    """Bytes a stored object occupies as a message payload.

    Under the codec model (the default once :mod:`repro` is imported)
    this is the *exact* encoded size for record-bearing objects and
    one envelope for control payloads; ``None`` costs nothing.
    """
    if value is None:
        return 0
    return _wire_model[0](value)


def data_wire_size(value: Any) -> int:
    """Data-plane bytes of *value* (0 for control payloads)."""
    if value is None:
        return 0
    return _wire_model[1](value)


def request_wire_size(key: str, value: Any = None) -> int:
    """Modelled bytes of one request message: framing header, the key
    itself, plus the payload for value-carrying operations."""
    return MESSAGE_HEADER_BYTES + len(key.encode()) + estimate_wire_size(value)


def reply_wire_size(body: Any) -> int:
    """Modelled bytes of one reply message (``None`` body = bare ack)."""
    return MESSAGE_HEADER_BYTES + estimate_wire_size(body)


@dataclass(frozen=True, slots=True)
class BatchFailure:
    """Per-element failure marker inside a batch outcome list.

    The ``_do_*_many`` primitives never abort a whole batch on one
    unreachable peer: they record the element's error in place and keep
    going, so wrappers such as :class:`~repro.dht.retry.RetryingDht`
    can retry exactly the failed subset (partial-failure semantics).
    """

    error: Exception


_shared_executor: ThreadPoolExecutor | None = None


def shared_executor() -> ThreadPoolExecutor:
    """The process-wide executor batch-capable substrates dispatch on.

    One pool for every substrate instance: batches from concurrent
    indexes share it instead of spawning a thread storm.  Created
    lazily so purely sequential runs never pay for threads.
    """
    global _shared_executor
    if _shared_executor is None:
        _shared_executor = ThreadPoolExecutor(
            max_workers=min(32, 4 * (os.cpu_count() or 4)),
            thread_name_prefix="repro-batch",
        )
    return _shared_executor


def shutdown_shared_executor(wait: bool = True) -> None:
    """Tear down the process-wide batch executor (idempotent).

    Registered with :mod:`atexit` so interpreter shutdown — pytest runs
    in particular, which may also own service-runtime event loops —
    never races the pool's worker threads against module teardown.  A
    later :func:`shared_executor` call after an explicit shutdown
    simply builds a fresh pool.
    """
    global _shared_executor
    executor = _shared_executor
    _shared_executor = None
    if executor is not None:
        executor.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_shared_executor)


@dataclass(slots=True)
class DhtStats:
    """Index-level cost counters, shared by all substrates.

    The ``cache_*`` counters meter the client-side leaf cache
    (:mod:`repro.core.cache`): ``cache_hits`` — hinted probes whose
    bucket covered the point (1 DHT-get total), ``cache_stale`` —
    hinted probes that proved the cached leaf gone (the probe is still
    metered in ``lookups``; the binary search resumed with tightened
    bounds), ``cache_misses`` — lookups for which nothing useful was
    cached.  They are outcome tallies, not costs: every hint probe is
    already counted in ``lookups``/``gets``.

    The batch counters meter the batched execution plane:
    ``batch_rounds`` — how many ``*_many`` batches were issued (each is
    one parallel message round; the per-element costs still land in
    ``lookups``/``gets``/``puts``), ``batch_ops`` — how many elements
    those batches carried.  ``retries`` counts retried attempts made by
    a :class:`~repro.dht.retry.RetryingDht` wrapper (each retry is also
    metered as a fresh lookup), ``batch_retries`` the subset of
    those retries that re-issued failed *batch* elements,
    ``backoff_waits`` how many simulated-clock backoff pauses the
    wrapper inserted between attempts, and ``backoff_time`` the total
    simulated time those pauses spent (a float; it lives here, not on
    the wrapper, so a phase reset clears it with everything else).

    The ``faults_*`` counters meter the deterministic fault-injection
    plane (:mod:`repro.dht.faults`): one tick per injected fault, split
    by kind — ``faults_dropped`` (the primitive raised),
    ``faults_timed_out`` (the primitive burned its deadline, then
    raised), ``faults_slowed`` (the reply was delayed but delivered)
    and ``faults_stale`` (a read answered with a superseded value).
    They count *injections*, not costs: a dropped probe was still
    metered in ``lookups``/``gets``.

    The dissemination counters meter the prefix-multicast and
    continuous-query plane (:mod:`repro.mcast`): ``mcasts`` — range
    queries the initiator dispatched as a *single* routed message to
    the LCA owner (the O(1) initiator-message gate), ``mcast_forwards``
    — peer-to-peer subquery forwards travelling down the label tree
    (each embeds one owner resolution, metered in ``lookups`` so the
    paper's bandwidth measure stays comparable with client fan-out),
    ``subscribes`` — continuous range queries installed, and
    ``pushes`` — subscription messages delivered to clients (matching
    records and proactive re-homing invalidations alike).

    The ``restart_*`` counters meter crash recovery on a durable
    substrate (:mod:`repro.dht.durable`): ``restarts`` — how many
    peers came back through :meth:`Dht.restart`,
    ``restart_replayed`` — keys rebuilt from the peer's own durable
    log (local disk, no network), ``restart_reconciled`` — keys
    pulled from live peers because they were written (or re-homed to
    the restarted peer's range) while it was down,
    ``restart_rehomed`` — keys the restarted peer pushed away because
    their ownership moved while it was down, and
    ``restart_repair_bytes`` — modelled wire bytes those reconcile and
    re-home transfers moved.  Repair traffic is proportional to keys
    whose ownership changed, never to store size: replayed keys cost
    zero network bytes.
    """

    lookups: int = 0
    gets: int = 0
    puts: int = 0
    removes: int = 0
    records_moved: int = 0
    hops: int = 0
    cache_hits: int = 0
    cache_stale: int = 0
    cache_misses: int = 0
    batch_rounds: int = 0
    batch_ops: int = 0
    retries: int = 0
    batch_retries: int = 0
    backoff_waits: int = 0
    backoff_time: float = 0.0
    faults_dropped: int = 0
    faults_timed_out: int = 0
    faults_slowed: int = 0
    faults_stale: int = 0
    mcasts: int = 0
    mcast_forwards: int = 0
    subscribes: int = 0
    pushes: int = 0
    restarts: int = 0
    restart_replayed: int = 0
    restart_reconciled: int = 0
    restart_rehomed: int = 0
    restart_repair_bytes: int = 0

    @property
    def faults_injected(self) -> int:
        """Total injected faults across all kinds."""
        return (
            self.faults_dropped
            + self.faults_timed_out
            + self.faults_slowed
            + self.faults_stale
        )

    def meter_batch(
        self,
        count: int,
        *,
        gets: int = 0,
        puts: int = 0,
        records_moved: int = 0,
    ) -> None:
        """Account one issued batch of *count* elements.

        Every element embeds one DHT-lookup — the paper's bandwidth
        measure stays per element; parallelism buys latency, never
        bandwidth — while the batch itself counts as a single round.
        """
        self.lookups += count
        self.gets += gets
        self.puts += puts
        self.records_moved += records_moved
        self.batch_rounds += 1
        self.batch_ops += count

    def snapshot(self) -> dict[str, int | float]:
        """Immutable copy of all counters.

        Derived from the dataclass fields, never a hand-written list:
        a counter added to this class is in the snapshot by
        construction, so :meth:`reset`, :class:`~repro.metrics.
        counters.CostMeter` deltas and the property tests that assert
        reset ⇒ all-zero can never drift out of sync with it again.
        """
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    def reset(self) -> None:
        """Zero all counters (between experiment phases).

        Covers exactly the :meth:`snapshot` keyset, by construction.
        """
        for field in fields(self):
            setattr(self, field.name, field.default)


class Dht(ABC):
    """Abstract ``put/get/remove/lookup`` interface plus metering.

    Concrete substrates implement the five ``_do_*`` primitives; the
    public methods handle accounting so that every substrate meters
    identically.

    ``tracer`` is the observability hook: ``None`` (the default) keeps
    every operation on the exact untraced path — one attribute load and
    one ``is None`` test of overhead — while an attached
    :class:`~repro.obs.trace.Tracer` wraps each primitive in a
    ``dht``-kind span right where the metering happens, so span counts
    and :class:`DhtStats` deltas agree by construction.
    """

    def __init__(self) -> None:
        self.stats = DhtStats()
        self.tracer: "Tracer | None" = None

    # ------------------------------------------------------------------
    # Public, metered operations
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """Locate the peer responsible for *key*; costs one DHT-lookup."""
        self.stats.lookups += 1
        tracer = self.tracer
        if tracer is None:
            return self._do_lookup(key)
        with tracer.span("dht", "lookup", key=key):
            return self._do_lookup(key)

    def get(self, key: str) -> Any | None:
        """Fetch the value at *key* (None when absent); one DHT-lookup."""
        self.stats.lookups += 1
        self.stats.gets += 1
        tracer = self.tracer
        if tracer is None:
            return self._do_get(key)
        with tracer.span("dht", "get", key=key):
            return self._do_get(key)

    def get_direct(self, peer: str, key: str) -> Any | None:
        """Fetch *key* straight from *peer*, skipping overlay routing.

        The primitive behind learned routing shortcuts
        (:mod:`repro.adaptive`): a client that already resolved a
        key's owner sends the store-read to that peer in one message
        instead of re-routing.  The peer answers from its local store
        only — ``None`` when it does not (or no longer) hold the key,
        which is exactly the staleness signal the caller needs to
        evict its hint and fall back to a routed :meth:`get`.  Raises
        :class:`NodeUnreachableError` when *peer* is gone.

        Metered exactly like :meth:`get` (one DHT-lookup, one get):
        the saving shortcuts buy is *hops* and routing fan-in, never
        the per-operation bandwidth measure, so adaptive and plain
        runs stay comparable on the paper's cost model.
        """
        self.stats.lookups += 1
        self.stats.gets += 1
        tracer = self.tracer
        if tracer is None:
            return self._do_get_direct(peer, key)
        with tracer.span("dht", "get_direct", key=key, peer=peer):
            return self._do_get_direct(peer, key)

    def put(self, key: str, value: Any, *, records_moved: int = 0) -> None:
        """Store *value* at *key*; one DHT-lookup plus *records_moved*
        records of transfer."""
        self.stats.lookups += 1
        self.stats.puts += 1
        self.stats.records_moved += records_moved
        tracer = self.tracer
        if tracer is None:
            self._do_put(key, value)
            return
        with tracer.span("dht", "put", key=key, records_moved=records_moved):
            self._do_put(key, value)

    def remove(self, key: str, *, records_moved: int = 0) -> Any:
        """Delete and return the value at *key*; one DHT-lookup.

        *records_moved* accounts records pulled back to the caller
        (e.g. a bucket absorbed during a merge).  Raises
        :class:`DhtKeyError` when the key is absent.
        """
        self.stats.lookups += 1
        self.stats.removes += 1
        self.stats.records_moved += records_moved
        tracer = self.tracer
        if tracer is None:
            return self._do_remove(key)
        with tracer.span(
            "dht", "remove", key=key, records_moved=records_moved
        ):
            return self._do_remove(key)

    # ------------------------------------------------------------------
    # Batched operations (the round-parallel execution plane)
    # ------------------------------------------------------------------
    #
    # A batch carries one recursion level's *independent* operations.
    # Metering is per element — every element embeds a DHT-lookup, so
    # the paper's bandwidth measure is unchanged — but the batch counts
    # as one round: latency-wise the elements proceed in parallel, and
    # substrates that model time advance their clock by the slowest
    # element instead of the sum.  The default implementations fall
    # back to sequential primitives so every substrate works unmodified.

    def get_many(self, keys: Sequence[str]) -> list[Any | None]:
        """Fetch several keys as one parallel round.

        Costs one DHT-lookup per key (exactly like ``len(keys)``
        individual gets) but a single batch round.  Raises the first
        per-element error after the whole batch ran; callers that
        degrade gracefully use :meth:`get_many_outcomes` instead.
        """
        return _raise_batch_failures(self.get_many_outcomes(keys))

    def get_many_outcomes(self, keys: Sequence[str]) -> list[Any]:
        """Fetch several keys as one round, reporting per-slot failures.

        Identical metering to :meth:`get_many`, but an element whose
        peer was unreachable yields a :class:`BatchFailure` in its slot
        instead of aborting the round — one failed slot never poisons
        the round's other results.  Query engines that return partial
        answers (``complete=False``) build on this.
        """
        keys = list(keys)
        if not keys:
            return []
        self.stats.meter_batch(len(keys), gets=len(keys))
        tracer = self.tracer
        if tracer is None:
            return self._do_get_many(keys)
        with tracer.span("dht", "get_many", count=len(keys)):
            return self._do_get_many(keys)

    def put_many(
        self,
        items: Sequence[tuple[str, Any]],
        *,
        records_moved: Sequence[int] | None = None,
    ) -> None:
        """Store several (key, value) pairs as one parallel round.

        *records_moved* optionally gives the per-item record transfer
        (default: zero per item), aligned with *items*.
        """
        items = list(items)
        if not items:
            return
        moved = _check_records_moved(items, records_moved)
        self.stats.meter_batch(
            len(items), puts=len(items), records_moved=sum(moved)
        )
        tracer = self.tracer
        if tracer is None:
            _raise_batch_failures(self._do_put_many(items))
            return
        with tracer.span(
            "dht", "put_many", count=len(items), records_moved=sum(moved)
        ):
            _raise_batch_failures(self._do_put_many(items))

    def lookup_many(self, keys: Sequence[str]) -> list[str]:
        """Locate the responsible peers for several keys in one round."""
        return _raise_batch_failures(self.lookup_many_outcomes(keys))

    def lookup_many_outcomes(self, keys: Sequence[str]) -> list[Any]:
        """Like :meth:`lookup_many`, reporting per-slot failures.

        Identical metering, but an unreachable element yields a
        :class:`BatchFailure` in its slot instead of aborting the
        round — the peer-forwarding runtime degrades per branch on
        this, exactly as the engine does on
        :meth:`get_many_outcomes`.
        """
        keys = list(keys)
        if not keys:
            return []
        self.stats.meter_batch(len(keys))
        tracer = self.tracer
        if tracer is None:
            return self._do_lookup_many(keys)
        with tracer.span("dht", "lookup_many", count=len(keys)):
            return self._do_lookup_many(keys)

    def restart(self, name: str) -> None:
        """Bring a crashed peer back from its durable state.

        The recovery primitive next to ``join``/``leave``/``fail`` on
        substrates with membership: replay the peer's durable log
        (local, free), then reconcile with the live overlay — pull
        keys written into its range while it was down, push keys whose
        ownership moved away.  Repair traffic is proportional to keys
        whose ownership changed, not to the store's size; the
        ``restart_*`` counters on :class:`DhtStats` record the split.

        Requires a substrate built with durability
        (``RuntimeConfig(durability=...)``); otherwise — and on
        substrates without membership at all — this raises
        :class:`ReproError`.
        """
        tracer = self.tracer
        if tracer is None:
            self._do_restart(name)
            return
        with tracer.span("dht", "restart", peer=name):
            self._do_restart(name)

    def _do_restart(self, name: str) -> None:
        raise ReproError(
            f"{type(self).__name__} does not support restart; build the "
            "substrate with durability enabled "
            "(RuntimeConfig(durability=...))"
        )

    def rewrite_local(self, key: str, value: Any) -> None:
        """Replace the value at an existing key at zero metered cost.

        Models a peer rewriting an object it already stores.  The key
        must exist; raising otherwise catches index-layer bugs where a
        "free" write would actually have required routing.
        """
        if not self._do_contains(key):
            raise DhtKeyError(
                f"rewrite_local of absent key {key!r}; a routed put is "
                "required to create it"
            )
        self._do_put(key, value)

    # ------------------------------------------------------------------
    # Zero-cost oracle access (metrics, tests, debugging only)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        """Read a key without metering.  Experiments must not use this
        on query paths; it exists for invariant checks and metrics."""
        return self._do_get(key)

    def key_count(self) -> int:
        """Number of distinct keys stored anywhere (oracle, unmetered).

        The counting path for churn and restart accounting.  This
        default counts :meth:`items`, which on an encoded store decodes
        every value; substrates override it with a non-decoding
        ``PeerStore.keys()`` walk, so counting a store never unpickles
        it.
        """
        return sum(1 for _ in self.items())

    @abstractmethod
    def peer_of(self, key: str) -> str:
        """Responsible peer for *key* without metering (oracle)."""

    @abstractmethod
    def peers(self) -> list[str]:
        """All live peer addresses."""

    @abstractmethod
    def items(self) -> Iterator[tuple[str, Any]]:
        """Iterate every (key, value) pair stored anywhere (oracle)."""

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    @abstractmethod
    def _do_lookup(self, key: str) -> str: ...

    @abstractmethod
    def _do_get(self, key: str) -> Any | None: ...

    @abstractmethod
    def _do_put(self, key: str, value: Any) -> None: ...

    @abstractmethod
    def _do_remove(self, key: str) -> Any: ...

    @abstractmethod
    def _do_contains(self, key: str) -> bool: ...

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        """Direct store-read at *peer*.  The default falls back to the
        routed read so every substrate works unmodified; routed
        substrates override this with a single point-to-point RPC."""
        return self._do_get(key)

    # ------------------------------------------------------------------
    # Batch primitives (unmetered; overridable per substrate)
    # ------------------------------------------------------------------
    #
    # Contract: one outcome per element, in order.  An element whose
    # execution raised :class:`NodeUnreachableError` yields a
    # :class:`BatchFailure` in its slot instead of aborting the batch —
    # partial-failure semantics for retry wrappers.  Data errors
    # (``DhtKeyError``) still propagate immediately: they are caller
    # bugs, not transient network weather.

    def _do_get_many(self, keys: Sequence[str]) -> list[Any]:
        return [_capture(self._do_get, key) for key in keys]

    def _do_put_many(self, items: Sequence[tuple[str, Any]]) -> list[Any]:
        return [_capture(self._do_put, key, value) for key, value in items]

    def _do_lookup_many(self, keys: Sequence[str]) -> list[Any]:
        return [_capture(self._do_lookup, key) for key in keys]


def _capture(operation, *args: Any) -> Any:
    """Run one batch element, trapping unreachability in its slot."""
    try:
        return operation(*args)
    except NodeUnreachableError as error:
        return BatchFailure(error)


def _raise_batch_failures(outcomes: list[Any]) -> list[Any]:
    """Surface the first per-element failure, or pass outcomes through."""
    for outcome in outcomes:
        if isinstance(outcome, BatchFailure):
            raise outcome.error
    return outcomes


def _check_records_moved(
    items: Sequence[tuple[str, Any]], records_moved: Sequence[int] | None
) -> list[int]:
    if records_moved is None:
        return [0] * len(items)
    moved = list(records_moved)
    if len(moved) != len(items):
        raise ReproError(
            f"records_moved has {len(moved)} entries for {len(items)} items"
        )
    return moved
