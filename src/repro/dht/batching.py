"""Batch primitives for overlays that route over a simulated network.

The routed substrates (Chord, Pastry, Kademlia) execute one batch
element as a *chain* of dependent RPCs — every routing hop plus the
storage exchange.  Chains of one batch are independent, so the mixin
runs the whole batch inside a single
:meth:`~repro.net.simnet.SimNetwork.message_round`: each element's
RPC latencies sum along its own chain, and the event clock advances by
the slowest chain instead of the sum.  That is the structural latency
model of round-parallel dissemination — a recursion level costs one
message round, whatever its fan-out.

Elements run in deterministic submission order (simulated time, not
wall-clock, is where an overlay's parallelism shows), and a peer that
turns out dead or partitioned mid-batch fails only its own slot: the
outcome list carries a :class:`~repro.dht.api.BatchFailure` there so
retry wrappers can re-issue exactly the failed subset.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.dht.api import _capture
from repro.net.simnet import SimNetwork


class NetworkRoundBatchMixin:
    """Round-parallel ``_do_*_many`` for substrates with a ``network``.

    Mix in before :class:`~repro.dht.api.Dht`; the host class supplies
    ``network`` (a :class:`SimNetwork`) plus the sequential ``_do_*``
    primitives the chains are built from.
    """

    network: SimNetwork

    def _run_round(self, operation, calls: Sequence[tuple]) -> list[Any]:
        outcomes: list[Any] = []
        with self.network.message_round() as round_:
            for args in calls:
                with round_.chain():
                    outcomes.append(_capture(operation, *args))
        return outcomes

    def _do_get_many(self, keys: Sequence[str]) -> list[Any]:
        return self._run_round(self._do_get, [(key,) for key in keys])

    def _do_put_many(self, items: Sequence[tuple[str, Any]]) -> list[Any]:
        return self._run_round(self._do_put, [tuple(item) for item in items])

    def _do_lookup_many(self, keys: Sequence[str]) -> list[Any]:
        return self._run_round(self._do_lookup, [(key,) for key in keys])
