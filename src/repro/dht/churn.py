"""Churn generation for DHT robustness experiments.

Produces a deterministic schedule of joins, graceful leaves, and
crashes, and applies it to a :class:`~repro.dht.chord.ChordDht`
interleaved with stabilization rounds.  Used by the churn example and
by the DHT integration tests; the figure reproductions run on a stable
membership, as the paper's evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.common.rng import make_rng
from repro.dht.chord import ChordDht


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change."""

    kind: str  # "join" | "leave" | "fail"
    peer: str


@dataclass(slots=True)
class ChurnReport:
    """What a churn run did and what survived it."""

    events: list[ChurnEvent] = field(default_factory=list)
    keys_before: int = 0
    keys_after: int = 0

    @property
    def survival_ratio(self) -> float:
        """Fraction of stored keys still present after the churn run."""
        if self.keys_before == 0:
            return 1.0
        return self.keys_after / self.keys_before


def generate_schedule(
    n_events: int,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    seed: int = 0,
) -> list[str]:
    """Return *n_events* event kinds drawn by the given weights."""
    total = join_weight + leave_weight + fail_weight
    if total <= 0:
        raise ReproError("at least one churn weight must be positive")
    rng = make_rng(seed)
    kinds = ["join", "leave", "fail"]
    weights = [join_weight, leave_weight, fail_weight]
    return rng.choices(kinds, weights=weights, k=n_events)


def run_churn(
    dht: ChordDht,
    n_events: int,
    *,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    stabilize_rounds: int = 2,
    min_peers: int = 4,
    seed: int = 0,
) -> ChurnReport:
    """Apply a churn schedule to *dht*, stabilizing between events."""
    rng = make_rng(seed + 1)
    report = ChurnReport()
    report.keys_before = sum(1 for _ in dht.items())
    next_id = 100_000
    for kind in generate_schedule(
        n_events, join_weight, leave_weight, fail_weight, seed
    ):
        peers = dht.peers()
        if kind == "join":
            name = f"churn-{next_id}"
            next_id += 1
            dht.join(name, gateway=rng.choice(peers))
        elif len(peers) > min_peers:
            victim = rng.choice(peers)
            if kind == "leave":
                dht.leave(victim)
            else:
                dht.fail(victim)
            name = victim
        else:
            continue
        report.events.append(ChurnEvent(kind, name))
        dht.stabilize_all(stabilize_rounds)
    dht.stabilize_all(stabilize_rounds)
    report.keys_after = sum(1 for _ in dht.items())
    return report
