"""Churn generation for DHT robustness experiments.

Produces a deterministic schedule of joins, graceful leaves, and
crashes, and applies it to any overlay exposing ``join``/``leave``/
``fail`` — Chord, Kademlia and Pastry all do — interleaved with
stabilization rounds when the overlay has a periodic protocol
(``stabilize_all``).  Overlays that replicate (``replication > 1``
plus a ``repair_replicas`` method, e.g. :class:`~repro.dht.chord.
ChordDht`) are repaired after every membership event and once more at
the end of the run, restoring the replica invariant *between*
consecutive crashes — without this, replicated rings degrade across a
churn burst and ``survival_ratio`` under-reports what replication
buys.

Used by the churn example, the DHT integration tests and the E10/E12
experiments; the figure reproductions run on a stable membership, as
the paper's evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.common.rng import make_rng
from repro.dht.api import Dht


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change."""

    kind: str  # "join" | "leave" | "fail"
    peer: str


@dataclass(slots=True)
class ChurnReport:
    """What a churn run did and what survived it."""

    events: list[ChurnEvent] = field(default_factory=list)
    keys_before: int = 0
    keys_after: int = 0
    repairs: int = 0  # replica copies rewritten by repair passes

    @property
    def survival_ratio(self) -> float:
        """Fraction of stored keys still present after the churn run."""
        if self.keys_before == 0:
            return 1.0
        return self.keys_after / self.keys_before


def generate_schedule(
    n_events: int,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    seed: int = 0,
) -> list[str]:
    """Return *n_events* event kinds drawn by the given weights."""
    weights = [join_weight, leave_weight, fail_weight]
    for name, weight in zip(("join", "leave", "fail"), weights):
        if weight < 0:
            raise ReproError(
                f"{name}_weight must be >= 0, got {weight}"
            )
    if sum(weights) <= 0:
        raise ReproError("at least one churn weight must be positive")
    rng = make_rng(seed)
    kinds = ["join", "leave", "fail"]
    return rng.choices(kinds, weights=weights, k=n_events)


def _repair(dht: Dht, report: ChurnReport) -> None:
    """Restore the replica invariant when the overlay maintains one."""
    repair = getattr(dht, "repair_replicas", None)
    if repair is not None and getattr(dht, "replication", 1) > 1:
        report.repairs += repair()


def run_churn(
    dht: Dht,
    n_events: int,
    *,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    stabilize_rounds: int = 2,
    min_peers: int = 4,
    seed: int = 0,
) -> ChurnReport:
    """Apply a churn schedule to *dht*, stabilizing between events.

    Works on any overlay exposing ``join(name, gateway=...)``,
    ``leave(name)`` and ``fail(name)``; ``stabilize_all`` and
    ``repair_replicas`` are driven when present.  Leaves and crashes
    are suppressed while the overlay has *min_peers* or fewer, so the
    ring never churns itself away.
    """
    rng = make_rng(seed + 1)
    report = ChurnReport()
    report.keys_before = sum(1 for _ in dht.items())
    stabilize = getattr(dht, "stabilize_all", None)
    next_id = 100_000
    for kind in generate_schedule(
        n_events, join_weight, leave_weight, fail_weight, seed
    ):
        peers = dht.peers()
        if kind == "join":
            name = f"churn-{next_id}"
            next_id += 1
            dht.join(name, gateway=rng.choice(peers))
        elif len(peers) > min_peers:
            victim = rng.choice(peers)
            if kind == "leave":
                dht.leave(victim)
            else:
                dht.fail(victim)
            name = victim
        else:
            continue
        report.events.append(ChurnEvent(kind, name))
        if stabilize is not None:
            stabilize(stabilize_rounds)
        # Repair between events, not only at the end: two crashes with
        # an unrepaired replica set between them can both land on the
        # same key's holders, losing data replication should have kept.
        _repair(dht, report)
    if stabilize is not None:
        stabilize(stabilize_rounds)
    _repair(dht, report)
    report.keys_after = sum(1 for _ in dht.items())
    return report
