"""Churn generation for DHT robustness experiments.

Produces a deterministic schedule of joins, graceful leaves, and
crashes, and applies it to any overlay exposing ``join``/``leave``/
``fail`` — Chord, Kademlia and Pastry all do — interleaved with
stabilization rounds when the overlay has a periodic protocol
(``stabilize_all``).  Overlays that replicate (``replication > 1``
plus a ``repair_replicas`` method, e.g. :class:`~repro.dht.chord.
ChordDht`) are repaired after every membership event and once more at
the end of the run, restoring the replica invariant *between*
consecutive crashes — without this, replicated rings degrade across a
churn burst and ``survival_ratio`` under-reports what replication
buys.

Used by the churn example, the DHT integration tests and the E10/E12
experiments; the figure reproductions run on a stable membership, as
the paper's evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.common.rng import derive_seed, make_rng
from repro.dht.api import Dht


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change."""

    kind: str  # "join" | "leave" | "fail" | "restart"
    peer: str


@dataclass(slots=True)
class ChurnReport:
    """What a churn run did and what survived it."""

    events: list[ChurnEvent] = field(default_factory=list)
    keys_before: int = 0
    keys_after: int = 0
    repairs: int = 0  # replica copies rewritten by repair passes

    @property
    def survival_ratio(self) -> float:
        """Fraction of stored keys still present after the churn run."""
        if self.keys_before == 0:
            return 1.0
        return self.keys_after / self.keys_before


def generate_schedule(
    n_events: int,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    seed: int = 0,
    restart_weight: float = 0.0,
) -> list[str]:
    """Return *n_events* event kinds drawn by the given weights.

    ``restart`` events recover a previously crashed peer from its
    durable log (:meth:`repro.dht.api.Dht.restart`); they only make
    sense on substrates built with ``durability=...``.

    The schedule stream is sub-seeded with ``derive_seed(seed,
    "churn-schedule")`` so it is independent of the victim-selection
    stream in :func:`run_churn` for every base seed.  (Earlier
    versions seeded the two streams ``seed`` and ``seed + 1``, so the
    schedule for seed N reused the victim stream of seed N - 1;
    schedules drawn for a given seed differ from those versions.)
    """
    weights = [join_weight, leave_weight, fail_weight, restart_weight]
    names = ("join", "leave", "fail", "restart")
    for name, weight in zip(names, weights):
        if weight < 0:
            raise ReproError(
                f"{name}_weight must be >= 0, got {weight}"
            )
    if sum(weights) <= 0:
        raise ReproError("at least one churn weight must be positive")
    rng = make_rng(derive_seed(seed, "churn-schedule"))
    return rng.choices(list(names), weights=weights, k=n_events)


def _repair(dht: Dht, report: ChurnReport) -> None:
    """Restore the replica invariant when the overlay maintains one."""
    repair = getattr(dht, "repair_replicas", None)
    if repair is not None and getattr(dht, "replication", 1) > 1:
        report.repairs += repair()


def run_churn(
    dht: Dht,
    n_events: int,
    *,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    fail_weight: float = 0.0,
    restart_weight: float = 0.0,
    stabilize_rounds: int = 2,
    min_peers: int = 4,
    seed: int = 0,
) -> ChurnReport:
    """Apply a churn schedule to *dht*, stabilizing between events.

    Works on any overlay exposing ``join(name, gateway=...)``,
    ``leave(name)`` and ``fail(name)``; ``stabilize_all`` and
    ``repair_replicas`` are driven when present.  Leaves and crashes
    are suppressed while the overlay has *min_peers* or fewer, so the
    ring never churns itself away.

    *restart_weight* > 0 draws kill-and-restart cycles: a restart
    event recovers the oldest still-down crash victim from its durable
    backend (:meth:`repro.dht.api.Dht.restart`) and is skipped while
    no crashed peer is down.  It requires a substrate built with
    ``durability=...``.

    Key accounting (``keys_before`` / ``keys_after``) walks
    :meth:`repro.dht.api.Dht.key_count`, which counts stored keys
    without decoding values — on an ``encoded_storage`` substrate the
    old ``sum(1 for _ in dht.items())`` walk unpickled every stored
    blob just to count it.

    The victim-selection stream is sub-seeded with
    ``derive_seed(seed, "churn-victims")``; see
    :func:`generate_schedule` for the compatibility note on the old
    ``seed + 1`` scheme.
    """
    rng = make_rng(derive_seed(seed, "churn-victims"))
    report = ChurnReport()
    report.keys_before = dht.key_count()
    stabilize = getattr(dht, "stabilize_all", None)
    next_id = 100_000
    down: list[str] = []  # crash victims awaiting a restart draw
    for kind in generate_schedule(
        n_events, join_weight, leave_weight, fail_weight, seed,
        restart_weight,
    ):
        peers = dht.peers()
        if kind == "join":
            name = f"churn-{next_id}"
            next_id += 1
            dht.join(name, gateway=rng.choice(peers))
        elif kind == "restart":
            if not down:
                continue
            name = down.pop(0)
            dht.restart(name)
        elif len(peers) > min_peers:
            victim = rng.choice(peers)
            if kind == "leave":
                dht.leave(victim)
            else:
                dht.fail(victim)
                down.append(victim)
            name = victim
        else:
            continue
        report.events.append(ChurnEvent(kind, name))
        if stabilize is not None:
            stabilize(stabilize_rounds)
        # Repair between events, not only at the end: two crashes with
        # an unrepaired replica set between them can both land on the
        # same key's holders, losing data replication should have kept.
        _repair(dht, report)
    if stabilize is not None:
        stabilize(stabilize_rounds)
    _repair(dht, report)
    report.keys_after = dht.key_count()
    return report
