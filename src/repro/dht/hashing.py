"""Consistent hashing primitives shared by every DHT substrate.

Keys and node identifiers live on the same 160-bit space (SHA-1, as in
Chord and Bamboo).  The helpers below implement modular ring arithmetic
without ever materialising big-integer intermediates beyond Python
ints.
"""

from __future__ import annotations

import hashlib

#: Width of the identifier space in bits (SHA-1).
ID_BITS = 160

#: Size of the identifier space.
ID_SPACE = 1 << ID_BITS


def key_digest(key: str) -> int:
    """Hash a DHT key to its 160-bit identifier."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest(), "big")


def node_id_from_name(name: str) -> int:
    """Derive a node identifier from a peer name (deterministic)."""
    return key_digest("node:" + name)


def ring_between(value: int, left: int, right: int) -> bool:
    """True when *value* lies in the open ring interval (left, right).

    Wraps modulo the identifier space; the degenerate interval
    ``left == right`` denotes the whole ring minus the endpoint, as in
    the Chord paper.
    """
    if left < right:
        return left < value < right
    return value > left or value < right


def ring_between_right_inclusive(value: int, left: int, right: int) -> bool:
    """True when *value* lies in the ring interval (left, right]."""
    if value == right:
        return True
    return ring_between(value, left, right)


def ring_distance(start: int, end: int) -> int:
    """Clockwise distance from *start* to *end* on the ring."""
    return (end - start) % ID_SPACE


def xor_distance(a: int, b: int) -> int:
    """Kademlia's XOR metric."""
    return a ^ b
