"""A Kademlia DHT over the simulated network.

Implements the XOR-metric overlay of Maymounkov & Mazieres: 160-bit
identifiers, per-prefix k-buckets, and iterative lookup with
concurrency ``alpha``.  Storage is placed on the globally closest node
(``k_store = 1``) so that ownership is a deterministic function of the
key — which the index layers above require for exactness; classic
redundant storage on the k closest is available through
``replication``.

Kademlia is here to demonstrate the substrate independence claimed by
the paper ("m-LIGHT is adaptable to any DHT substrate"): the ablation
benchmark swaps this overlay in under m-LIGHT and checks the
index-level cost counters do not change.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from typing import Any

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.api import Dht, data_wire_size, request_wire_size
from repro.dht.batching import NetworkRoundBatchMixin
from repro.dht.durable import (
    backend_path,
    create_store_backend,
    resolve_data_dir,
)
from repro.dht.hashing import key_digest, node_id_from_name, xor_distance
from repro.dht.storage import PeerStore
from repro.net.message import Message
from repro.net.simnet import RpcError, SimNetwork

#: k-bucket capacity.
BUCKET_SIZE = 8

#: Lookup concurrency (classic alpha).
ALPHA = 3

#: Identifier width.
ID_BITS = 160


class KademliaNode:
    """One Kademlia peer: k-buckets, storage, RPC handlers."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        store: PeerStore | None = None,
    ) -> None:
        self.name = name
        self.ident = node_id_from_name(name)
        self.network = network
        self.store = store if store is not None else PeerStore()
        # buckets[i] holds contacts whose XOR distance has bit length i+1.
        self.buckets: list[list[tuple[int, str]]] = [
            [] for _ in range(ID_BITS)
        ]
        network.register(name, self)

    # ------------------------------------------------------------------
    # Routing table
    # ------------------------------------------------------------------

    def _bucket_index(self, ident: int) -> int:
        distance = xor_distance(self.ident, ident)
        if distance == 0:
            raise ReproError("a node never stores itself in a bucket")
        return distance.bit_length() - 1

    def observe(self, ident: int, name: str) -> None:
        """Record a live contact (move-to-front, capacity k)."""
        if ident == self.ident:
            return
        bucket = self.buckets[self._bucket_index(ident)]
        entry = (ident, name)
        if entry in bucket:
            bucket.remove(entry)
            bucket.append(entry)
            return
        if len(bucket) < BUCKET_SIZE:
            bucket.append(entry)
            return
        # Ping the least-recently seen contact; evict it if dead.
        oldest_ident, oldest_name = bucket[0]
        if self.network.is_registered(oldest_name):
            return  # keep old, drop new (Kademlia's anti-churn bias)
        bucket.pop(0)
        bucket.append(entry)

    def closest_contacts(self, ident: int, count: int) -> list[tuple[int, str]]:
        """The *count* known contacts closest to *ident* (self included)."""
        contacts = [(self.ident, self.name)]
        for bucket in self.buckets:
            contacts.extend(bucket)
        contacts.sort(key=lambda pair: xor_distance(pair[0], ident))
        return contacts[:count]

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------

    def handle_rpc(self, message: Message) -> Any:
        args, kwargs = message.payload
        method = getattr(self, "rpc_" + message.msg_type, None)
        if method is None:
            raise RpcError(f"unknown RPC {message.msg_type!r}")
        return method(*args, **kwargs)

    def rpc_find_node(
        self, ident: int, caller_ident: int, caller_name: str
    ) -> list[tuple[int, str]]:
        self.observe(caller_ident, caller_name)
        return self.closest_contacts(ident, BUCKET_SIZE)

    def rpc_store_put(self, key: str, value: Any) -> None:
        self.store.put(key, value)

    def rpc_store_get(self, key: str) -> Any | None:
        return self.store.get(key)

    def rpc_store_remove(self, key: str) -> Any:
        return self.store.remove(key)

    def rpc_store_contains(self, key: str) -> bool:
        return key in self.store


class KademliaDht(NetworkRoundBatchMixin, Dht):
    """The :class:`~repro.dht.api.Dht` facade over a Kademlia overlay."""

    def __init__(
        self,
        network: SimNetwork | None = None,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> None:
        super().__init__()
        self.network = network if network is not None else SimNetwork()
        self.encoded_storage = encoded_storage
        self.durability = durability
        self.data_dir = (
            resolve_data_dir(data_dir, "kad")
            if durability is not None
            else None
        )
        self._nodes: dict[str, KademliaNode] = {}

    def _new_store(self, name: str) -> PeerStore:
        backend = None
        if self.durability is not None:
            backend = create_store_backend(
                self.durability, backend_path(self.data_dir, name)
            )
        return PeerStore(encoded=self.encoded_storage, backend=backend)

    @classmethod
    def build(
        cls,
        n_peers: int,
        network: SimNetwork | None = None,
        encoded_storage: bool = False,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> "KademliaDht":
        """Create *n_peers* and bootstrap their routing tables."""
        if n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {n_peers}")
        dht = cls(network, encoded_storage, durability, data_dir)
        for index in range(n_peers):
            name = f"kad-{index:04d}"
            dht._nodes[name] = KademliaNode(
                name, dht.network, store=dht._new_store(name)
            )
        dht.bootstrap()
        return dht

    def bootstrap(self) -> None:
        """Populate every node's buckets from global knowledge.

        Equivalent to the steady state after every node has performed a
        self-lookup against a connected network; done directly so large
        rings construct quickly.
        """
        everyone = [(node.ident, node.name) for node in self._nodes.values()]
        for node in self._nodes.values():
            # Insert closest contacts first so full buckets keep the
            # closest neighbours, which iterative lookup depends on.
            for ident, name in sorted(
                everyone, key=lambda pair: xor_distance(pair[0], node.ident)
            ):
                node.observe(ident, name)

    def join(self, name: str, gateway: str | None = None) -> None:
        """Protocol join: learn contacts via an iterative self-lookup."""
        if name in self._nodes:
            raise ReproError(f"peer {name!r} already joined")
        node = KademliaNode(name, self.network, store=self._new_store(name))
        self._nodes[name] = node
        others = [n for n in self._nodes if n != name]
        if not others:
            return
        gateway_name = gateway if gateway else min(others)
        gateway_node = self._nodes[gateway_name]
        node.observe(gateway_node.ident, gateway_node.name)
        self._iterative_find(node, node.ident)
        # Republish: pull keys this node is now closest to.
        for other in list(self._nodes.values()):
            if other is node:
                continue
            moved = other.store.pop_range(
                lambda digest: xor_distance(digest, node.ident)
                < xor_distance(digest, other.ident)
            )
            for key, value in moved:
                node.store.put(key, value)

    def leave(self, name: str) -> None:
        """Graceful departure: push each stored key to the remaining
        node closest to its digest, then go.

        Handoff moves raw store entries (blobs on an encoded overlay)
        and wipes the peer's durable state so handed-off keys cannot
        resurrect through a later :meth:`restart`."""
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        others = [n for n in self._nodes.values() if n.name != name]
        if others:
            for key, value in node.store.pop_range(lambda digest: True):
                digest = key_digest(key)
                target = min(
                    others, key=lambda n: xor_distance(n.ident, digest)
                )
                self.network.rpc(name, target.name, "store_put", key, value)
        node.store.wipe_backend()
        self.network.unregister(name)
        del self._nodes[name]

    def fail(self, name: str) -> None:
        """Abrupt crash; durable state stays on disk for restart."""
        node = self._nodes.get(name)
        if node is None:
            raise ReproError(f"unknown peer {name!r}")
        node.store.close_backend()
        self.network.unregister(name)
        del self._nodes[name]

    def _do_restart(self, name: str) -> None:
        """Recover a crashed peer: replay its durable log, rejoin the
        overlay, then reconcile — pull keys now XOR-closest to it,
        push keys that stopped being its responsibility while down."""
        if name in self._nodes:
            raise ReproError(f"peer {name!r} is already live")
        if self.durability is None:
            raise ReproError(
                "restart requires a durable backend; build the overlay "
                "with durability=..."
            )
        backend = create_store_backend(
            self.durability, backend_path(self.data_dir, name)
        )
        store = PeerStore.recover(backend, encoded=self.encoded_storage)
        node = KademliaNode(name, self.network, store=store)
        self._nodes[name] = node
        stats = self.stats
        stats.restarts += 1
        stats.restart_replayed += len(store)
        others = [n for n in self._nodes.values() if n.name != name]
        if not others:
            return
        gateway = min(others, key=lambda n: n.name)
        node.observe(gateway.ident, gateway.name)
        self._iterative_find(node, node.ident)
        # Reconcile: pull keys written while down that now belong here.
        for other in others:
            moved = other.store.pop_range(
                lambda digest: xor_distance(digest, node.ident)
                < xor_distance(digest, other.ident)
            )
            for key, value in moved:
                self.network.rpc(
                    other.name, name, "store_put", key, value,
                    size_bytes=request_wire_size(key, value),
                    payload_bytes=data_wire_size(value),
                )
                stats.restart_reconciled += 1
                stats.restart_repair_bytes += request_wire_size(key, value)
        # Re-home: keys whose ownership moved while this peer was down.
        moved = node.store.pop_range(
            lambda digest: min(
                self._nodes.values(),
                key=lambda n: xor_distance(n.ident, digest),
            )
            is not node
        )
        for key, value in moved:
            digest = key_digest(key)
            owner = min(
                self._nodes.values(),
                key=lambda n: xor_distance(n.ident, digest),
            )
            self.network.rpc(
                name, owner.name, "store_put", key, value,
                size_bytes=request_wire_size(key, value),
                payload_bytes=data_wire_size(value),
            )
            stats.restart_rehomed += 1
            stats.restart_repair_bytes += request_wire_size(key, value)

    def stabilize_all(self, rounds: int = 1) -> None:
        """Periodic maintenance, run to convergence.

        Equivalent to the steady state of Kademlia's upkeep — bucket
        refreshes purge dead contacts and re-learn live ones, and
        republishing migrates each key to the node now closest to it
        (what STORE refreshes achieve between churn events).  Done
        from global knowledge so churn tests converge quickly, the
        same shortcut :meth:`bootstrap` takes.
        """
        for _ in range(rounds):
            for node in self._nodes.values():
                for bucket in node.buckets:
                    bucket[:] = [
                        pair for pair in bucket if pair[1] in self._nodes
                    ]
            self.bootstrap()
            for node in list(self._nodes.values()):
                moved = node.store.pop_range(
                    lambda digest, me=node: min(
                        self._nodes.values(),
                        key=lambda n: xor_distance(n.ident, digest),
                    )
                    is not me
                )
                for key, value in moved:
                    digest = key_digest(key)
                    owner = min(
                        self._nodes.values(),
                        key=lambda n: xor_distance(n.ident, digest),
                    )
                    self.network.rpc(
                        node.name, owner.name, "store_put", key, value
                    )

    # ------------------------------------------------------------------
    # Iterative lookup
    # ------------------------------------------------------------------

    def _iterative_find(
        self, start: KademliaNode, target: int
    ) -> list[tuple[int, str]]:
        """Classic iterative FIND_NODE; meters overlay hops."""
        shortlist = start.closest_contacts(target, BUCKET_SIZE)
        queried: set[int] = {start.ident}
        improved = True
        while improved:
            improved = False
            candidates = [
                pair for pair in shortlist if pair[0] not in queried
            ][:ALPHA]
            for ident, name in candidates:
                queried.add(ident)
                try:
                    learned = self.network.rpc(
                        start.name,
                        name,
                        "find_node",
                        target,
                        start.ident,
                        start.name,
                    )
                except RpcError:
                    continue
                self.stats.hops += 1
                start.observe(ident, name)
                for l_ident, l_name in learned:
                    if l_ident != start.ident:
                        start.observe(l_ident, l_name)
                merged = {pair for pair in shortlist}
                merged.update(
                    (l_ident, l_name) for l_ident, l_name in learned
                )
                new_shortlist = heapq.nsmallest(
                    BUCKET_SIZE,
                    merged,
                    key=lambda pair: xor_distance(pair[0], target),
                )
                if new_shortlist != shortlist:
                    improved = True
                shortlist = new_shortlist
        return shortlist

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> str:
        digest = key_digest(key)
        return min(
            self._nodes.values(),
            key=lambda node: xor_distance(node.ident, digest),
        ).name

    def peers(self) -> list[str]:
        return sorted(self._nodes)

    def items(self) -> Iterator[tuple[str, Any]]:
        for node in self._nodes.values():
            yield from node.store.items()

    def key_count(self) -> int:
        """Stored keys via the non-decoding ``keys()`` walk."""
        return sum(len(node.store) for node in self._nodes.values())

    def node(self, name: str) -> KademliaNode:
        """Direct peer access (tests only)."""
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    def _gateway(self) -> KademliaNode:
        if not self._nodes:
            raise ReproError("the overlay has no peers")
        return self._nodes[min(self._nodes)]

    def _owner(self, key: str) -> KademliaNode:
        digest = key_digest(key)
        shortlist = self._iterative_find(self._gateway(), digest)
        # Mid-churn lookups can still shortlist a contact that died
        # since it was learned; ownership goes to the closest *live*
        # candidate, exactly as a real client falls through its
        # shortlist when the best entry stops answering.
        live = [pair for pair in shortlist if pair[1] in self._nodes]
        if not live:
            raise ReproError("iterative lookup returned no live contacts")
        _, owner_name = min(
            live, key=lambda pair: xor_distance(pair[0], digest)
        )
        return self._nodes[owner_name]

    def _do_lookup(self, key: str) -> str:
        return self._owner(key).name

    def _do_get(self, key: str) -> Any | None:
        owner = self._owner(key)
        return self.network.rpc(
            self._gateway().name, owner.name, "store_get", key,
            size_bytes=request_wire_size(key),
        )

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        # One point-to-point store read, no iterative lookup.
        return self.network.rpc(
            self._gateway().name, peer, "store_get", key,
            size_bytes=request_wire_size(key),
        )

    def _do_put(self, key: str, value: Any) -> None:
        owner = self._owner(key)
        self.network.rpc(
            self._gateway().name, owner.name, "store_put", key, value,
            size_bytes=request_wire_size(key, value),
            payload_bytes=data_wire_size(value),
        )

    def _do_remove(self, key: str) -> Any:
        owner = self._owner(key)
        if not self.network.rpc(
            self._gateway().name, owner.name, "store_contains", key,
            size_bytes=request_wire_size(key),
        ):
            raise DhtKeyError(f"key {key!r} does not exist")
        return self.network.rpc(
            self._gateway().name, owner.name, "store_remove", key,
            size_bytes=request_wire_size(key),
        )

    def rewrite_local(self, key: str, value: Any) -> None:
        """Zero-cost in-place rewrite by the peer holding the key (no
        routing; see the over-DHT cost model in repro.dht.api)."""
        for node in self._nodes.values():
            if key in node.store:
                node.store.put(key, value)
                return
        raise DhtKeyError(
            f"rewrite_local of absent key {key!r}; a routed put is "
            "required to create it"
        )

    def _do_contains(self, key: str) -> bool:
        owner = self._owner(key)
        return self.network.rpc(
            self._gateway().name, owner.name, "store_contains", key,
            size_bytes=request_wire_size(key),
        )
