"""An O(1) consistent-hashing DHT oracle.

``LocalDht`` assigns every key to one of ``n_peers`` virtual peers by
consistent hashing on the same 160-bit ring the routed overlays use
(each peer owns the arc ending at its identifier), but resolves
ownership in O(log n) locally instead of routing.  Because the paper's
metrics count DHT *operations* — not overlay hops — all figure
reproductions run on this substrate; the routed overlays are exercised
by their own tests and by the substrate-swap ablation, which verifies
the index-level counters are identical across substrates.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.common.errors import (
    DhtKeyError,
    NodeUnreachableError,
    ReproError,
)
from repro.dht.api import Dht, _capture, shared_executor
from repro.dht.durable import (
    backend_path,
    create_store_backend,
    resolve_data_dir,
)
from repro.dht.peer import HashRing
from repro.dht.storage import PeerStore

#: Below this batch size the executor's dispatch overhead outweighs any
#: overlap; run the elements inline instead.
_MIN_PARALLEL_BATCH = 4


class LocalDht(Dht):
    """In-process consistent-hashing DHT with per-peer stores."""

    def __init__(
        self,
        n_peers: int = 128,
        virtual_nodes: int = 1,
        durability: str | None = None,
        data_dir: str | None = None,
    ) -> None:
        """*virtual_nodes* > 1 gives each peer that many ring positions
        (DHash/Bamboo-style virtual hosts), evening out the arc lengths
        peers own; load-balance experiments use this so that measured
        imbalance reflects the index, not hash-arc luck.

        *durability* journals every peer store into a durable backend
        (:mod:`repro.dht.durable`).  This oracle has no membership, so
        there is no restart protocol here — the option exists so the
        one config surface (``IndexConfig(durability=...)``) applies
        to every substrate uniformly."""
        super().__init__()
        if n_peers < 1:
            raise ReproError(f"n_peers must be >= 1, got {n_peers}")
        self.durability = durability
        self.data_dir = (
            resolve_data_dir(data_dir, "local")
            if durability is not None
            else None
        )
        self._ring = HashRing(
            [f"peer-{index:04d}" for index in range(n_peers)],
            virtual_nodes,
        )
        self._stores: dict[str, PeerStore] = {
            name: PeerStore(
                backend=(
                    create_store_backend(
                        durability, backend_path(self.data_dir, name)
                    )
                    if durability is not None
                    else None
                )
            )
            for name in self._ring.peers()
        }

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> str:
        """Successor-style owner of *key* on the hash ring."""
        return self._ring.peer_of(key)

    def peers(self) -> list[str]:
        return self._ring.peers()

    def items(self) -> Iterator[tuple[str, Any]]:
        for store in self._stores.values():
            yield from store.items()

    def key_count(self) -> int:
        """Stored keys via the non-decoding ``keys()`` walk."""
        return sum(len(store) for store in self._stores.values())

    def load_by_peer(self, weigh=None) -> dict[str, int]:
        """Per-peer storage load.

        *weigh* maps a stored value to its weight (default: 1 per
        object).  Pass e.g. ``lambda bucket: len(bucket.records)`` to
        weigh buckets by record count, the measure behind Fig. 6a.
        """
        loads = {}
        for name, store in self._stores.items():
            total = 0
            for _, value in store.items():
                total += 1 if weigh is None else weigh(value)
            loads[name] = total
        return loads

    # ------------------------------------------------------------------
    # Substrate primitives
    # ------------------------------------------------------------------

    def _store_for(self, key: str) -> PeerStore:
        return self._stores[self.peer_of(key)]

    def _do_lookup(self, key: str) -> str:
        return self.peer_of(key)

    def _do_get(self, key: str) -> Any | None:
        return self._store_for(key).get(key)

    def _do_put(self, key: str, value: Any) -> None:
        self._store_for(key).put(key, value)

    def _do_remove(self, key: str) -> Any:
        store = self._store_for(key)
        if key not in store:
            raise DhtKeyError(f"key {key!r} does not exist")
        return store.remove(key)

    def _do_contains(self, key: str) -> bool:
        return key in self._store_for(key)

    def _do_get_direct(self, peer: str, key: str) -> Any | None:
        store = self._stores.get(peer)
        if store is None:
            raise NodeUnreachableError(f"peer {peer!r} is not on the ring")
        return store.get(key)

    # ------------------------------------------------------------------
    # Batch primitives: fan the elements out on the shared executor
    # ------------------------------------------------------------------
    #
    # Each element touches only its owner peer's store (plain dict
    # operations, atomic under the GIL), so elements of one batch are
    # safe to run concurrently; outcomes keep submission order, so the
    # results — and the facade's metering — stay deterministic.

    def _fan_out(self, operation, calls: list[tuple]) -> list[Any]:
        if len(calls) < _MIN_PARALLEL_BATCH:
            return [_capture(operation, *args) for args in calls]
        futures = [
            shared_executor().submit(_capture, operation, *args)
            for args in calls
        ]
        return [future.result() for future in futures]

    def _do_get_many(self, keys: Sequence[str]) -> list[Any]:
        return self._fan_out(self._do_get, [(key,) for key in keys])

    def _do_put_many(self, items: Sequence[tuple[str, Any]]) -> list[Any]:
        return self._fan_out(self._do_put, [tuple(item) for item in items])

    def _do_lookup_many(self, keys: Sequence[str]) -> list[Any]:
        return self._fan_out(self._do_lookup, [(key,) for key in keys])
