"""Retry decoration for lossy substrates.

The routed overlays raise :class:`~repro.net.simnet.RpcError` when a
message is dropped or a peer is mid-churn.  Index layers stay oblivious
(over-DHT layering), so resilience belongs here: ``RetryingDht`` wraps
any :class:`~repro.dht.api.Dht` and retries failed primitives a bounded
number of times.  Retried attempts are *metered* — a retry really does
cost another DHT-lookup on the wire, and the meters are the experiment
ground truth — and the retry counter is exposed for observability.

Each operation's retry budget is two-sided:

* **attempts** — at most this many tries of the primitive;
* **deadline** — an optional cap on simulated time the operation may
  spend (first try included); once backoff would cross it, the last
  error propagates instead.

Between attempts the wrapper waits ``backoff_base * factor**attempt``
plus a seeded uniform jitter — on the *simulated* clock from
:mod:`repro.net.events`, never ``time.sleep``, so tests and
experiments replay backoff schedules deterministically.  The default
``backoff_base=0.0`` keeps the pre-backoff behavior: immediate
retries, no clock interaction.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.rng import derive_seed, make_rng
from repro.dht.api import (
    BatchFailure,
    Dht,
    _check_records_moved,
    _raise_batch_failures,
)
from repro.net.events import EventScheduler


class RetryingDht(Dht):
    """Wrap *inner* so transient RPC failures are retried.

    Only :class:`NodeUnreachableError` (and its subclasses ``RpcError``
    and ``FaultInjectedError``) triggers a retry; data errors such as
    ``DhtKeyError`` propagate immediately.  After *attempts*
    consecutive failures — or once the *deadline* budget of simulated
    time is spent — the last error propagates.

    *backoff_base* > 0 enables exponential backoff: the wait before
    retry ``n`` (0-based) is ``backoff_base * backoff_factor**n``
    plus ``uniform(0, jitter)`` drawn from a private RNG seeded with
    *seed*.  Waits advance *clock* — resolved from
    ``inner.network.clock`` when the substrate routes over a simulated
    network, or a private scheduler otherwise — and are tallied in
    ``stats.backoff_waits``.
    """

    def __init__(
        self,
        inner: Dht,
        attempts: int = 3,
        *,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        jitter: float = 0.0,
        deadline: float | None = None,
        clock: EventScheduler | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if attempts < 1:
            raise ReproError(f"attempts must be >= 1, got {attempts}")
        if backoff_base < 0:
            raise ReproError(
                f"backoff_base must be >= 0, got {backoff_base}"
            )
        if backoff_factor < 1:
            raise ReproError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        if jitter < 0:
            raise ReproError(f"jitter must be >= 0, got {jitter}")
        if deadline is not None and deadline <= 0:
            raise ReproError(
                f"deadline must be positive, got {deadline}"
            )
        self._inner = inner
        self._attempts = attempts
        self._backoff_base = backoff_base
        self._backoff_factor = backoff_factor
        self._jitter = jitter
        self._deadline = deadline
        if clock is None:
            network = getattr(inner, "network", None)
            clock = getattr(network, "clock", None)
            if clock is None:
                clock = getattr(inner, "clock", None) or EventScheduler()
        self._clock = clock
        self._rng = make_rng(derive_seed(seed, "retry-backoff"))
        # Share the inner stats object (and tracer, when one is already
        # attached) so every attempt is metered in one place and index
        # layers keep reading the usual counters.
        self.stats = inner.stats
        self.tracer = inner.tracer

    @property
    def inner(self) -> Dht:
        """The wrapped substrate."""
        return self._inner

    @property
    def backoff_time(self) -> float:
        """Total simulated backoff wait, mirrored from the shared stats.

        Lives on :class:`~repro.dht.api.DhtStats` (``backoff_time``) so
        an experiment-phase ``stats.reset()`` clears it along with
        every other counter instead of leaking across phases.
        """
        return self.stats.backoff_time

    @property
    def clock(self) -> EventScheduler:
        """The simulated clock backoff waits advance."""
        return self._clock

    @property
    def retries(self) -> int:
        """Total retried attempts, mirrored from the shared stats."""
        return self.stats.retries

    def _backoff(self, attempt: int, started: float) -> bool:
        """Wait before retry number *attempt*; False when the budget
        (deadline) forbids another try."""
        delay = 0.0
        if self._backoff_base > 0:
            delay = self._backoff_base * self._backoff_factor**attempt
        if self._jitter > 0:
            delay += self._rng.uniform(0.0, self._jitter)
        if self._deadline is not None:
            spent = self._clock.now - started
            if spent + delay >= self._deadline:
                return False
        if delay > 0:
            self._clock.advance(delay)
            self.stats.backoff_time += delay
            self.stats.backoff_waits += 1
            if self.tracer is not None:
                self.tracer.event("backoff", delay=delay, attempt=attempt)
        return True

    def _with_retries(self, operation, *args, **kwargs):
        started = self._clock.now
        last_error: Exception | None = None
        for attempt in range(self._attempts):
            try:
                return operation(*args, **kwargs)
            except NodeUnreachableError as error:
                last_error = error
                if attempt + 1 >= self._attempts:
                    break
                if not self._backoff(attempt, started):
                    break
                self.stats.retries += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "retry", attempt=attempt + 1, error=str(error)
                    )
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Metered operations delegate (the inner facade meters each attempt)
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        return self._with_retries(self._inner.lookup, key)

    def get(self, key: str) -> Any | None:
        return self._with_retries(self._inner.get, key)

    def get_direct(self, peer: str, key: str) -> Any | None:
        # Retry transient drops; a genuinely dead peer still exhausts
        # the budget and propagates, so shortcut eviction fires.
        return self._with_retries(self._inner.get_direct, peer, key)

    def put(self, key: str, value: Any, *, records_moved: int = 0) -> None:
        return self._with_retries(
            self._inner.put, key, value, records_moved=records_moved
        )

    def remove(self, key: str, *, records_moved: int = 0) -> Any:
        return self._with_retries(
            self._inner.remove, key, records_moved=records_moved
        )

    # ------------------------------------------------------------------
    # Batched operations: retry only the failed subset
    # ------------------------------------------------------------------
    #
    # The inner ``_do_*_many`` primitives report per-element outcomes
    # (partial-failure semantics), so a retry round re-issues exactly
    # the elements that failed — as its own batch round, because on the
    # wire it is one.  Every attempt is metered per element, retried
    # elements included: a retry really does cost another DHT-lookup.

    def _batch_with_retries(self, op, primitive, elements, meter):
        """Per-element outcomes after retrying only the failed subset.

        Slots still failing when the attempt or deadline budget runs
        out keep their :class:`BatchFailure`; the caller decides
        whether to raise (``*_many``) or degrade
        (``get_many_outcomes``).

        *op* names the primitive for tracing: this wrapper bypasses the
        inner facade's public batch methods (to reach the per-element
        ``_do_*_many`` outcomes), so it opens its own ``dht`` span per
        attempt — each retried sub-batch is its own wire round and shows
        up as its own span, matching the per-attempt metering."""
        started = self._clock.now
        outcomes: list[Any] = [None] * len(elements)
        pending = list(range(len(elements)))
        for attempt in range(self._attempts):
            if attempt:
                if not self._backoff(attempt - 1, started):
                    break
                self.stats.retries += len(pending)
                self.stats.batch_retries += len(pending)
                if self.tracer is not None:
                    self.tracer.event(
                        "retry", attempt=attempt, pending=len(pending)
                    )
            meter(pending)
            batch = [elements[slot] for slot in pending]
            if self.tracer is None:
                results = primitive(batch)
            else:
                with self.tracer.span(
                    "dht", op, count=len(batch), attempt=attempt
                ):
                    results = primitive(batch)
            failed = []
            for slot, outcome in zip(pending, results):
                outcomes[slot] = outcome
                if isinstance(outcome, BatchFailure):
                    failed.append(slot)
            pending = failed
            if not pending:
                break
        return outcomes

    def get_many(self, keys: Sequence[str]) -> list[Any | None]:
        return _raise_batch_failures(self.get_many_outcomes(keys))

    def get_many_outcomes(self, keys: Sequence[str]) -> list[Any]:
        keys = list(keys)
        if not keys:
            return []
        return self._batch_with_retries(
            "get_many",
            self._inner._do_get_many,
            keys,
            lambda pending: self.stats.meter_batch(
                len(pending), gets=len(pending)
            ),
        )

    def put_many(
        self,
        items: Sequence[tuple[str, Any]],
        *,
        records_moved: Sequence[int] | None = None,
    ) -> None:
        items = list(items)
        if not items:
            return
        moved = _check_records_moved(items, records_moved)
        _raise_batch_failures(self._batch_with_retries(
            "put_many",
            self._inner._do_put_many,
            items,
            lambda pending: self.stats.meter_batch(
                len(pending),
                puts=len(pending),
                records_moved=sum(moved[slot] for slot in pending),
            ),
        ))

    def lookup_many(self, keys: Sequence[str]) -> list[str]:
        return _raise_batch_failures(self.lookup_many_outcomes(keys))

    def lookup_many_outcomes(self, keys: Sequence[str]) -> list[Any]:
        keys = list(keys)
        if not keys:
            return []
        return self._batch_with_retries(
            "lookup_many",
            self._inner._do_lookup_many,
            keys,
            lambda pending: self.stats.meter_batch(len(pending)),
        )

    def rewrite_local(self, key: str, value: Any) -> None:
        # Local rewrites never cross the wire; no retry needed.
        self._inner.rewrite_local(key, value)

    # ------------------------------------------------------------------
    # Oracle passthrough
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        return self._inner.peek(key)

    def peer_of(self, key: str) -> str:
        return self._inner.peer_of(key)

    def peers(self) -> list[str]:
        return self._inner.peers()

    def items(self) -> Iterator[tuple[str, Any]]:
        return self._inner.items()

    def key_count(self) -> int:
        return self._inner.key_count()

    # The abstract primitives never run — every public method delegates —
    # but the ABC requires them.

    def _do_lookup(self, key: str) -> str:  # pragma: no cover
        return self._inner._do_lookup(key)

    def _do_get(self, key: str) -> Any | None:  # pragma: no cover
        return self._inner._do_get(key)

    def _do_put(self, key: str, value: Any) -> None:  # pragma: no cover
        self._inner._do_put(key, value)

    def _do_remove(self, key: str) -> Any:  # pragma: no cover
        return self._inner._do_remove(key)

    def _do_contains(self, key: str) -> bool:  # pragma: no cover
        return self._inner._do_contains(key)
