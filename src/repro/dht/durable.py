"""Per-peer durable storage backends and their registry.

Every DHT substrate keeps each peer's objects in a
:class:`~repro.dht.storage.PeerStore`; this module supplies the
*durability plane* behind that seam: a backend journals every mutation
to disk so a crashed peer can be restarted
(:meth:`repro.dht.api.Dht.restart`) with its pre-crash store replayed
instead of empty.  Two backends ship:

* ``"log"`` (:class:`AppendLogBackend`) — an append-only log of
  ``put``/``remove`` records, each framed with the service wire codec
  (:mod:`repro.service.wire`) and CRC-checksummed, compacted in place
  once dead records dominate.  Torn tails (a crash mid-append) are
  detected by the framing/checksum and replay stops cleanly at the
  last intact record.
* ``"file"`` (:class:`FileDictBackend`) — one file per key under a
  directory, written atomically (temp file + ``os.replace``), the
  dict-on-disk alternative: no compaction debt, higher per-write cost.

Backends register through :func:`register_store_backend`, mirroring
:func:`repro.runtime.register_runtime` and
:func:`repro.core.store.register_store`; selection happens via
``RuntimeConfig(durability=...)`` / ``IndexConfig(durability=...)``.

The crash model is process-level: a simulated ``fail`` drops all
in-memory state but the backend's files survive, exactly what a real
peer loses in a power cut minus OS-level write reordering (callers
that need fsync-grade durability pass ``sync=True``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zlib
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from repro.common.errors import ReproError, UnknownDurabilityError

__all__ = [
    "DurableBackend",
    "AppendLogBackend",
    "FileDictBackend",
    "register_store_backend",
    "store_backend_kinds",
    "create_store_backend",
    "resolve_data_dir",
]

#: Log opcodes — reuse the wire protocol's PUT/REMOVE values so a log
#: file is a plain stream of protocol frames any FrameDecoder can cut.
_OP_PUT = 3
_OP_REMOVE = 4

#: Compaction triggers once the log holds more than
#: ``max(_COMPACT_MIN, _COMPACT_FACTOR * live_keys)`` records.
_COMPACT_MIN = 64
_COMPACT_FACTOR = 4


def _wire():
    """The service wire codec, imported lazily.

    ``repro.service.wire`` imports ``repro.dht.api`` for its byte
    model; resolving it at call time (never at module import) keeps
    the ``dht`` <-> ``service`` package pair free of import-order
    traps.
    """
    from repro.service import wire

    return wire


def _checksum(key: str, blob: bytes | None) -> int:
    crc = zlib.crc32(key.encode())
    if blob is not None:
        crc = zlib.crc32(blob, crc)
    return crc


class DurableBackend(ABC):
    """What a :class:`~repro.dht.storage.PeerStore` journals into.

    One backend instance belongs to exactly one peer (one file path);
    parallel peers — and parallel pytest workers — must never share
    one, which :func:`resolve_data_dir` guarantees by minting a fresh
    temporary directory per substrate when the caller does not pin one.
    """

    #: Registry name, set per subclass.
    kind: str = ""

    @abstractmethod
    def record_put(self, key: str, blob: bytes) -> None:
        """Journal one stored (or overwritten) key."""

    @abstractmethod
    def record_remove(self, key: str) -> None:
        """Journal one deleted key."""

    @abstractmethod
    def replay(self) -> dict[str, bytes]:
        """Reconstruct the surviving ``key -> blob`` state from disk.

        Replay is forgiving at the tail — a torn final record (crash
        mid-write) is discarded, everything intact before it is kept —
        and must leave the backend ready to journal again.
        """

    @abstractmethod
    def compact(self, items: Iterable[tuple[str, bytes]]) -> None:
        """Rewrite durable state to exactly *items* (drop dead records)."""

    def should_compact(self, live_keys: int) -> bool:
        """Whether journal debt warrants a :meth:`compact` pass now."""
        return False

    @abstractmethod
    def close(self) -> None:
        """Release file handles; durable state stays on disk."""

    @abstractmethod
    def wipe(self) -> None:
        """Close and delete all durable state (graceful departure)."""


class AppendLogBackend(DurableBackend):
    """Append-only log of wire-framed, CRC-checksummed mutations.

    Record = one protocol frame: opcode PUT/REMOVE, a running sequence
    number as the request id, and a pickled ``(key, blob, crc)`` body
    where ``crc`` covers key and blob.  A reader needs nothing beyond
    :class:`repro.service.wire.FrameDecoder`.
    """

    kind = "log"

    def __init__(self, path: str | os.PathLike, *, sync: bool = False) -> None:
        self.path = Path(str(path) + ".log")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._sync = sync
        self._sequence = 0
        self._records = 0  # records currently in the file
        self._file = open(self.path, "ab")

    def _append(self, op: int, key: str, blob: bytes | None) -> None:
        if self._file.closed:
            raise ReproError(
                f"durable log {self.path} is closed; the peer is down"
            )
        wire = _wire()
        self._sequence = (self._sequence + 1) & 0xFFFFFFFF
        frame = wire.encode_frame(
            wire.Op(op), self._sequence, (key, blob, _checksum(key, blob))
        )
        self._file.write(frame)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self._records += 1

    def record_put(self, key: str, blob: bytes) -> None:
        self._append(_OP_PUT, key, blob)

    def record_remove(self, key: str) -> None:
        self._append(_OP_REMOVE, key, None)

    def replay(self) -> dict[str, bytes]:
        # Frames are cut one at a time (header first, then exactly the
        # declared payload), never in bulk: a mangled or half-written
        # record must not take the intact frames before it down with
        # it, and a partial frame at EOF is a torn tail, not silence.
        wire = _wire()
        data = self.path.read_bytes()
        state: dict[str, bytes] = {}
        records = 0
        offset = 0
        torn = False
        header = wire.HEADER
        while len(data) - offset >= header.size:
            magic, version, _, _, length = header.unpack_from(data, offset)
            end = offset + header.size + length
            if (
                magic != wire.MAGIC
                or version != wire.VERSION
                or length > wire.MAX_PAYLOAD
                or end > len(data)
            ):
                torn = True
                break
            try:
                (frame,) = wire.FrameDecoder().feed(data[offset:end])
                key, blob, crc = frame.body
            except (wire.WireError, ValueError, TypeError):
                torn = True
                break
            if crc != _checksum(key, blob):
                torn = True
                break
            records += 1
            if frame.op == _OP_PUT:
                state[key] = blob
            else:
                state.pop(key, None)
            offset = end
        self._records = records
        self._sequence = records & 0xFFFFFFFF
        if torn or offset < len(data):
            # Rewrite the log to the intact prefix's surviving state so
            # the discarded tail cannot resurrect on a later replay —
            # and so new appends land after the prefix, not after junk.
            self.compact(state.items())
        return state

    def should_compact(self, live_keys: int) -> bool:
        return self._records > max(_COMPACT_MIN, _COMPACT_FACTOR * live_keys)

    def compact(self, items: Iterable[tuple[str, bytes]]) -> None:
        wire = _wire()
        tmp_path = self.path.with_suffix(".log.tmp")
        records = 0
        with open(tmp_path, "wb") as tmp:
            for key, blob in items:
                self._sequence = (self._sequence + 1) & 0xFFFFFFFF
                tmp.write(
                    wire.encode_frame(
                        wire.Op(_OP_PUT),
                        self._sequence,
                        (key, blob, _checksum(key, blob)),
                    )
                )
                records += 1
            tmp.flush()
            if self._sync:
                os.fsync(tmp.fileno())
        reopen = not self._file.closed
        if reopen:
            self._file.close()
        os.replace(tmp_path, self.path)
        self._records = records
        if reopen:
            self._file = open(self.path, "ab")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def wipe(self) -> None:
        self.close()
        self.path.unlink(missing_ok=True)


class FileDictBackend(DurableBackend):
    """A dict-on-disk backend: one atomically written file per key.

    Filenames are the SHA-1 of the key (keys are arbitrary strings);
    each file carries a CRC-prefixed pickled ``(key, blob)`` pair.
    ``put`` is write-temp-then-rename, so a crash never leaves a
    half-written live file — the torn temp file is simply ignored on
    replay.
    """

    kind = "file"

    def __init__(self, path: str | os.PathLike, *, sync: bool = False) -> None:
        self.path = Path(str(path) + ".d")
        self.path.mkdir(parents=True, exist_ok=True)
        self._sync = sync
        self._closed = False

    def _file_for(self, key: str) -> Path:
        return self.path / hashlib.sha1(key.encode()).hexdigest()

    def record_put(self, key: str, blob: bytes) -> None:
        if self._closed:
            raise ReproError(
                f"durable dict {self.path} is closed; the peer is down"
            )
        payload = pickle.dumps((key, blob), protocol=pickle.HIGHEST_PROTOCOL)
        data = zlib.crc32(payload).to_bytes(4, "big") + payload
        target = self._file_for(key)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.path, suffix=".tmp"
        )
        with os.fdopen(descriptor, "wb") as tmp:
            tmp.write(data)
            tmp.flush()
            if self._sync:
                os.fsync(tmp.fileno())
        os.replace(tmp_name, target)

    def record_remove(self, key: str) -> None:
        if self._closed:
            raise ReproError(
                f"durable dict {self.path} is closed; the peer is down"
            )
        self._file_for(key).unlink(missing_ok=True)

    def replay(self) -> dict[str, bytes]:
        state: dict[str, bytes] = {}
        for entry in sorted(self.path.iterdir()):
            if entry.suffix == ".tmp":
                entry.unlink(missing_ok=True)  # torn write, never live
                continue
            data = entry.read_bytes()
            if len(data) < 4:
                continue
            crc, payload = data[:4], data[4:]
            if zlib.crc32(payload) != int.from_bytes(crc, "big"):
                continue  # corrupt entry: skip, keep the rest
            key, blob = pickle.loads(payload)
            state[key] = blob
        self._closed = False
        return state

    def compact(self, items: Iterable[tuple[str, bytes]]) -> None:
        keep = dict(items)
        live_names = {self._file_for(key).name for key in keep}
        for entry in list(self.path.iterdir()):
            if entry.name not in live_names:
                entry.unlink(missing_ok=True)
        for key, blob in keep.items():
            self.record_put(key, blob)

    def close(self) -> None:
        self._closed = True

    def wipe(self) -> None:
        self._closed = True
        for entry in list(self.path.iterdir()):
            entry.unlink(missing_ok=True)
        try:
            self.path.rmdir()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Registry (mirrors register_runtime / register_store)
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, Callable[..., DurableBackend]] = {
    "log": AppendLogBackend,
    "file": FileDictBackend,
}


def store_backend_kinds() -> tuple[str, ...]:
    """The registered durable-backend kinds, registration order."""
    return tuple(_BACKENDS)


def register_store_backend(
    kind: str, factory: Callable[..., DurableBackend]
) -> None:
    """Add (or replace) a durable backend *kind* in the registry.

    *factory* is called as ``factory(path)`` with a per-peer base path
    (no extension) and must return a :class:`DurableBackend`.
    """
    if not kind:
        raise ReproError("durable backend kind must be a non-empty string")
    _BACKENDS[kind] = factory


def create_store_backend(
    kind: str, path: str | os.PathLike, **options
) -> DurableBackend:
    """Build the durable backend *kind* rooted at *path*."""
    factory = _BACKENDS.get(kind)
    if factory is None:
        raise UnknownDurabilityError(
            f"unknown durable backend {kind!r}; expected one of "
            f"{tuple(_BACKENDS)}"
        )
    return factory(path, **options)


def resolve_data_dir(data_dir: str | os.PathLike | None, prefix: str) -> Path:
    """The directory one substrate's backends live under.

    ``None`` mints a fresh ``tempfile.mkdtemp`` directory — two
    substrates (or two parallel pytest workers) that both default the
    location can therefore never share a log file; an explicit
    *data_dir* is created if needed and used as-is (restart across
    substrate instances needs a pinned directory).
    """
    if data_dir is None:
        return Path(tempfile.mkdtemp(prefix=f"repro-{prefix}-"))
    path = Path(data_dir)
    path.mkdir(parents=True, exist_ok=True)
    return path


def backend_path(data_dir: str | os.PathLike, peer: str) -> Path:
    """The per-peer base path backends attach their extension to."""
    return Path(data_dir) / peer
