"""Per-peer key/value store used by all DHT substrates."""

from __future__ import annotations

import pickle
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.common.errors import CorruptValueError, DhtKeyError
from repro.dht.hashing import key_digest

if TYPE_CHECKING:
    from repro.dht.durable import DurableBackend


class EncodedValue:
    """One stored object held as its pickled wire bytes.

    The frame a bucket travels in (:meth:`LeafBucket.__reduce__` embeds
    the codec encoding) is exactly what an encoded store keeps, so
    churn handoff moves these byte blobs — not live object graphs.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    @classmethod
    def encode(cls, value: Any) -> "EncodedValue":
        return cls(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def decode(self) -> Any:
        """Rebuild the stored object from its blob.

        A truncated or mangled blob — a torn durable-log write, a
        corrupted handoff — raises the typed
        :class:`~repro.common.errors.CorruptValueError` instead of
        whichever bare exception :mod:`pickle` happened to hit.
        """
        try:
            return pickle.loads(self.data)
        except Exception as exc:
            raise CorruptValueError(
                f"encoded value of {len(self.data)} bytes is "
                f"undecodable: {exc}"
            ) from exc

    def encoded_wire_size(self) -> int:
        """Exact payload bytes this blob occupies on the wire; hooks
        into :func:`repro.core.codec.payload_wire_size` so handoff of
        still-encoded values is priced by real blob length."""
        return len(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"EncodedValue({len(self.data)} bytes)"


def _blob_of(value: Any) -> bytes:
    """The byte representation a durable backend journals for *value*."""
    if isinstance(value, EncodedValue):
        return value.data
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class PeerStore:
    """The objects one peer is responsible for.

    Keys are stored together with their 160-bit digests, so handoff on
    churn (transferring the sub-range of keys a new peer takes over)
    does not re-hash the whole store.

    With ``encoded=True`` every value is kept as its pickled wire bytes
    (:class:`EncodedValue`) and decoded on access: what lives on the
    peer, and what :meth:`pop_range` moves during churn, is the same
    byte string a wire frame would carry.  A plain store accepts
    :class:`EncodedValue` blobs on ``put`` (a handoff from an encoded
    peer) and decodes them immediately — a corrupt blob raises
    :class:`~repro.common.errors.CorruptValueError` before anything is
    stored or journaled.

    With a *backend* (:class:`~repro.dht.durable.DurableBackend`)
    attached, every mutation is journaled as a byte blob, so the
    peer's state survives a crash and :meth:`recover` can rebuild it.
    """

    def __init__(
        self,
        encoded: bool = False,
        backend: "DurableBackend | None" = None,
    ) -> None:
        self._values: dict[str, Any] = {}
        self._digests: dict[str, int] = {}
        self._encoded = encoded
        self._backend = backend

    @property
    def encoded(self) -> bool:
        """True when values are kept as pickled bytes between accesses."""
        return self._encoded

    @property
    def backend(self) -> "DurableBackend | None":
        """The attached durable backend, if any."""
        return self._backend

    @classmethod
    def recover(
        cls, backend: "DurableBackend", encoded: bool = False
    ) -> "PeerStore":
        """Rebuild a store from *backend*'s durable state.

        Replayed blobs enter through the normal :meth:`put` path (as
        :class:`EncodedValue`), so a plain store decodes them — and a
        torn-write blob that somehow passed the backend's checksum
        still surfaces as :class:`CorruptValueError`, not silent
        garbage.  The backend is attached only after replay: replay
        itself journals nothing.
        """
        store = cls(encoded=encoded)
        for key, blob in backend.replay().items():
            store.put(key, EncodedValue(blob))
        store._backend = backend
        return store

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def get(self, key: str) -> Any | None:
        value = self._values.get(key)
        if isinstance(value, EncodedValue):
            return value.decode()
        return value

    def put(self, key: str, value: Any) -> None:
        if key not in self._digests:
            self._digests[key] = key_digest(key)
        blob = value.data if isinstance(value, EncodedValue) else None
        if self._encoded:
            if not isinstance(value, EncodedValue):
                value = EncodedValue.encode(value)
        elif isinstance(value, EncodedValue):
            value = value.decode()
        self._values[key] = value
        if self._backend is not None:
            if blob is None:
                blob = _blob_of(value)
            self._backend.record_put(key, blob)
            self._maybe_compact()

    def remove(self, key: str) -> Any:
        if key not in self._values:
            raise DhtKeyError(f"key {key!r} not stored on this peer")
        self._digests.pop(key, None)
        value = self._values.pop(key)
        if self._backend is not None:
            self._backend.record_remove(key)
        if isinstance(value, EncodedValue):
            return value.decode()
        return value

    def keys(self) -> Iterator[str]:
        """Iterate stored keys without touching (or decoding) values.

        The counting path: churn accounting and ``Dht.key_count`` use
        this so an encoded store is never unpickled just to be counted.
        """
        return iter(self._values.keys())

    def items(self) -> Iterator[tuple[str, Any]]:
        for key, value in self._values.items():
            if isinstance(value, EncodedValue):
                yield key, value.decode()
            else:
                yield key, value

    def digest_of(self, key: str) -> int:
        try:
            return self._digests[key]
        except KeyError:
            raise DhtKeyError(
                f"key {key!r} not stored on this peer"
            ) from None

    def pop_range(self, predicate) -> list[tuple[str, Any]]:
        """Remove and return every (key, value) whose digest satisfies
        *predicate*; used for key handoff during churn.

        On an encoded store the values handed off are the raw
        :class:`EncodedValue` blobs — churn moves bytes, and the
        receiving store's ``put`` decides whether to keep or decode
        them."""
        moved = [
            (key, value)
            for key, value in self._values.items()
            if predicate(self._digests[key])
        ]
        for key, _ in moved:
            del self._values[key]
            del self._digests[key]
            if self._backend is not None:
                self._backend.record_remove(key)
        return moved

    def _maybe_compact(self) -> None:
        backend = self._backend
        if backend is not None and backend.should_compact(len(self._values)):
            backend.compact(
                (key, _blob_of(value))
                for key, value in self._values.items()
            )

    def close_backend(self) -> None:
        """Detach and close the backend (crash: durable state survives)."""
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()

    def wipe_backend(self) -> None:
        """Detach and delete the backend's durable state (graceful
        departure: handed-off keys must not resurrect on a restart)."""
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.wipe()
