"""Per-peer key/value store used by all DHT substrates."""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.common.errors import DhtKeyError
from repro.dht.hashing import key_digest


class PeerStore:
    """The objects one peer is responsible for.

    Keys are stored together with their 160-bit digests, so handoff on
    churn (transferring the sub-range of keys a new peer takes over)
    does not re-hash the whole store.
    """

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}
        self._digests: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def get(self, key: str) -> Any | None:
        return self._values.get(key)

    def put(self, key: str, value: Any) -> None:
        if key not in self._digests:
            self._digests[key] = key_digest(key)
        self._values[key] = value

    def remove(self, key: str) -> Any:
        if key not in self._values:
            raise DhtKeyError(f"key {key!r} not stored on this peer")
        self._digests.pop(key, None)
        return self._values.pop(key)

    def items(self) -> Iterator[tuple[str, Any]]:
        yield from self._values.items()

    def digest_of(self, key: str) -> int:
        return self._digests[key]

    def pop_range(self, predicate) -> list[tuple[str, Any]]:
        """Remove and return every (key, value) whose digest satisfies
        *predicate*; used for key handoff during churn."""
        moved = [
            (key, value)
            for key, value in self._values.items()
            if predicate(self._digests[key])
        ]
        for key, _ in moved:
            del self._values[key]
            del self._digests[key]
        return moved
