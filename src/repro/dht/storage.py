"""Per-peer key/value store used by all DHT substrates."""

from __future__ import annotations

import pickle
from collections.abc import Iterator
from typing import Any

from repro.common.errors import DhtKeyError
from repro.dht.hashing import key_digest


class EncodedValue:
    """One stored object held as its pickled wire bytes.

    The frame a bucket travels in (:meth:`LeafBucket.__reduce__` embeds
    the codec encoding) is exactly what an encoded store keeps, so
    churn handoff moves these byte blobs — not live object graphs.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    @classmethod
    def encode(cls, value: Any) -> "EncodedValue":
        return cls(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def decode(self) -> Any:
        return pickle.loads(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"EncodedValue({len(self.data)} bytes)"


class PeerStore:
    """The objects one peer is responsible for.

    Keys are stored together with their 160-bit digests, so handoff on
    churn (transferring the sub-range of keys a new peer takes over)
    does not re-hash the whole store.

    With ``encoded=True`` every value is kept as its pickled wire bytes
    (:class:`EncodedValue`) and decoded on access: what lives on the
    peer, and what :meth:`pop_range` moves during churn, is the same
    byte string a wire frame would carry.  A plain store accepts
    :class:`EncodedValue` blobs on ``put`` (a handoff from an encoded
    peer) and decodes them immediately.
    """

    def __init__(self, encoded: bool = False) -> None:
        self._values: dict[str, Any] = {}
        self._digests: dict[str, int] = {}
        self._encoded = encoded

    @property
    def encoded(self) -> bool:
        """True when values are kept as pickled bytes between accesses."""
        return self._encoded

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def get(self, key: str) -> Any | None:
        value = self._values.get(key)
        if isinstance(value, EncodedValue):
            return value.decode()
        return value

    def put(self, key: str, value: Any) -> None:
        if key not in self._digests:
            self._digests[key] = key_digest(key)
        if self._encoded:
            if not isinstance(value, EncodedValue):
                value = EncodedValue.encode(value)
        elif isinstance(value, EncodedValue):
            value = value.decode()
        self._values[key] = value

    def remove(self, key: str) -> Any:
        if key not in self._values:
            raise DhtKeyError(f"key {key!r} not stored on this peer")
        self._digests.pop(key, None)
        value = self._values.pop(key)
        if isinstance(value, EncodedValue):
            return value.decode()
        return value

    def items(self) -> Iterator[tuple[str, Any]]:
        for key, value in self._values.items():
            if isinstance(value, EncodedValue):
                yield key, value.decode()
            else:
                yield key, value

    def digest_of(self, key: str) -> int:
        try:
            return self._digests[key]
        except KeyError:
            raise DhtKeyError(
                f"key {key!r} not stored on this peer"
            ) from None

    def pop_range(self, predicate) -> list[tuple[str, Any]]:
        """Remove and return every (key, value) whose digest satisfies
        *predicate*; used for key handoff during churn.

        On an encoded store the values handed off are the raw
        :class:`EncodedValue` blobs — churn moves bytes, and the
        receiving store's ``put`` decides whether to keep or decode
        them."""
        moved = [
            (key, value)
            for key, value in self._values.items()
            if predicate(self._digests[key])
        ]
        for key, _ in moved:
            del self._values[key]
            del self._digests[key]
        return moved
