"""``python -m repro`` — entry point hub.

Prints the library's version and where to go next; the real entry
points are the experiment CLIs.
"""

import sys

from repro import __version__

USAGE = f"""repro {__version__} — m-LIGHT (ICDCS 2009) reproduction

Entry points:
  python -m repro.experiments.run_all [--full] [--charts]
      regenerate every evaluation table (Figs. 5-7 + ablations)
  python -m repro.experiments.report --size N -o report.md
      self-checking markdown report (every claim machine-verified)
  pytest tests/
      the test suite
  pytest benchmarks/ --benchmark-only
      timed benchmarks with shape assertions

Examples live in examples/; start with examples/quickstart.py.
Documentation: README.md, DESIGN.md, EXPERIMENTS.md, docs/.
"""


def main() -> int:
    try:
        print(USAGE)
    except BrokenPipeError:
        pass  # piped into head etc.; nothing to clean up
    return 0


if __name__ == "__main__":
    sys.exit(main())
