"""Common interface of all three over-DHT indexes.

The experiment harness drives m-LIGHT, PHT and DST through this
protocol only, so every figure runner is index-agnostic.  All three
report costs through the shared :class:`~repro.dht.api.DhtStats` of
their DHT and return :class:`~repro.core.rangequery.RangeQueryResult`
from range queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.common.geometry import Point, Region
from repro.core.results import RangeQueryResult
from repro.dht.api import Dht


class OverDhtIndex(ABC):
    """An index layered over the generic DHT ``put/get/lookup`` API."""

    dht: Dht

    @abstractmethod
    def insert(self, key: Point, value: Any = None) -> None:
        """Insert one record."""

    @abstractmethod
    def delete(self, key: Point, value: Any = None) -> bool:
        """Delete one record; False when absent."""

    @abstractmethod
    def range_query(self, query: Region) -> RangeQueryResult:
        """Return every record matching the closed region *query*."""

    @abstractmethod
    def total_records(self) -> int:
        """Number of *distinct* records indexed (replicas not counted)."""
