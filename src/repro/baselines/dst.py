"""Distributed Segment Tree (DST) over DHTs.

DST (Zheng et al., IPTPS'06; multi-dimensional variant per the MSR-Asia
TR) superimposes a *full* virtual tree of fixed height ``D`` on the
key space: the node at prefix ``p`` lives at DHT key ``hash(p)``.  A
record is stored at its depth-``D`` leaf cell **and replicated at every
ancestor**, so that any canonical node can answer its subrange with a
single DHT-get — ranges decompose into disjoint canonical nodes and
resolve in O(1) rounds.

Two consequences the paper measures:

* maintenance pays roughly ``D + 1`` DHT operations and record copies
  per insert — an order of magnitude above m-LIGHT/PHT (Fig. 5);
* node **saturation** caps replication: once a node holds
  ``saturation`` records it stops accepting replicas, and queries
  hitting a saturated canonical node must descend to its children
  (extra rounds).  Small ``theta_split`` saturates nodes early, which
  is why DST's data-movement cost *falls* as the threshold shrinks
  (Fig. 5d), and why its latency blows up for large ranges (Fig. 7b):
  big ranges decompose into high, saturated nodes.

Because the virtual height ``D`` exceeds the data's real depth, range
decomposition near the query boundary produces a very large number of
depth-``D`` cells — the paper's explanation for DST's order-of-
magnitude bandwidth in Fig. 7a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.config import IndexConfig
from repro.common.geometry import (
    Point,
    Region,
    check_point,
    query_covers_cell,
    query_overlaps_cell,
    region_of_bits,
)
from repro.common.labels import interleave
from repro.core.records import Record
from repro.core.store import DEFAULT_STORE, RecordStore, create_store
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.baselines.interface import OverDhtIndex
from repro.dht.api import Dht

_PREFIX = "dst:"


def _key(prefix: str) -> str:
    return _PREFIX + prefix


@dataclass(slots=True)
class DstNode:
    """One virtual-tree node as stored in the DHT.

    An unsaturated node holds *every* record of its subtree; once
    ``saturated`` flips, its record list is frozen as a partial set
    that queries must not trust.
    """

    prefix: str
    records: list[Record] = field(default_factory=list)
    saturated: bool = False
    #: Lazily built record store behind the filter; rebuilt whenever
    #: the generation counter says the records changed.
    _store: RecordStore | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _generation: int = field(default=0, init=False, repr=False, compare=False)
    _built_generation: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    @property
    def load(self) -> int:
        return len(self.records)

    def touch(self) -> None:
        """Invalidate derived state after mutating ``records``.

        A generation counter, not a count compare: an equal-count
        remove+add between queries must still invalidate the store.
        """
        self._generation += 1

    def matching(
        self, query: Region, dims: int, kind: str = DEFAULT_STORE
    ) -> list[Record]:
        """Records inside the closed *query*, via the configured record
        store (sorted on the cell's next split dimension)."""
        store = self._store
        if (
            store is None
            or store.kind != kind
            or self._built_generation != self._generation
        ):
            store = create_store(
                kind, dims, len(self.prefix) % dims, self.records
            )
            self._store = store
            self._built_generation = self._generation
        return store.matching(query.lows, query.highs)


class DstIndex(OverDhtIndex):
    """DST with ancestor replication and saturation."""

    def __init__(
        self,
        dht: Dht,
        config: IndexConfig | None = None,
        saturation: int | None = None,
    ) -> None:
        self.dht = dht
        self._config = config if config is not None else IndexConfig()
        self._dims = self._config.dims
        self._depth = self._config.max_depth
        #: Replication cap per internal node; the evaluation ties it to
        #: theta_split so the Fig. 5c/d sweep drives both schemes.
        self._saturation = (
            saturation
            if saturation is not None
            else self._config.split_threshold
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, key: Point, value: Any = None) -> None:
        """Store the record on its whole root-to-leaf path.

        Each level costs one DHT operation; unsaturated levels also
        receive a copy of the record (one unit of movement each).
        """
        record = Record.make(key, value, dims=self._dims)
        full = interleave(record.key, self._depth)
        for depth in range(self._depth + 1):
            prefix = full[:depth]
            node = self.dht.get(_key(prefix))
            if node is None:
                node = DstNode(prefix)
                node.records.append(record)
                self.dht.put(_key(prefix), node, records_moved=1)
                continue
            at_leaf = depth == self._depth
            if not at_leaf and (
                node.saturated or node.load >= self._saturation
            ):
                if not node.saturated:
                    node.saturated = True
                    self.dht.rewrite_local(_key(prefix), node)
                continue
            node.records.append(record)
            node.touch()
            self.dht.stats.records_moved += 1
            self.dht.rewrite_local(_key(prefix), node)

    def delete(self, key: Point, value: Any = None) -> bool:
        """Remove one matching record from every level that holds it."""
        point = check_point(tuple(key), self._dims)
        full = interleave(point, self._depth)
        removed_any = False
        for depth in range(self._depth + 1):
            prefix = full[:depth]
            node = self.dht.get(_key(prefix))
            if node is None:
                continue
            victim = None
            for record in node.records:
                if record.key == point and (
                    value is None or record.value == value
                ):
                    victim = record
                    break
            if victim is not None:
                node.records.remove(victim)
                node.touch()
                self.dht.rewrite_local(_key(prefix), node)
                removed_any = True
        return removed_any

    # ------------------------------------------------------------------
    # Range queries (canonical decomposition, O(1) rounds)
    # ------------------------------------------------------------------

    def range_query(self, query: Region) -> RangeQueryResult:
        """Decompose *query* into canonical nodes and probe them all in
        parallel; descend past saturated nodes (one extra round per
        level of saturation)."""
        builder = RangeQueryBuilder()
        canonical: list[str] = []
        self._decompose(query, "", region_of_bits("", self._dims), canonical)
        frontier = canonical
        round_number = 0
        while frontier:
            round_number += 1
            builder.rounds = max(builder.rounds, round_number)
            next_frontier: list[str] = []
            for prefix in frontier:
                builder.lookups += 1
                node = self.dht.get(_key(prefix))
                if node is None:
                    continue  # empty region: nothing stored there
                if node.saturated and len(prefix) < self._depth:
                    for child in (prefix + "0", prefix + "1"):
                        if query_overlaps_cell(
                            query, region_of_bits(child, self._dims)
                        ):
                            next_frontier.append(child)
                    continue
                self._collect(node, query, builder)
            frontier = next_frontier
        return builder.build()

    def _decompose(
        self, query: Region, prefix: str, cell: Region, out: list[str]
    ) -> None:
        """Minimal disjoint canonical cover of *query*.

        Maximal cells fully inside the query plus boundary cells at the
        virtual depth ``D`` — far finer than the data's real spread,
        hence the bandwidth blow-up the paper reports.  The cell region
        is threaded through the recursion so each level costs one split
        rather than a from-scratch rebuild.
        """
        if not query_overlaps_cell(query, cell):
            return
        if query_covers_cell(query, cell) or len(prefix) >= self._depth:
            out.append(prefix)
            return
        lower, upper = cell.split(len(prefix) % self._dims)
        self._decompose(query, prefix + "0", lower, out)
        self._decompose(query, prefix + "1", upper, out)

    def _collect(
        self, node: DstNode, query: Region, builder: RangeQueryBuilder
    ) -> None:
        if node.prefix in builder.visited_leaves:
            return
        builder.visited_leaves.add(node.prefix)
        builder.records.extend(
            node.matching(query, self._dims, self._config.store)
        )

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def total_records(self) -> int:
        """Distinct records = records stored at depth-D leaf cells."""
        return sum(
            len(value.records)
            for key, value in self.dht.items()
            if key.startswith(_PREFIX)
            and isinstance(value, DstNode)
            and len(value.prefix) == self._depth
        )

    def replica_count(self) -> int:
        """Total stored copies across all levels (replication bill)."""
        return sum(
            len(value.records)
            for key, value in self.dht.items()
            if key.startswith(_PREFIX) and isinstance(value, DstNode)
        )
