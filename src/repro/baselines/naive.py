"""Naive kd-tree-over-DHT mapping (ablation baseline).

Strips m-LIGHT of its naming function: the bucket of leaf λ is stored
at DHT key λ itself.  Two costs reappear immediately, which is the
point of ablation A1:

* a split must transfer **both** children to fresh keys (no survivor
  stays under the old key), doubling split movement and puts;
* binary search on the candidate set no longer works — a missing key
  cannot distinguish "below a leaf" from "internal node", because
  internal labels hold nothing — so lookups probe candidate prefixes
  linearly from the root, O(depth) instead of O(log D).
"""

from __future__ import annotations

from typing import Any

from repro.common.config import IndexConfig
from repro.common.errors import IndexCorruptionError
from repro.common.geometry import Point, Region, check_point
from repro.common.labels import candidate_string, root_label
from repro.core.bucket import LeafBucket
from repro.core.records import Record
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.core.split import ThresholdSplit
from repro.baselines.interface import OverDhtIndex
from repro.dht.api import Dht

_PREFIX = "naive:"


def _key(label: str) -> str:
    return _PREFIX + label


class NaiveTreeIndex(OverDhtIndex):
    """Space kd-tree with identity label-to-key mapping."""

    def __init__(self, dht: Dht, config: IndexConfig | None = None) -> None:
        self.dht = dht
        self._config = config if config is not None else IndexConfig()
        self._dims = self._config.dims
        self._strategy = ThresholdSplit(
            self._config.split_threshold, self._config.merge_threshold
        )
        root = root_label(self._dims)
        if self.dht.peek(_key(root)) is None:
            self.dht.put(
                _key(root),
                LeafBucket(root, self._dims, store=self._config.store),
            )

    def lookup(self, point: Point) -> tuple[LeafBucket, int]:
        """Linear probing of candidate labels from the root downward."""
        point = check_point(point, self._dims)
        candidate = candidate_string(point, self._config.max_depth)
        probes = 0
        for length in range(self._dims + 1, len(candidate) + 1):
            probes += 1
            bucket = self.dht.get(_key(candidate[:length]))
            if bucket is not None:
                return bucket, probes
        raise IndexCorruptionError(
            f"naive lookup of {point} found no leaf on its path"
        )

    def insert(self, key: Point, value: Any = None) -> None:
        record = Record.make(key, value, dims=self._dims)
        bucket, _ = self.lookup(record.key)
        bucket.add(record)
        self.dht.stats.records_moved += 1
        self.dht.rewrite_local(_key(bucket.label), bucket)
        plan = self._strategy.plan_split(
            bucket.label, bucket.records, self._dims, self._config.max_depth
        )
        if plan is None:
            return
        # Without the naming bijection there is no surviving child:
        # every plan leaf is a routed put and the origin key is freed.
        self.dht.remove(_key(bucket.label))
        for label, records in plan.leaves:
            self.dht.put(
                _key(label),
                LeafBucket(
                    label, self._dims, records, store=self._config.store
                ),
                records_moved=len(records),
            )

    def delete(self, key: Point, value: Any = None) -> bool:
        point = check_point(tuple(key), self._dims)
        bucket, _ = self.lookup(point)
        for record in bucket.records:
            if record.key == point and (
                value is None or record.value == value
            ):
                bucket.remove(record)
                self.dht.rewrite_local(_key(bucket.label), bucket)
                return True
        return False

    def range_query(self, query: Region) -> RangeQueryResult:
        """Root-anchored tree descent (each visited label is one get)."""
        from repro.common.geometry import query_overlaps_cell, region_of_label

        builder = RangeQueryBuilder()
        frontier = [root_label(self._dims)]
        round_number = 0
        while frontier:
            round_number += 1
            builder.rounds = max(builder.rounds, round_number)
            next_frontier: list[str] = []
            for label in frontier:
                builder.lookups += 1
                bucket = self.dht.get(_key(label))
                if bucket is not None:
                    builder.collect(label, bucket.matching(query))
                    continue
                for child in (label + "0", label + "1"):
                    if query_overlaps_cell(
                        query, region_of_label(child, self._dims)
                    ):
                        next_frontier.append(child)
            frontier = next_frontier
        return builder.build()

    def total_records(self) -> int:
        return sum(
            value.load
            for key, value in self.dht.items()
            if key.startswith(_PREFIX) and isinstance(value, LeafBucket)
        )
