"""Prefix Hash Tree (PHT) over a z-order linearisation.

PHT is the first over-DHT index (Section 2.1): a binary trie whose
node at prefix ``p`` lives at DHT key ``hash(p)``.  Internal nodes hold
no data — they are routing markers only — so range processing must
always descend to the leaves, the inefficiency m-LIGHT's filled
internal nodes remove.  Leaves form a doubly-linked list in curve
order, maintained on every split and merge (extra pointer updates are
part of PHT's maintenance bill).

Lookups binary-search the prefix length exactly as in the PHT paper:
a missing node bounds the leaf from above, an internal node bounds it
from below, so ``O(log D)`` DHT-gets suffice.

Multi-dimensional keys are linearised by the z-order curve
(:mod:`repro.baselines.sfc`); the trie's cells coincide with the
kd-tree's space partition, which makes the comparison with m-LIGHT
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.config import IndexConfig
from repro.common.errors import IndexCorruptionError
from repro.common.geometry import (
    Point,
    Region,
    cell_resolves_query,
    check_point,
    query_overlaps_cell,
    region_of_bits,
)
from repro.common.labels import interleave
from repro.core.records import Record
from repro.core.store import DEFAULT_STORE, RecordStore, create_store
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.baselines.interface import OverDhtIndex
from repro.dht.api import Dht

_PREFIX = "pht:"


def _key(prefix: str) -> str:
    return _PREFIX + prefix


@dataclass(slots=True)
class PhtNode:
    """One trie node as stored in the DHT."""

    prefix: str
    is_leaf: bool
    records: list[Record] = field(default_factory=list)
    prev_leaf: str | None = None
    next_leaf: str | None = None
    #: Lazily built record store behind the filter; rebuilt whenever
    #: the generation counter says the records changed.
    _store: RecordStore | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _generation: int = field(default=0, init=False, repr=False, compare=False)
    _built_generation: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    @property
    def load(self) -> int:
        return len(self.records)

    def touch(self) -> None:
        """Invalidate derived state after mutating ``records``.

        A generation counter, not a count compare: an equal-count
        remove+add between queries must still invalidate the store.
        """
        self._generation += 1

    def matching(
        self, query: Region, dims: int, kind: str = DEFAULT_STORE
    ) -> list[Record]:
        """Records inside the closed *query*, via the configured record
        store (the trie shares the kd split cycle, so the cell's next
        split dimension orders the store)."""
        store = self._store
        if (
            store is None
            or store.kind != kind
            or self._built_generation != self._generation
        ):
            store = create_store(
                kind, dims, len(self.prefix) % dims, self.records
            )
            self._store = store
            self._built_generation = self._generation
        return store.matching(query.lows, query.highs)


class PhtIndex(OverDhtIndex):
    """PHT with threshold split/merge and linked leaves."""

    def __init__(self, dht: Dht, config: IndexConfig | None = None) -> None:
        self.dht = dht
        self._config = config if config is not None else IndexConfig()
        self._dims = self._config.dims
        self._depth = self._config.max_depth
        if self.dht.peek(_key("")) is None:
            self.dht.put(_key(""), PhtNode("", True))

    # ------------------------------------------------------------------
    # Lookup (binary search on prefix length)
    # ------------------------------------------------------------------

    def lookup(self, point: Point) -> tuple[PhtNode, int]:
        """Return (leaf node, probes) for the leaf covering *point*."""
        point = check_point(point, self._dims)
        full = interleave(point, self._depth)
        low, high = 0, self._depth
        probes = 0
        while low <= high:
            mid = (low + high) // 2
            probes += 1
            node = self.dht.get(_key(full[:mid]))
            if node is None:
                high = mid - 1
            elif node.is_leaf:
                return node, probes
            else:
                low = mid + 1
        raise IndexCorruptionError(
            f"PHT lookup of {point} found no leaf; trie is inconsistent"
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, key: Point, value: Any = None) -> None:
        record = Record.make(key, value, dims=self._dims)
        leaf, _ = self.lookup(record.key)
        leaf.records.append(record)
        leaf.touch()
        self.dht.stats.records_moved += 1
        self.dht.rewrite_local(_key(leaf.prefix), leaf)
        if leaf.load > self._config.split_threshold:
            self._split(leaf)

    def delete(self, key: Point, value: Any = None) -> bool:
        point = check_point(tuple(key), self._dims)
        leaf, _ = self.lookup(point)
        victim = None
        for record in leaf.records:
            if record.key == point and (value is None or record.value == value):
                victim = record
                break
        if victim is None:
            return False
        leaf.records.remove(victim)
        leaf.touch()
        self.dht.rewrite_local(_key(leaf.prefix), leaf)
        self._maybe_merge(leaf)
        return True

    def _partition(
        self, prefix: str, records: list[Record]
    ) -> tuple[list[Record], list[Record]]:
        """Split *records* of trie cell *prefix* between its children."""
        dim = len(prefix) % self._dims
        region = region_of_bits(prefix, self._dims)
        midpoint = (region.lows[dim] + region.highs[dim]) / 2.0
        lower = [r for r in records if r.key[dim] < midpoint]
        upper = [r for r in records if r.key[dim] >= midpoint]
        return lower, upper

    def _split(self, leaf: PhtNode) -> None:
        """Replace an overfull leaf by a subtree of small-enough leaves.

        Unlike m-LIGHT, *every* new leaf changes DHT key, so all of the
        old leaf's records move; the old prefix and any intermediate
        prefixes become routing-only internal nodes; and the leaf
        linked list is re-stitched around the new leaves.
        """
        origin = leaf.prefix
        produced: list[tuple[str, list[Record]]] = []
        internal: list[str] = []
        stack = [(origin, list(leaf.records))]
        while stack:
            prefix, records = stack.pop()
            if (
                len(records) <= self._config.split_threshold
                or len(prefix) >= self._depth
            ):
                produced.append((prefix, records))
                continue
            internal.append(prefix)
            lower, upper = self._partition(prefix, records)
            stack.append((prefix + "1", upper))
            stack.append((prefix + "0", lower))
        if not internal:
            return  # depth cap: the leaf stays overfull
        produced.sort(key=lambda pair: pair[0])  # curve order

        old_prev, old_next = leaf.prev_leaf, leaf.next_leaf
        chain = [prefix for prefix, _ in produced]
        for position, (prefix, records) in enumerate(produced):
            node = PhtNode(
                prefix,
                True,
                records,
                prev_leaf=chain[position - 1] if position > 0 else old_prev,
                next_leaf=(
                    chain[position + 1]
                    if position + 1 < len(chain)
                    else old_next
                ),
            )
            self.dht.put(_key(prefix), node, records_moved=len(records))
        # The origin becomes an internal marker on the same key (local
        # rewrite); deeper internal markers are routed puts.
        for prefix in internal:
            marker = PhtNode(prefix, False)
            if prefix == origin:
                self.dht.rewrite_local(_key(prefix), marker)
            else:
                self.dht.put(_key(prefix), marker)
        if old_prev is not None:
            self._pointer_update(old_prev, next_leaf=chain[0])
        if old_next is not None:
            self._pointer_update(old_next, prev_leaf=chain[-1])

    def _maybe_merge(self, leaf: PhtNode) -> None:
        """Collapse sibling leaf pairs while under the merge threshold.

        Both children's records move to the parent's key, and the leaf
        list is re-stitched — two removes, one put, two pointer updates
        per level (versus m-LIGHT's single transfer).
        """
        while leaf.prefix:
            prefix = leaf.prefix
            sibling_prefix = prefix[:-1] + ("1" if prefix[-1] == "0" else "0")
            sibling = self.dht.get(_key(sibling_prefix))
            if sibling is None or not sibling.is_leaf:
                return
            if (
                leaf.load + sibling.load
                >= self._config.merge_threshold
            ):
                return
            first, second = (
                (leaf, sibling) if prefix < sibling_prefix else (sibling, leaf)
            )
            merged = PhtNode(
                prefix[:-1],
                True,
                first.records + second.records,
                prev_leaf=first.prev_leaf,
                next_leaf=second.next_leaf,
            )
            self.dht.remove(_key(leaf.prefix), records_moved=leaf.load)
            self.dht.remove(_key(sibling_prefix), records_moved=sibling.load)
            self.dht.put(
                _key(merged.prefix), merged, records_moved=0
            )
            if merged.prev_leaf is not None:
                self._pointer_update(merged.prev_leaf, next_leaf=merged.prefix)
            if merged.next_leaf is not None:
                self._pointer_update(merged.next_leaf, prev_leaf=merged.prefix)
            leaf = merged

    def _pointer_update(self, prefix: str, **fields: str | None) -> None:
        """One routed message telling a leaf to update a list pointer."""
        self.dht.lookup(_key(prefix))
        node = self.dht.peek(_key(prefix))
        if node is None:
            raise IndexCorruptionError(
                f"PHT leaf-list pointer to missing node {prefix!r}"
            )
        for name, value in fields.items():
            setattr(node, name, value)
        self.dht.rewrite_local(_key(prefix), node)

    # ------------------------------------------------------------------
    # Range queries (trie descent)
    # ------------------------------------------------------------------

    def range_query(self, query: Region) -> RangeQueryResult:
        """Descend the trie from the query's LCA to every overlapping
        leaf.  Internal probes return no data (PHT's routing-only
        internal nodes), which is exactly why its bandwidth exceeds
        m-LIGHT's."""
        builder = RangeQueryBuilder()
        lca = ""
        while len(lca) < self._depth:
            extended = None
            for child in (lca + "0", lca + "1"):
                if cell_resolves_query(
                    region_of_bits(child, self._dims), query
                ):
                    extended = child
                    break
            if extended is None:
                break
            lca = extended

        frontier = [lca]
        round_number = 0
        while frontier:
            round_number += 1
            builder.rounds = max(builder.rounds, round_number)
            next_frontier: list[str] = []
            for prefix in frontier:
                builder.lookups += 1
                node = self.dht.get(_key(prefix))
                if node is None:
                    # Only possible at the LCA probe: the covering leaf
                    # is an ancestor — find it by a point lookup.
                    leaf, probes = self.lookup(query.lows)
                    builder.lookups += probes
                    builder.rounds = max(
                        builder.rounds, round_number + probes
                    )
                    self._collect(leaf, query, builder)
                    continue
                if node.is_leaf:
                    self._collect(node, query, builder)
                    continue
                for child in (prefix + "0", prefix + "1"):
                    if query_overlaps_cell(
                        query, region_of_bits(child, self._dims)
                    ):
                        next_frontier.append(child)
            frontier = next_frontier
        return builder.build()

    def range_query_scan(self, query: Region) -> RangeQueryResult:
        """PHT's alternative range algorithm: linked-leaf scan.

        The PHT paper's one-dimensional mode: locate the leaf holding
        the query's low corner, then walk the doubly-linked leaf list
        in curve order until past the query's z-range.  In multiple
        dimensions the z-interval between the query's corners covers
        cells outside the rectangle, so the scan visits (and filters)
        more leaves than the trie descent — included for completeness
        and to quantify that gap.
        """
        builder = RangeQueryBuilder()
        leaf, probes = self.lookup(query.lows)
        builder.lookups += probes
        builder.rounds += probes
        # Scan forward until the current leaf's prefix is past the
        # z-position of the query's high corner.
        high_bits = interleave(
            tuple(min(value, 1.0 - 2.0**-50) for value in query.highs),
            self._depth,
        )
        current: PhtNode | None = leaf
        while current is not None:
            self._collect(current, query, builder)
            if current.prefix and current.prefix > high_bits[: len(
                current.prefix
            )]:
                break
            next_prefix = current.next_leaf
            if next_prefix is None:
                break
            builder.lookups += 1
            builder.rounds += 1
            current = self.dht.get(_key(next_prefix))
            if current is None:
                raise IndexCorruptionError(
                    f"dangling PHT leaf pointer to {next_prefix!r}"
                )
        return builder.build()

    def _collect(
        self, leaf: PhtNode, query: Region, builder: RangeQueryBuilder
    ) -> None:
        if leaf.prefix in builder.visited_leaves:
            return
        builder.collect(
            leaf.prefix,
            leaf.matching(query, self._dims, self._config.store),
        )

    # ------------------------------------------------------------------
    # Oracle access
    # ------------------------------------------------------------------

    def leaves(self):
        """Iterate every leaf node (zero metered cost)."""
        for key, value in self.dht.items():
            if key.startswith(_PREFIX) and isinstance(value, PhtNode):
                if value.is_leaf:
                    yield value

    def total_records(self) -> int:
        return sum(leaf.load for leaf in self.leaves())

    def tree_size(self) -> int:
        """Number of trie nodes, internal markers included."""
        return sum(
            1
            for key, value in self.dht.items()
            if key.startswith(_PREFIX) and isinstance(value, PhtNode)
        )
