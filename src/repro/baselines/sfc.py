"""Z-order (Morton) space-filling curve.

PHT and DST index multi-dimensional keys through a one-dimensional
linearisation (Section 2.2's "SFC indexing"); both use the z-order
curve, whose bit-interleaved prefixes coincide with the cells of the
alternating space partition (:func:`repro.common.geometry.region_of_bits`).
This module provides the integer encode/decode pair used by tests and
by anything needing curve *ranges* rather than trie prefixes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import InvalidPointError
from repro.common.labels import coordinate_bits, interleave


def z_prefix(point: Sequence[float], depth: int) -> str:
    """The *depth*-bit z-order trie prefix containing *point*.

    Identical to label interleaving: bit k is bit ``k // m + 1`` of
    coordinate ``k % m``.
    """
    return interleave(point, depth)


def z_encode(point: Sequence[float], bits_per_dim: int) -> int:
    """Encode *point* as an integer position on the z-order curve."""
    dims = len(point)
    prefix = interleave(point, bits_per_dim * dims)
    return int(prefix, 2) if prefix else 0


def z_decode(code: int, dims: int, bits_per_dim: int) -> tuple[float, ...]:
    """Decode a curve position back to the low corner of its cell."""
    total_bits = bits_per_dim * dims
    if code < 0 or code >= (1 << total_bits):
        raise InvalidPointError(
            f"code {code} out of range for {total_bits} bits"
        )
    bits = format(code, f"0{total_bits}b") if total_bits else ""
    coords = []
    for dim in range(dims):
        value = 0.0
        scale = 0.5
        for position in range(bits_per_dim):
            if bits[position * dims + dim] == "1":
                value += scale
            scale /= 2.0
        coords.append(value)
    return tuple(coords)


def z_cell_low_corner_bits(point: Sequence[float], bits_per_dim: int) -> str:
    """Concatenated (non-interleaved) per-dimension expansions; a
    convenience for debugging curve layouts."""
    return "|".join(
        coordinate_bits(value, bits_per_dim) for value in point
    )
