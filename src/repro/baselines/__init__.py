"""Baseline over-DHT indexes the paper evaluates against.

* :class:`~repro.baselines.pht.PhtIndex` — Prefix Hash Tree
  (Chawathe et al., SIGCOMM'05 / Ramabhadran et al., PODC'04) over a
  z-order linearisation of the multi-dimensional space.
* :class:`~repro.baselines.dst.DstIndex` — Distributed Segment Tree
  (Zheng et al., IPTPS'06; quad-tree flavour per Shen et al.'s TR),
  with ancestor replication and node saturation.

Both consume only the generic DHT facade, exactly like m-LIGHT, so the
three schemes are compared on identical substrates and identical cost
meters.
"""

from repro.baselines.interface import OverDhtIndex
from repro.baselines.pht import PhtIndex
from repro.baselines.dst import DstIndex

__all__ = ["OverDhtIndex", "PhtIndex", "DstIndex"]
