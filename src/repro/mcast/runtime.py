"""Overlay-native prefix multicast over the simulated substrates.

:class:`MulticastRuntime` subclasses the peer-forwarding
:class:`~repro.core.distributed.DistributedQueryRuntime` and changes
exactly one thing: *where owner resolutions originate*.  The base
runtime resolves every branch owner through the client-facing
``dht.lookup`` — faithful to a put/get service, but every resolution
is an initiator-originated message.  Here each forwarding peer routes
to the next owner **from its own position in the overlay**:

* Chord — greedy finger routing from the peer's own ref
  (``ChordDht._route``);
* Pastry — prefix routing from the peer's own node
  (``PastryDht._route_from``);
* Kademlia — an iterative FIND_NODE whose shortlist starts from the
  peer's own buckets (``KademliaDht._iterative_find``).

The initiator therefore sends exactly **one** message per range query
(to the owner of ``fmd(LCA(R))``, metered as ``stats.mcasts``); every
further hop is peer-to-peer (``stats.mcast_forwards``).  Each native
resolution still embeds one DHT-lookup — the paper's bandwidth
measure is unchanged, so ``lookups``/``batch_rounds``/``rounds`` and
the answers are identical to the client-fan-out path; only ``hops``
(route length, start-position dependent) and the message *origins*
differ.  ``tests/test_mcast.py`` asserts the equality across all
three overlays and both engine planes.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Region
from repro.core.distributed import DistributedQueryRuntime
from repro.core.results import RangeQueryResult
from repro.dht.api import BatchFailure
from repro.dht.hashing import key_digest, xor_distance

#: Agent-address suffix — distinct from the fan-out runtime's
#: ``#mlight`` so both planes can coexist on one network.
MCAST_SUFFIX = "#mcast"


class MulticastRuntime(DistributedQueryRuntime):
    """Prefix multicast: peer-to-peer forwarding with overlay-native
    owner resolution and O(1) initiator-originated messages."""

    suffix = MCAST_SUFFIX

    def _native_owner(self, src_peer: str, key: str) -> str:
        """Resolve *key*'s owner by routing from *src_peer*'s own
        overlay position (duck-typed per substrate)."""
        substrate = self._substrate
        node = substrate._nodes.get(src_peer)
        if node is None:
            raise NodeUnreachableError(
                f"multicast source peer {src_peer!r} left the ring"
            )
        digest = key_digest(key)
        if hasattr(substrate, "_iterative_find"):  # Kademlia
            shortlist = substrate._iterative_find(node, digest)
            live = [
                pair for pair in shortlist if pair[1] in substrate._nodes
            ]
            if not live:
                raise NodeUnreachableError(
                    "iterative lookup returned no live contacts"
                )
            return min(
                live, key=lambda pair: xor_distance(pair[0], digest)
            )[1]
        if hasattr(substrate, "_route_from"):  # Pastry
            return substrate._route_from(node, digest)
        if hasattr(substrate, "_route"):  # Chord
            return substrate._route(node.ref, digest).name
        raise ReproError(
            f"substrate {type(substrate).__name__} exposes no "
            "overlay-native routing entry point"
        )

    # Each native resolution embeds one DHT-lookup (the route really
    # crosses the overlay; the substrate meters its hops) and one
    # peer-to-peer forward.  Metering mirrors the base runtime's
    # ``lookup``/``lookup_many_outcomes`` exactly, so fan-out and
    # multicast agree on every counter except ``hops``.

    def _resolve_target(self, src_peer: str, key: str) -> str:
        stats = self.dht.stats
        stats.lookups += 1
        stats.mcast_forwards += 1
        tracer = self.dht.tracer
        if tracer is None:
            return self._native_owner(src_peer, key)
        with tracer.span("mcast", "route", key=key, src=src_peer):
            return self._native_owner(src_peer, key)

    def _resolve_targets(
        self, src_peer: str, keys: list[Any]
    ) -> list[Any]:
        stats = self.dht.stats
        stats.meter_batch(len(keys))
        stats.mcast_forwards += len(keys)
        outcomes: list[Any] = []
        for key in keys:
            try:
                outcomes.append(self._native_owner(src_peer, key))
            except NodeUnreachableError as error:
                outcomes.append(BatchFailure(error))
        return outcomes

    def query(
        self, query: Region, initiator: str | None = None
    ) -> RangeQueryResult:
        """Run *query* with one initiator-originated message."""
        self.dht.stats.mcasts += 1
        tracer = self.dht.tracer
        if tracer is None:
            return super().query(query, initiator)
        with tracer.span("mcast", "query", initiator=initiator or ""):
            return super().query(query, initiator)
