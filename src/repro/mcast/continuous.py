"""Continuous range queries: subscribe once, receive matching inserts.

:class:`ContinuousQueryPlane` attaches to an
:class:`~repro.core.index.MLightIndex` (via
``index.attach_dissemination``) and observes three structural events:

* **insert** — after the record lands in its leaf, the leaf's
  subscription table (one DHT get to the ``sub:`` rendezvous) is
  matched and every interested client receives a push
  (``stats.pushes``);
* **split** — the origin leaf's table is re-homed exactly like the
  bucket itself (Theorem 5): the survivor's table is rewritten in
  place at the *same* key for free, and only the moved child's table
  is routed — one entry per split;
* **merge** — the moved child's table (stored under the parent's own
  label, mirroring the bucket layout) is removed and unioned into the
  survivor's, rewritten in place — again one entry moved.

Re-homing also pushes **proactive invalidation** notifications to
subscribers: the labels that died and the labels that were born, so a
subscribed client's :class:`~repro.core.cache.LeafCache` drops stale
hints *before* wasting a probe on them (the satellite-3 fix — without
subscriptions, merges are only discovered on probe failure).

Crash tolerance: when the rendezvous owner is down (or lost the
table), matching inserts are queued client-side in ``pending`` and
:meth:`ContinuousQueryPlane.flush_pending` delivers each exactly once
after the owner restarts — PR 9's durable backends replay the table,
so the match set survives the crash.  E15 gates this end to end.

The plane lives with the writing client (the same process that drives
splits and merges), so its ``covered`` label set — the client-side
filter that keeps subscription-free inserts at zero extra cost — stays
exact.  Multiple independent writers would each need their own plane;
coordinating them is out of scope for the reproduction.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import (
    Region,
    RegionLike,
    as_region,
    query_overlaps_cell,
    region_of_label,
)
from repro.core.naming import naming_function
from repro.core.records import Record
from repro.mcast.subscriptions import (
    Subscription,
    SubscriptionTable,
    sub_key,
)
from repro.net.message import Message


def _find_network(dht: Any) -> Any | None:
    """The simulated network under *dht*'s wrapper chain, if any.

    Only an rpc-capable network qualifies: ``ServiceDht`` exposes a
    ``network`` too (a byte-metering transport with no addressing), and
    its deliveries go over wire frames instead
    (:class:`repro.mcast.service.ServiceContinuousPlane`).
    """
    candidate = dht
    while candidate is not None:
        network = getattr(candidate, "network", None)
        if network is not None and hasattr(network, "rpc"):
            return network
        candidate = getattr(candidate, "inner", None)
    return None


class Subscriber:
    """Client-side handle for one continuous query.

    Receives pushed records in ``delivered`` and re-homing
    notifications in ``invalidations``.  When constructed with a
    *cache*, notifications are applied to it proactively (forget dead
    leaf labels, observe born ones).  On a simulated network the
    handle is registered at *address* and deliveries arrive as real
    messages; against ``LocalDht`` the plane calls it directly.
    """

    def __init__(
        self,
        sid: str,
        region: Region,
        address: str,
        cache: Any | None = None,
    ) -> None:
        self.sid = sid
        self.region = region
        self.address = address
        self.cache = cache
        self.delivered: list[Record] = []
        self.invalidations: list[tuple[tuple[str, ...], tuple[str, ...]]] = []

    def handle_rpc(self, message: Message) -> None:
        args, _kwargs = message.payload
        if message.msg_type == "push":
            self.receive(args[0])
        elif message.msg_type == "invalidate":
            self.invalidate(args[0], args[1])
        else:
            raise ReproError(
                f"unknown subscriber RPC {message.msg_type!r}"
            )

    def receive(self, record: Record) -> None:
        self.delivered.append(record)

    def invalidate(
        self, dead: tuple[str, ...], born: tuple[str, ...]
    ) -> None:
        self.invalidations.append((tuple(dead), tuple(born)))
        if self.cache is not None:
            for label in dead:
                self.cache.forget(label)
            for label in born:
                self.cache.observe(label)

    @property
    def delivered_keys(self) -> list[tuple[float, ...]]:
        return [record.key for record in self.delivered]


class ContinuousQueryPlane:
    """Push-based continuous range queries over an m-LIGHT index."""

    def __init__(self, index: Any) -> None:
        self._index = index
        self._dht = index.dht
        self._dims = index.dims
        self._network = _find_network(index.dht)
        self._subscribers: dict[str, Subscriber] = {}
        #: Leaf labels whose subscription table is (believed) non-empty
        #: — the zero-cost client-side filter on the insert path.
        self.covered: set[str] = set()
        #: (leaf label, record) pairs whose rendezvous owner was down
        #: at insert time, awaiting :meth:`flush_pending`.
        self.pending: list[tuple[str, Record]] = []
        self._counter = 0
        index.attach_dissemination(self)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def subscribe(
        self,
        region: RegionLike,
        *,
        client: str | None = None,
        cache: Any | None = None,
    ) -> Subscriber:
        """Register a standing query for *region*; returns the handle.

        Cost: one one-shot range query decomposes the region into its
        covering leaves (the paper's LCA machinery, metered as usual),
        then one table update per covering leaf.  ``stats.subscribes``
        counts the operation.
        """
        region = as_region(region)
        sid = f"sub-{self._counter}"
        self._counter += 1
        address = client if client is not None else f"{sid}@client"
        subscriber = Subscriber(sid, region, address, cache=cache)
        if self._network is not None:
            self._network.register(address, subscriber)
        self._subscribers[address] = subscriber
        self._dht.stats.subscribes += 1
        entry = Subscription(sid, region, address)
        for label in self._covering_leaves(region):
            key = sub_key(naming_function(label, self._dims))
            table = self._dht.get(key)
            if table is None:
                table = SubscriptionTable(label=label)
            table.label = label
            table.add(entry)
            self._dht.put(key, table)
            self.covered.add(label)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Withdraw *subscriber* from every table it appears in."""
        for label in sorted(self.covered):
            name = naming_function(label, self._dims)
            key = sub_key(name)
            table = self._dht.get(key)
            if table is None:
                self.covered.discard(label)
                continue
            if table.discard(subscriber.sid):
                if len(table) == 0:
                    self._dht.remove(key)
                    self.covered.discard(label)
                else:
                    self._dht.put(key, table)
        if self._network is not None:
            self._network.unregister(subscriber.address)
        self._subscribers.pop(subscriber.address, None)

    def flush_pending(self) -> int:
        """Deliver inserts queued while a rendezvous owner was down.

        Each queued record is matched against the (restored) table and
        delivered exactly once; records whose table is *still*
        unreachable stay queued.  Returns the number of pushes made.
        """
        queued, self.pending = self.pending, []
        delivered = 0
        for label, record in queued:
            key = sub_key(naming_function(label, self._dims))
            try:
                table = self._dht.get(key)
            except NodeUnreachableError:
                table = None
            if table is None:
                self.pending.append((label, record))
                continue
            delivered += self._push_matches(key, table, record)
        return delivered

    def _covering_leaves(self, region: Region) -> list[str]:
        """The leaf labels whose cells overlap *region*, discovered by
        one one-shot range query."""
        result = self._index.range_query(region)
        return sorted(
            label
            for label in result.visited_leaves
            if query_overlaps_cell(region, region_of_label(label, self._dims))
        )

    # ------------------------------------------------------------------
    # Index hooks (called by MLightIndex maintenance)
    # ------------------------------------------------------------------

    def on_insert(self, label: str, record: Record) -> None:
        if label not in self.covered:
            return
        key = sub_key(naming_function(label, self._dims))
        try:
            table = self._dht.get(key)
        except NodeUnreachableError:
            table = None
        if table is None:
            # Rendezvous owner down (or table lost until durable
            # replay): queue for exactly-once delivery after restart.
            self.pending.append((label, record))
            return
        self._push_matches(key, table, record)

    def on_split(self, plan: Any) -> None:
        if plan.origin not in self.covered:
            return
        origin_name = naming_function(plan.origin, self._dims)
        origin_key = sub_key(origin_name)
        try:
            table = self._dht.get(origin_key)
        except NodeUnreachableError:
            table = None
        if table is None:
            self.covered.discard(plan.origin)
            return
        self.covered.discard(plan.origin)
        born: list[str] = []
        survivor_table: SubscriptionTable | None = None
        for leaf_label, _records in plan.leaves:
            child = table.overlapping(
                region_of_label(leaf_label, self._dims)
            )
            child.label = leaf_label
            name = naming_function(leaf_label, self._dims)
            if name == origin_name:
                # The survivor shares the origin's name, hence the
                # same ``sub:`` key — rewritten in place for free.
                survivor_table = child
                self._dht.rewrite_local(origin_key, child)
            elif len(child):
                # Exactly the moved bucket's subscriptions are routed.
                self._dht.put(sub_key(name), child)
            if len(child):
                self.covered.add(leaf_label)
            born.append(leaf_label)
        if survivor_table is None:
            raise ReproError(
                f"split plan for {plan.origin!r} kept no survivor"
            )
        self._notify(table, dead=(plan.origin,), born=tuple(born))

    def on_merge(
        self, parent_label: str, child_a: str, child_b: str
    ) -> None:
        if child_a not in self.covered and child_b not in self.covered:
            return
        parent_name = naming_function(parent_label, self._dims)
        # Mirror the bucket layout: the sibling pair's tables sit under
        # ``sub:fmd(p)`` (survivor) and ``sub:p`` (moved).
        merged = SubscriptionTable(label=parent_label)
        survivor_existed = False
        for key, is_moved in (
            (sub_key(parent_name), False),
            (sub_key(parent_label), True),
        ):
            try:
                table = self._dht.get(key)
                if table is not None and is_moved:
                    # The moved child's table transfers: exactly one
                    # entry, like the bucket it shadows (Theorem 5).
                    self._dht.remove(key)
            except NodeUnreachableError:
                table = None
            if table is not None:
                if not is_moved:
                    survivor_existed = True
                merged = merged.merged_with(table)
        merged.label = parent_label
        if survivor_existed:
            # Same name, same key: the survivor's table is rewritten
            # in place for free (Theorem 5).
            self._dht.rewrite_local(sub_key(parent_name), merged)
        elif len(merged):
            # Only the moved child was covered: the merged table is
            # newly homed at the survivor's key — one routed put, the
            # same single movement the bucket itself paid.
            self._dht.put(sub_key(parent_name), merged)
        self.covered.discard(child_a)
        self.covered.discard(child_b)
        if len(merged):
            self.covered.add(parent_label)
        self._notify(
            merged, dead=(child_a, child_b), born=(parent_label,)
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _push_matches(
        self, key: str, table: SubscriptionTable, record: Record
    ) -> int:
        pushed = 0
        for entry in table.matching(record.key):
            self._deliver(key, entry, "push", record)
            pushed += 1
        return pushed

    def _notify(
        self,
        table: SubscriptionTable,
        *,
        dead: tuple[str, ...],
        born: tuple[str, ...],
    ) -> None:
        """Proactive invalidation push to every client in *table*."""
        for address in sorted({entry.client for entry in table}):
            entry = next(e for e in table if e.client == address)
            self._deliver(None, entry, "invalidate", dead, born)

    def _deliver(
        self, key: str | None, entry: Subscription, method: str, *args: Any
    ) -> None:
        self._dht.stats.pushes += 1
        network = self._network
        if network is not None and network.is_registered(entry.client):
            src = entry.client
            if key is not None:
                try:
                    src = self._dht.peer_of(key)
                except Exception:
                    src = entry.client
            try:
                network.rpc(src, entry.client, method, *args)
                return
            except NodeUnreachableError:
                return  # client gone mid-push; drop silently
        subscriber = self._subscribers.get(entry.client)
        if subscriber is not None:
            if method == "push":
                subscriber.receive(args[0])
            else:
                subscriber.invalidate(args[0], args[1])
