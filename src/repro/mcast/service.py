"""Prefix multicast and push delivery over the asyncio service runtime.

The simulated planes (:mod:`repro.mcast.runtime`,
:mod:`repro.mcast.continuous`) ride ``SimNetwork`` RPCs; this module
speaks the real framed wire protocol instead, using the two extension
opcodes:

* :class:`ServiceMulticast` — the client sends **one** ``MCAST`` frame
  to the owner of ``fmd(LCA(R))``; that peer's handler splits the
  region against its local bucket and forwards sub-region ``MCAST``
  frames peer-to-peer (spawned actor tasks, so a peer can forward to
  itself), aggregation flowing back up through the replies.  Cost
  accounting mirrors :class:`~repro.core.distributed` exactly, so
  answers and every :class:`~repro.dht.api.DhtStats` meter except the
  ``mcast*`` counters agree with the client-orchestrated engine.
* :class:`ServiceContinuousPlane` — deliveries travel as ``PUSH``
  frames: the writing client asks the subscription table's owner
  (a request frame), and the owner emits the *unsolicited*
  server-to-client ``PUSH`` frame (``request_id == 0``) that the
  client-side push sink dispatches to the local
  :class:`~repro.mcast.continuous.Subscriber` — the one direction the
  request/reply protocol otherwise lacks.

Handlers and the push sink are installed through
``ServiceDht.install_handler`` / ``set_push_sink``, which re-apply
them on restart, so continuous queries survive a crash-restart cycle
on a durable ring the same way they do on the simulated substrates.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Region
from repro.core.distributed import AgentResult, split_region
from repro.core.keys import bucket_key
from repro.core.lookup import PointLookupCursor
from repro.core.naming import naming_function
from repro.core.rangequery import compute_lca
from repro.core.results import RangeQueryBuilder, RangeQueryResult
from repro.dht.api import Dht
from repro.mcast.continuous import ContinuousQueryPlane
from repro.service.wire import Op, encode_frame, encode_reply


def _find_service(dht: Dht) -> Any:
    """The :class:`~repro.service.node.ServiceDht` under *dht*'s
    wrapper chain (``RetryingDht``/``FaultyDht`` expose ``.inner``)."""
    candidate: Any = dht
    while candidate is not None:
        if hasattr(candidate, "install_handler"):
            return candidate
        candidate = getattr(candidate, "inner", None)
    raise ReproError(
        "the service dissemination plane needs the asyncio service "
        "runtime (ServiceDht); simulated substrates use "
        "repro.mcast.runtime / repro.mcast.continuous instead"
    )


class ServiceMulticast:
    """Prefix multicast spoken as ``MCAST`` wire frames.

    *dht* may be the ``ServiceDht`` itself or a wrapper chain around
    it; metered state (``dht.stats``) lives on the outer facade while
    frames travel through the service runtime underneath.
    """

    def __init__(self, dht: Dht, dims: int, max_depth: int) -> None:
        self.dht = dht
        self.dims = dims
        self.max_depth = max_depth
        self._service = _find_service(dht)
        self._service.install_handler(Op.MCAST, self._handle_mcast)

    # ------------------------------------------------------------------
    # Client side: one initiator-originated frame per query
    # ------------------------------------------------------------------

    def query(self, query: Region) -> RangeQueryResult:
        """Run *query* with one initiator-originated ``MCAST`` frame."""
        stats = self.dht.stats
        stats.mcasts += 1
        lookups_before = stats.lookups
        batch_before = stats.batch_rounds
        lca = compute_lca(query, self.dims, self.max_depth)
        # Routing the one initiator message: one DHT-lookup, one
        # forward — the same accounting MulticastRuntime._resolve_target
        # applies, so meters agree across runtimes.
        stats.lookups += 1
        stats.mcast_forwards += 1
        key = bucket_key(naming_function(lca, self.dims))
        try:
            records, visited, rounds, unresolved = self._service._call(
                Op.MCAST, key, body=(lca, query, query)
            )
            rounds += 1
        except NodeUnreachableError:
            records, visited, rounds, unresolved = [], [], 1, [query]
        builder = RangeQueryBuilder()
        builder.records.extend(records)
        builder.visited_leaves.update(visited)
        builder.rounds = rounds
        builder.lookups = stats.lookups - lookups_before
        builder.batch_rounds = stats.batch_rounds - batch_before
        for region in unresolved:
            builder.mark_unresolved(region)
        return builder.build()

    # ------------------------------------------------------------------
    # Peer side: the MCAST handler (runs on the owning actor)
    # ------------------------------------------------------------------

    async def _handle_mcast(self, peer: Any, frame: Any) -> bytes:
        target, subquery, query = frame.body
        result = await self._execute(peer, target, subquery, query)
        return encode_reply(frame.request_id, result)

    async def _execute(
        self, peer: Any, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        stats = self.dht.stats
        name = naming_function(target, self.dims)
        bucket = peer.store.get(bucket_key(name))
        if bucket is None:
            return await self._fallback(target, subquery, query)
        records, label, branches = split_region(
            bucket, target, subquery, query, self.dims
        )
        if not branches:
            return records, [label], 0, []
        keys = [
            bucket_key(naming_function(branch, self.dims))
            for branch, _ in branches
        ]
        # One batched resolution per node, like forward_all: the branch
        # frames go out together as one parallel round.
        stats.meter_batch(len(keys))
        stats.mcast_forwards += len(keys)
        outcomes = await asyncio.gather(
            *(
                self._forward(key, branch, sub, query)
                for key, (branch, sub) in zip(keys, branches)
            )
        )
        visited = [label]
        deepest = 0
        unresolved: list[Region] = []
        for (
            child_records,
            child_visited,
            child_rounds,
            child_unresolved,
        ) in outcomes:
            records.extend(child_records)
            visited.extend(child_visited)
            unresolved.extend(child_unresolved)
            deepest = max(deepest, child_rounds)
        return records, visited, deepest, unresolved

    async def _forward(
        self, key: str, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        try:
            records, visited, rounds, unresolved = (
                await self._service._request(
                    Op.MCAST, key, body=(target, subquery, query)
                )
            )
        except NodeUnreachableError:
            return [], [], 1, [subquery]
        return records, visited, rounds + 1, unresolved

    async def _fallback(
        self, target: str, subquery: Region, query: Region
    ) -> AgentResult:
        """Missing target bucket: find the covering ancestor leaf by a
        bounded point lookup, issued as GET frames from this actor."""
        stats = self.dht.stats
        cursor = PointLookupCursor(
            stats,
            subquery.lows,
            self.dims,
            self.max_depth,
            max_label_length=len(target) - 1,
        )
        while not cursor.done:
            key = cursor.current_key()
            # Metered like Dht.get — one DHT-lookup, one get per probe.
            stats.lookups += 1
            stats.gets += 1
            try:
                bucket = await self._service._request(Op.GET, key)
            except NodeUnreachableError:
                if not cursor.probe_failed():
                    return [], [], cursor.probes, [subquery]
                continue
            cursor.advance(bucket)
        found = cursor.result
        bucket = found.bucket
        return (
            list(bucket.matching(query)),
            [bucket.label],
            found.rounds,
            [],
        )


class ServiceContinuousPlane(ContinuousQueryPlane):
    """Continuous range queries whose deliveries are ``PUSH`` frames.

    Same client API and re-homing logic as the base plane; only
    delivery differs.  Each push is a request frame to the table
    owner's actor, which emits the unsolicited ``request_id == 0``
    ``PUSH`` frame a client-side sink dispatches to the local
    :class:`~repro.mcast.continuous.Subscriber`.
    """

    def __init__(self, index: Any) -> None:
        self._service = _find_service(index.dht)
        super().__init__(index)
        self._service.install_handler(Op.PUSH, self._handle_push)
        self._service.set_push_sink(self._on_push_frame)

    async def _handle_push(self, peer: Any, frame: Any) -> bytes:
        delivered = await self._service.push_to_clients(
            peer.name, encode_frame(Op.PUSH, 0, frame.body)
        )
        return encode_reply(frame.request_id, delivered)

    def _on_push_frame(self, frame: Any) -> None:
        """Client-side sink for unsolicited frames."""
        if frame.op is not Op.PUSH:
            return
        client, method, args = frame.body
        subscriber = self._subscribers.get(client)
        if subscriber is None:
            return
        if method == "push":
            subscriber.receive(args[0])
        else:
            subscriber.invalidate(args[0], args[1])

    def _deliver(
        self, key: str | None, entry: Any, method: str, *args: Any
    ) -> None:
        self._dht.stats.pushes += 1
        # Invalidations have no table key; any actor can emit the
        # frame, so route by the client id instead.
        route_key = key if key is not None else entry.client
        try:
            self._service._call(
                Op.PUSH, route_key, body=(entry.client, method, list(args))
            )
        except NodeUnreachableError:
            pass  # owner (or client) gone mid-push; drop like the sim
