"""The dissemination plane: prefix multicast + continuous queries.

Two capabilities built on the m-LIGHT label tree (ROADMAP item 4,
grounded in "Optimally Efficient Prefix Search and Multicast in
Structured P2P Networks"):

* :class:`MulticastRuntime` — the initiator routes **one** message to
  the owner of ``fmd(LCA(R))``; agents recursively split the region
  and forward sub-regions peer-to-peer down the label tree, routing
  *from their own overlay position* instead of bouncing every branch
  probe off the client.  Initiator-originated messages drop from
  O(#branches) to O(1); total messages stay within the paper's bound.
* :class:`ContinuousQueryPlane` / :class:`Subscriber` — clients
  subscribe to a region and matching inserts are pushed to them.
  Subscription entries live in the DHT under ``sub:fmd(leaf)`` keys,
  so Theorem 5's exactly-one-bucket split/merge movement carries over:
  re-homing a subscription table moves exactly one entry, and PR 9's
  durable backends replay tables through crash-restart cycles.

:mod:`repro.mcast.service` carries both capabilities onto the asyncio
service plane with ``MCAST``/``PUSH`` wire opcodes.
"""

from repro.mcast.runtime import MCAST_SUFFIX, MulticastRuntime
from repro.mcast.subscriptions import (
    Subscription,
    SubscriptionTable,
    sub_key,
)
from repro.mcast.continuous import ContinuousQueryPlane, Subscriber
from repro.mcast.service import ServiceContinuousPlane, ServiceMulticast

__all__ = [
    "MCAST_SUFFIX",
    "MulticastRuntime",
    "Subscription",
    "SubscriptionTable",
    "sub_key",
    "ContinuousQueryPlane",
    "Subscriber",
    "ServiceContinuousPlane",
    "ServiceMulticast",
]
