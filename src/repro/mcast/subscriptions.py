"""DHT-homed subscription tables for continuous range queries.

A continuous query "push me every insert inside region R" decomposes,
exactly like a one-shot range query, into the leaves whose cells
overlap R.  Each leaf ``λ`` carries a :class:`SubscriptionTable` —
stored in the DHT under ``sub_key(fmd(λ))``, a ``sub:`` key that is
deliberately *not* co-located with the ``ml:`` bucket key (different
digest, possibly a different owner): the table's owner is the push
rendezvous, found by one ordinary DHT-lookup at insert time.

Storing tables as DHT values (instead of peer-local side state) buys
the whole storage stack for free:

* **Theorem 5 re-homing** — a split or merge moves exactly one bucket,
  so the continuous plane moves exactly one subscription table (the
  survivor's ``rewrite_local`` is free, same name ⇒ same key);
* **churn** — tables ride the substrate's ownership handoff like any
  other value;
* **durability** — PR 9's write-ahead backends persist and replay
  tables through crash-restart cycles, which is what lets E15 deliver
  downtime inserts exactly once after recovery.

Tables pickle (durable backends use pickle framing), so entries are
plain frozen dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.common.geometry import Region, query_overlaps_cell

#: Key prefix for subscription tables, parallel to the ``ml:`` bucket
#: namespace.
SUB_PREFIX = "sub:"


def sub_key(name: str) -> str:
    """DHT key of the subscription table homed at bucket name *name*."""
    return SUB_PREFIX + name


@dataclass(frozen=True)
class Subscription:
    """One client's standing interest in a region.

    *client* is the delivery address — a simulated-network address, a
    service client id, or a local callback key, resolved by whichever
    delivery plane hosts the subscription.
    """

    sid: str
    region: Region
    client: str

    def matches(self, point: Sequence[float]) -> bool:
        """Closed containment — continuous queries use the same closed
        boundary semantics as one-shot range queries."""
        return self.region.contains_point_closed(point)


@dataclass
class SubscriptionTable:
    """The subscriptions homed at one leaf bucket.

    ``label`` records the leaf the table was filtered against; it is
    carried (rather than derived from the key) so re-homing code can
    assert it moved the right table.
    """

    label: str
    entries: dict[str, Subscription] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Subscription]:
        return iter(self.entries.values())

    def add(self, subscription: Subscription) -> None:
        self.entries[subscription.sid] = subscription

    def discard(self, sid: str) -> bool:
        """Remove subscription *sid*; True when it was present."""
        return self.entries.pop(sid, None) is not None

    def matching(self, point: Sequence[float]) -> list[Subscription]:
        """Subscriptions whose region contains *point* (closed)."""
        return [sub for sub in self if sub.matches(point)]

    def overlapping(self, cell: Region) -> "SubscriptionTable":
        """A new table for child cell *cell*, keeping the entries whose
        region can still reach a key of that half-open cell.

        Used on split: an entry overlapping both children appears in
        both tables (correctness over conservation — the entry *is*
        interested in both cells)."""
        return SubscriptionTable(
            label=self.label,
            entries={
                sid: sub
                for sid, sub in self.entries.items()
                if query_overlaps_cell(sub.region, cell)
            },
        )

    def merged_with(self, other: "SubscriptionTable") -> "SubscriptionTable":
        """Union of two sibling tables (dedup by sid), for merges."""
        entries = dict(self.entries)
        entries.update(other.entries)
        return SubscriptionTable(label=self.label, entries=entries)
