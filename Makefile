# Convenience targets for the m-LIGHT reproduction.

PYTHON ?= python

.PHONY: install lint test test-faults trace-smoke bench bench-smoke bench-hotpath bench-dataplane bench-adaptive bench-durable bench-mcast bench-full bench-service experiments experiments-full clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

test:
	$(PYTHON) -m pytest tests/

test-faults:
	$(PYTHON) -m pytest tests/test_faults.py tests/test_churn.py tests/test_retry.py
	REPRO_BENCH_SIZE=1500 $(PYTHON) -m pytest benchmarks/test_faults.py -m smoke

trace-smoke:
	$(PYTHON) -m repro.experiments.trace_report --smoke
	$(PYTHON) -m pytest tests/test_obs.py benchmarks/test_trace_overhead.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SIZE=2000 $(PYTHON) -m pytest benchmarks/ -m smoke

bench-hotpath:
	REPRO_BENCH_SIZE=12000 $(PYTHON) -m pytest benchmarks/test_hotpath.py

bench-dataplane:
	REPRO_BENCH_SIZE=12000 REPRO_BENCH_MILLION=1 $(PYTHON) -m pytest benchmarks/test_dataplane.py

bench-adaptive:
	REPRO_BENCH_SIZE=12000 $(PYTHON) -m pytest benchmarks/test_adaptive.py
	$(PYTHON) -m pytest tests/test_adaptive.py

bench-durable:
	REPRO_BENCH_SIZE=12000 $(PYTHON) -m pytest benchmarks/test_durable.py
	$(PYTHON) -m pytest tests/test_durable.py

bench-mcast:
	REPRO_BENCH_SIZE=12000 $(PYTHON) -m pytest benchmarks/test_mcast.py
	$(PYTHON) -m pytest tests/test_mcast.py

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-service:
	$(PYTHON) -m pytest benchmarks/test_service_load.py -m smoke
	$(PYTHON) -m pytest tests/test_service.py tests/test_service_equivalence.py

experiments:
	$(PYTHON) -m repro.experiments.run_all --charts

experiments-full:
	$(PYTHON) -m repro.experiments.run_all --full --csv-dir results/csv

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
