"""Quickstart: build an m-LIGHT index and run every operation once.

Run with::

    python examples/quickstart.py

Set ``REPRO_STORE=list|columnar|numpy`` to pick the bucket record-store
backend; every backend returns identical answers.
"""

import os

from repro import IndexConfig, MLightIndex, Region, create_dht


def main() -> None:
    # An over-DHT index needs only a DHT exposing put/get/lookup; the
    # default runtime simulates 128 peers with consistent hashing.
    # The `store` knob picks how leaf buckets hold their records.
    store = os.environ.get("REPRO_STORE", "columnar")
    config = IndexConfig(dims=2, max_depth=20, split_threshold=8,
                         merge_threshold=4, store=store)
    index = MLightIndex(create_dht(n_peers=128), config)

    # Insert a handful of 2-D records: (key, value).
    songs = [
        ((0.90, 0.70), "Song A: rating 4.5, year 2007"),
        ((0.84, 0.75), "Song B: rating 4.2, year 2007.5"),
        ((0.95, 0.80), "Song C: rating 4.8, year 2008"),
        ((0.40, 0.72), "Song D: rating 2.0, year 2007.2"),
        ((0.88, 0.30), "Song E: rating 4.4, year 2003"),
    ]
    for key, value in songs:
        index.insert(key, value)
    print(f"inserted {index.total_records()} records "
          f"into {index.tree_size()} leaf bucket(s)")

    # Exact-match lookup (Section 5): binary search over the candidate
    # labels, one DHT-get per probe.
    result = index.lookup((0.90, 0.70))
    print(f"lookup reached leaf {result.bucket.label!r} "
          f"in {result.lookups} DHT-lookups")

    # The paper's motivating query: "songs rated above 4 published
    # during 2007 and 2008" — with rating normalised on x and year on y.
    query = Region(lows=(0.8, 0.7), highs=(1.0, 0.8))
    answer = index.range_query(query)
    print(f"range query used {answer.lookups} DHT-lookups over "
          f"{answer.rounds} round(s) and matched:")
    for record in sorted(answer.records, key=lambda r: r.key):
        print(f"  {record.value}")

    # The parallel variant trades bandwidth for latency (Section 6).
    parallel = index.range_query(query, lookahead=4)
    print(f"parallel-4: {parallel.lookups} lookups, "
          f"{parallel.rounds} round(s)")

    # Deletion triggers merges when sibling buckets underflow.
    index.delete((0.40, 0.72))
    print(f"after delete: {index.total_records()} records")


if __name__ == "__main__":
    main()
