"""The service plane: the same index over live asyncio peers.

Every other example runs on the simulated substrates.  This one builds
the index twice — once on the simulator, once on peers that are real
asyncio actors speaking the framed wire protocol — replays the same
workload on both, and shows the answers and index-level cost meters
come out identical, while the service side additionally reports real
wall-clock latency from a short open-loop load run.

Run with::

    python examples/service_plane.py
"""

from repro import IndexConfig, MLightIndex, RuntimeConfig, create_dht
from repro.datasets.synthetic import uniform_points
from repro.service.loadgen import run_load
from repro.workloads.traces import request_trace, run_operation


def replay(runtime: RuntimeConfig, points, trace):
    dht = create_dht(runtime)
    try:
        config = IndexConfig(dims=2, split_threshold=20, merge_threshold=10)
        index = MLightIndex(dht, config)
        index.insert_many(points)
        answers = []
        for operation in trace:
            result = run_operation(index, operation)
            if operation.kind == "lookup":
                answers.append(sorted(r.key for r in result.bucket.records))
            elif operation.kind == "range":
                answers.append(sorted(r.key for r in result.records))
        return answers, dht.stats.snapshot()
    finally:
        close = getattr(dht, "close", None)
        if close is not None:
            close()


def main() -> None:
    points = uniform_points(1500, seed=21)
    trace = request_trace(points, 200, seed=22)

    print("replaying 200 operations on the simulated substrate ...")
    sim_answers, sim_stats = replay(
        RuntimeConfig(kind="sim", overlay="chord", n_peers=8), points, trace
    )
    print("replaying the same trace on live asyncio peers ...")
    svc_answers, svc_stats = replay(
        RuntimeConfig(kind="asyncio", n_peers=8), points, trace
    )

    assert sim_answers == svc_answers
    drift = {
        key for key in sim_stats
        if key != "hops" and sim_stats[key] != svc_stats[key]
    }
    assert not drift, drift
    print("answers and index-level cost meters identical across runtimes "
          "(overlay routing hops excluded).")

    print("\nnow a short open-loop load run against the service plane:")
    dht = create_dht(RuntimeConfig(kind="asyncio", n_peers=8))
    try:
        config = IndexConfig(dims=2, split_threshold=20, merge_threshold=10)
        index = MLightIndex(dht, config)
        index.insert_many(points)
        report = run_load(
            index,
            request_trace(points, 300, seed=23),
            target_qps=150.0,
            runtime_label="asyncio",
            records_loaded=len(points),
            n_peers=8,
        )
    finally:
        dht.close()
    print(report.render())


if __name__ == "__main__":
    main()
