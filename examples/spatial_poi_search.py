"""Spatial point-of-interest search over the NE postal-address surrogate.

Recreates the paper's evaluation setting in miniature: a clustered
2-D address dataset distributed over a 128-peer DHT, queried with
rectangles of growing size.  Also contrasts the threshold and
data-aware splitting strategies on the same data (Section 4).

Run with::

    python examples/spatial_poi_search.py [n_points]

Set ``REPRO_STORE=list|columnar|numpy`` to pick the bucket record-store
backend; answers are identical, only query throughput changes.
"""

import os
import sys
from dataclasses import replace

from repro import IndexConfig, MLightIndex, Region, RuntimeConfig, create_dht
from repro.datasets.northeast import northeast_surrogate
from repro.metrics.loadbalance import empty_bucket_fraction

def build(strategy: str, points, config: IndexConfig) -> MLightIndex:
    dht = create_dht(RuntimeConfig(n_peers=128, virtual_nodes=16))
    index = MLightIndex(dht, replace(config, strategy=strategy))
    for position, point in enumerate(points):
        index.insert(point, value=f"address-{position}")
    return index


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = IndexConfig(dims=2, max_depth=24, split_threshold=50,
                         merge_threshold=25, expected_load=35,
                         store=os.environ.get("REPRO_STORE", "columnar"))
    print(f"generating {n_points} NE-surrogate postal addresses...")
    points = northeast_surrogate(n_points)

    for strategy in ("threshold", "data-aware"):
        index = build(strategy, points, config)
        buckets = list(index.buckets())
        stats = index.dht.stats
        print(f"\n[{strategy}] tree size {len(buckets)}, "
              f"maintenance: {stats.lookups} DHT-lookups, "
              f"{stats.records_moved} records moved, "
              f"{100 * empty_bucket_fraction(buckets):.2f}% empty buckets")

        # A downtown query (dense) and a regional query (sparse+dense).
        queries = {
            "downtown NYC":
                Region((0.45, 0.42), (0.52, 0.49)),
            "NY metro region":
                Region((0.36, 0.30), (0.66, 0.60)),
            "open Atlantic (empty)":
                Region((0.80, 0.05), (0.95, 0.20)),
        }
        for name, query in queries.items():
            result = index.range_query(query)
            print(f"  {name:<24} {len(result.records):>6} hits, "
                  f"{result.lookups:>4} lookups, "
                  f"{result.rounds} rounds")


if __name__ == "__main__":
    main()
