"""Multi-attribute resource search — the paper's motivating use case.

"Finding the songs that are rated above 4 and published during 2007
and 2008" (Section 1): a catalogue of songs with (rating, year, tempo)
attributes is indexed as 3-D keys over a DHT, then searched with
multi-attribute range predicates.  Demonstrates m-dimensional indexing
(m = 3), attribute normalisation, and comparing the basic and parallel
query algorithms.

Run with::

    python examples/multi_attribute_search.py
"""

from repro import IndexConfig, MLightIndex, Region, create_dht
from repro.common.rng import make_rng
from repro.datasets.synthetic import clamp_unit

# Attribute domains.
RATING = (0.0, 5.0)     # stars
YEAR = (1990, 2010)     # release year
TEMPO = (60.0, 200.0)   # beats per minute


def normalise(value: float, domain: tuple[float, float]) -> float:
    low, high = domain
    return clamp_unit((value - low) / (high - low))


def denormalise(value: float, domain: tuple[float, float]) -> float:
    low, high = domain
    return low + value * (high - low)


def make_catalogue(n: int, seed: int = 42):
    """Synthetic songs with correlated attributes (newer songs are
    rated slightly higher, dance tracks cluster in tempo)."""
    rng = make_rng(seed)
    songs = []
    for index in range(n):
        year = rng.uniform(*YEAR)
        rating = min(5.0, max(0.0, rng.gauss(
            2.8 + (year - YEAR[0]) / (YEAR[1] - YEAR[0]), 1.0
        )))
        tempo = rng.choice([rng.gauss(95, 12), rng.gauss(128, 6)])
        tempo = min(TEMPO[1], max(TEMPO[0], tempo))
        songs.append((f"song-{index:05d}", rating, year, tempo))
    return songs


def main() -> None:
    config = IndexConfig(dims=3, max_depth=21, split_threshold=40,
                         merge_threshold=20)
    index = MLightIndex(create_dht(n_peers=128), config)

    songs = make_catalogue(15_000)
    for name, rating, year, tempo in songs:
        key = (
            normalise(rating, RATING),
            normalise(year, YEAR),
            normalise(tempo, TEMPO),
        )
        index.insert(key, value=name)
    print(f"indexed {index.total_records()} songs in "
          f"{index.tree_size()} buckets over 128 peers")

    # The paper's query: rating > 4, year in [2007, 2008], any tempo.
    query = Region(
        lows=(normalise(4.0, RATING), normalise(2007, YEAR), 0.0),
        highs=(1.0, normalise(2008, YEAR), 1.0),
    )
    result = index.range_query(query)
    print(f"\nrated>4 published 2007-2008: {len(result.records)} songs "
          f"({result.lookups} DHT-lookups, {result.rounds} rounds)")

    # Narrower predicate on all three attributes.
    dance = Region(
        lows=(
            normalise(3.5, RATING),
            normalise(2000, YEAR),
            normalise(120, TEMPO),
        ),
        highs=(
            1.0,
            normalise(2010, YEAR),
            normalise(136, TEMPO),
        ),
    )
    result = index.range_query(dance, lookahead=4)
    print(f"modern dance hits (3 predicates): {len(result.records)} songs "
          f"({result.lookups} lookups, {result.rounds} rounds, parallel-4)")
    sample = sorted(result.records, key=lambda r: r.value)[:5]
    for record in sample:
        rating = denormalise(record.key[0], RATING)
        year = denormalise(record.key[1], YEAR)
        tempo = denormalise(record.key[2], TEMPO)
        print(f"  {record.value}: {rating:.1f} stars, "
              f"{year:.0f}, {tempo:.0f} bpm")


if __name__ == "__main__":
    main()
