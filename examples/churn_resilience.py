"""m-LIGHT over a churning Chord ring — crashes included.

The paper runs over Bamboo because it "has good robustness" under
churn; this example demonstrates the same layering with the bundled
Chord substrate: peers join, gracefully leave *and abruptly crash*
while the index keeps answering queries.  Graceful departures hand
their keys off; crashes are covered by DHash-style successor
replication, with the churn driver repairing the replica invariant
between events.  The index layer is oblivious to all of it.

Run with::

    python examples/churn_resilience.py
"""

from repro import IndexConfig, MLightIndex, Region, RuntimeConfig, create_dht
from repro.dht.churn import run_churn
from repro.datasets.northeast import northeast_surrogate


def main() -> None:
    config = IndexConfig(dims=2, max_depth=18, split_threshold=25,
                         merge_threshold=12)
    print("building a 24-peer Chord ring (replication 2)...")
    dht = create_dht(
        RuntimeConfig(kind="sim", overlay="chord", n_peers=24,
                      replication=2)
    )
    index = MLightIndex(dht, config)

    points = northeast_surrogate(1_500, seed=7)
    for position, point in enumerate(points):
        index.insert(point, value=position)
    print(f"indexed {index.total_records()} records; "
          f"overlay hops so far: {dht.stats.hops}")

    query = Region((0.36, 0.30), (0.66, 0.60))
    before = index.range_query(query)
    print(f"before churn: {len(before.records)} hits, "
          f"{before.lookups} DHT-lookups")

    print("\napplying churn: 12 membership events "
          "(joins, graceful leaves and crashes)...")
    report = run_churn(
        dht, 12, join_weight=1.0, leave_weight=1.0, fail_weight=1.0,
        stabilize_rounds=2, seed=11,
    )
    kinds = [event.kind for event in report.events]
    print(f"events: {kinds.count('join')} joins, "
          f"{kinds.count('leave')} leaves, "
          f"{kinds.count('fail')} crashes "
          f"({report.repairs} replica copies repaired); "
          f"key survival {100 * report.survival_ratio:.1f}%")

    after = index.range_query(query)
    print(f"after churn:  {len(after.records)} hits, "
          f"{after.lookups} DHT-lookups")
    assert {r.value for r in after.records} == {
        r.value for r in before.records
    }, "churn must not change query answers"
    print("query answers identical across churn — the index never "
          "noticed the membership changes")


if __name__ == "__main__":
    main()
