"""k-nearest-neighbour search over a bulk-loaded index.

Combines two extensions built on the paper's primitives: bulk loading
(the static Theorem-6 construction) and exact k-NN via expanding-ring
range queries.  Scenario: "find the five closest postal addresses to a
dropped pin", over the NE surrogate dataset.

Run with::

    python examples/nearest_neighbors.py [n_points]
"""

import sys

from repro import IndexConfig, MLightIndex, bulk_load, create_dht
from repro.core.split import DataAwareSplit
from repro.datasets.northeast import northeast_surrogate


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    config = IndexConfig(dims=2, max_depth=24, split_threshold=50,
                         merge_threshold=25, expected_load=35)

    print(f"bulk-loading {n_points} addresses "
          "(data-aware static construction)...")
    points = northeast_surrogate(n_points)
    dht = create_dht(n_peers=128)
    placed = bulk_load(
        dht,
        [(point, f"address-{i}") for i, point in enumerate(points)],
        config,
        DataAwareSplit(config.expected_load),
    )
    stats = dht.stats
    print(f"placed {len(placed)} buckets with {stats.lookups} DHT ops "
          f"and {stats.records_moved} record transfers "
          f"(one put per bucket, one transfer per record)")

    index = MLightIndex(dht, config)  # attaches to the loaded tree

    pins = {
        "Manhattan":        (0.48, 0.45),
        "Boston suburb":    (0.74, 0.73),
        "rural upstate":    (0.25, 0.65),
    }
    for name, pin in pins.items():
        result = index.knn(pin, 5)
        print(f"\n5 nearest to the {name} pin {pin} "
              f"({result.lookups} DHT-lookups, {result.rounds} rounds):")
        for neighbor in result.neighbors:
            print(f"  {neighbor.record.value:<14} at {neighbor.record.key}"
                  f"  distance {neighbor.distance:.4f}")


if __name__ == "__main__":
    main()
