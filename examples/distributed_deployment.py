"""Peer-side query execution over a Chord ring.

The other examples drive the index through a client-style engine (the
OpenDHT deployment).  This one runs the paper's narrated deployment:
every peer hosts a query agent; a range query enters at an arbitrary
peer, hops to the corner cell of its LCA, and fans out peer-to-peer
through branch-node forwards — and the metered costs come out identical
to the client-orchestrated engine, which is why the two deployments are
interchangeable under the paper's cost model.

Run with::

    python examples/distributed_deployment.py
"""

from repro import IndexConfig, MLightIndex, Region, RuntimeConfig, create_dht
from repro.core.distributed import DistributedQueryRuntime
from repro.datasets.northeast import northeast_surrogate


def main() -> None:
    config = IndexConfig(dims=2, max_depth=18, split_threshold=25,
                         merge_threshold=12)
    print("building a 16-peer Chord ring and indexing 3,000 addresses...")
    dht = create_dht(RuntimeConfig(kind="sim", overlay="chord", n_peers=16))
    index = MLightIndex(dht, config)
    for position, point in enumerate(northeast_surrogate(3000, seed=13)):
        index.insert(point, value=position)

    runtime = DistributedQueryRuntime(dht, config.dims, config.max_depth)
    query = Region((0.36, 0.30), (0.66, 0.60))  # the NY metro box

    print("\nclient-orchestrated engine:")
    engine_result = index.range_query(query)
    print(f"  {len(engine_result.records)} hits, "
          f"{engine_result.lookups} DHT-lookups, "
          f"{engine_result.rounds} rounds")

    for initiator in (dht.peers()[0], dht.peers()[7]):
        result = runtime.query(query, initiator=initiator)
        print(f"peer-side execution from {initiator}:")
        print(f"  {len(result.records)} hits, "
              f"{result.lookups} DHT-lookups, {result.rounds} rounds")
        assert {r.value for r in result.records} == {
            r.value for r in engine_result.records
        }
        assert result.lookups == engine_result.lookups
        assert result.rounds == engine_result.rounds

    print("\nidentical answers and identical metered costs from every "
          "entry point — the cost model cannot tell the deployments "
          "apart.")


if __name__ == "__main__":
    main()
