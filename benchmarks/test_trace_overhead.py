"""The tracing-disabled overhead gate.

The observability plane's contract is that *disabled* tracing costs
nothing on the hot path: components hold ``tracer = None`` and every
guard is one attribute load plus an ``is None`` test — no no-op
objects, no dead span allocation.  This module enforces the contract
two ways:

* **structurally** — with ``tracing=False`` no layer of the stack
  (index, engines, planes, substrate facade, simulated network) holds
  a tracer, and no spans exist anywhere after a full fig7-style
  workload;
* **by timing** — fig7 range-query throughput with tracing disabled
  must stay within ``OVERHEAD_TOLERANCE`` (2%) of the *enabled*
  configuration, measured interleaved on the same machine.  Disabled
  ought to be strictly faster; a change that moves work onto the
  disabled path (say, replacing the None-guard with an always-on no-op
  tracer) collapses the gap and trips the gate.

Both rates plus the enabled path's measured overhead are published to
``results/BENCH_trace_overhead.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.common.config import IndexConfig
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht
from repro.workloads.queries import uniform_range_queries

from .conftest import publish

#: Disabled-path throughput may trail enabled-path throughput by at
#: most this fraction (pure run-to-run noise allowance — disabled
#: should win, not merely tie).
OVERHEAD_TOLERANCE = 0.02

_N_POINTS = 4000
_N_QUERIES = 16
_QUERY_SPAN = 0.2


def _build_index(tracing: bool) -> MLightIndex:
    config = IndexConfig(
        dims=2, max_depth=28, split_threshold=100,
        merge_threshold=50, expected_load=70,
        cache_capacity=0, tracing=tracing,
    )
    points = [
        (((i * 2654435761) % 9973) / 9973.0, ((i * 40503) % 9967) / 9967.0)
        for i in range(_N_POINTS)
    ]
    dht = LocalDht(64)
    bulk_load(dht, points, config)
    return MLightIndex(dht, config)


def _throughput(fn, min_time: float = 0.3, repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        rounds = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_time:
            fn()
            rounds += 1
            elapsed = time.perf_counter() - start
        best = max(best, _N_QUERIES * rounds / elapsed)
    return best


@pytest.mark.smoke
def test_tracing_disabled_is_structurally_zero_cost():
    index = _build_index(tracing=False)
    queries = uniform_range_queries(_N_QUERIES, _QUERY_SPAN, seed=20090622)
    for query in queries:
        index.range_query(query)
    index.knn((0.5, 0.5), 3)
    assert index.tracer is None
    layer = index.dht
    while layer is not None:
        assert layer.tracer is None
        network = getattr(layer, "network", None)
        if network is not None:
            assert network.tracer is None
        layer = getattr(layer, "inner", None)


@pytest.mark.smoke
def test_trace_overhead_gate():
    """Disabled tracing within OVERHEAD_TOLERANCE of enabled, fig7 load."""
    index_off = _build_index(tracing=False)
    index_on = _build_index(tracing=True)
    queries = uniform_range_queries(_N_QUERIES, _QUERY_SPAN, seed=20090622)

    def run_off():
        for query in queries:
            index_off.range_query(query)

    def run_on():
        index_on.tracer.clear()  # keep the span list from growing
        for query in queries:
            index_on.range_query(query)

    expected = [index_off.range_query(q).records for q in queries]
    assert [index_on.range_query(q).records for q in queries] == expected

    # Interleave the measurements so thermal/allocator drift hits both.
    off = on = 0.0
    for _ in range(2):
        off = max(off, _throughput(run_off))
        on = max(on, _throughput(run_on))

    index_on.tracer.clear()
    run_on()
    assert len(index_on.tracer.spans) > 0  # enabled path really traces

    overhead_enabled = off / on - 1.0
    publish(
        "BENCH_trace_overhead.json",
        json.dumps(
            {
                "queries_per_sec_tracing_off": round(off, 1),
                "queries_per_sec_tracing_on": round(on, 1),
                "enabled_overhead_fraction": round(overhead_enabled, 4),
            },
            indent=2,
        ),
    )
    assert off >= on * (1.0 - OVERHEAD_TOLERANCE), (
        f"tracing-disabled throughput {off:.0f} q/s fell more than "
        f"{OVERHEAD_TOLERANCE:.0%} below tracing-enabled {on:.0f} q/s — "
        "the disabled path is no longer zero-cost"
    )
