"""Service-plane load benchmark: the `make bench-service` smoke gate.

Drives the open-loop load generator against the asyncio runtime at a
small scale and publishes ``results/BENCH_service_load.json``.  The CI
gate is deliberately loose — achieved throughput must reach at least
half the target — because its job is to catch the runtime falling over
(a stuck event loop, a deadlocked inbox), not to benchmark the host.
The full-scale acceptance run (100k records, 8 peers, 500 QPS for
10 s) is the command-line module itself; see docs/usage.md.
"""

import json

import pytest

from repro.service.loadgen import (
    REPORT_NAME,
    build_loaded_index,
    publish,
    run_load,
)
from repro.workloads.traces import request_trace

from .conftest import RESULTS_DIR

TARGET_QPS = 200.0
DURATION_S = 3.0
#: The CI sanity gate: achieved QPS must be at least this fraction of
#: the target, or the service runtime is considered broken.
MIN_ACHIEVED_FRACTION = 0.5


@pytest.fixture(scope="module")
def load_report():
    index, points = build_loaded_index(
        "asyncio", n_peers=4, n_records=5_000, seed=11
    )
    try:
        operations = request_trace(
            points, round(TARGET_QPS * DURATION_S), seed=11
        )
        report = run_load(
            index,
            operations,
            TARGET_QPS,
            runtime_label="asyncio",
            records_loaded=len(points),
            n_peers=4,
        )
    finally:
        index.dht.close()
    path = publish(report)
    print(f"\n{report.render()}\nwrote {path}")
    return report


@pytest.mark.smoke
def test_achieved_qps_meets_the_gate(load_report):
    assert load_report.achieved_fraction() >= MIN_ACHIEVED_FRACTION, (
        f"service runtime achieved {load_report.achieved_qps:.1f} QPS "
        f"of a {load_report.target_qps:.0f} QPS target "
        f"({load_report.achieved_fraction():.0%}); the gate is "
        f"{MIN_ACHIEVED_FRACTION:.0%}"
    )


@pytest.mark.smoke
def test_operations_actually_completed(load_report):
    """A run that met the rate by failing everything is no pass."""
    assert load_report.completed > 0
    assert load_report.failed == 0
    assert load_report.completed + load_report.failed == (
        load_report.operations
    )


@pytest.mark.smoke
def test_report_artifact_is_published(load_report):
    path = RESULTS_DIR / REPORT_NAME
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["runtime"] == "asyncio"
    assert payload["achieved_qps"] == pytest.approx(
        load_report.achieved_qps
    )
    for key in ("p50", "p95", "p99", "mean", "max"):
        assert payload["latency_ms"][key] >= 0.0
    assert (
        payload["latency_ms"]["p50"]
        <= payload["latency_ms"]["p95"]
        <= payload["latency_ms"]["p99"]
    )
