"""Dissemination-plane benchmark — E15, the multicast + push gate.

Runs :mod:`repro.experiments.mcast_experiment` at benchmark scale and
encodes the ISSUE's two acceptance gates:

* **O(1) initiator messages** — prefix multicast sends exactly one
  initiator-originated message per range query (``stats.mcasts``)
  while client fan-out sends one per branch resolution, and both
  produce identical answers with identical DHT-lookup and round
  meters, on every overlay;
* **exactly-once continuous delivery** — a subscription survives
  splits, merges, and a crash-restart of its rendezvous owner on a
  durable ring, with every matching insert (including those issued
  during the downtime) delivered exactly once.

Artefacts: ``results/BENCH_mcast.json`` (machine-readable samples)
and ``results/e15_mcast.txt`` (the rendered E15 tables).
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.experiments import mcast_experiment

from .conftest import bench_size, publish


def _slice(dataset):
    """E15's costs are per-query and per-ring, not per-point: a couple
    of thousand points already drive deep trees, splits, and merges."""
    return dataset[: min(len(dataset), 2000)]


@pytest.mark.smoke
def test_e15_multicast_and_continuous(dataset, paper_config):
    """E15 with the ISSUE's acceptance gates."""
    points = _slice(dataset)
    mcast = mcast_experiment.run_multicast_efficiency(points, paper_config)
    continuous = mcast_experiment.run_continuous_query(points, paper_config)
    publish(
        "e15_mcast.txt",
        mcast_experiment.render_multicast(mcast)
        + "\n\n"
        + mcast_experiment.render_continuous(continuous),
    )

    document = {
        "bench_size": bench_size(),
        "points": len(points),
        "multicast": [asdict(sample) for sample in mcast],
        "continuous": asdict(continuous),
    }
    publish("BENCH_mcast.json", json.dumps(document, indent=2))

    assert len(mcast) == 3  # chord, kademlia, pastry
    for sample in mcast:
        # Gate 1: the initiator sends exactly one message per query...
        assert sample.mcast_initiator_msgs == sample.queries, (
            f"{sample.overlay}: multicast sent "
            f"{sample.mcast_initiator_msgs} initiator messages for "
            f"{sample.queries} queries — expected exactly one each"
        )
        # ...where fan-out sends one per branch resolution (O(#branches)).
        assert sample.fanout_initiator_msgs > sample.queries, (
            f"{sample.overlay}: fan-out only sent "
            f"{sample.fanout_initiator_msgs} initiator messages — the "
            f"workload never branched, so the O(1) gate is vacuous"
        )
        # Gate 2: moving the resolution into the overlay changes who
        # sends the messages, never the answers or the totals.
        assert sample.answers_equal, f"{sample.overlay}: answers diverged"
        assert sample.lookups_mcast == sample.lookups_fanout, (
            f"{sample.overlay}: lookup totals diverged "
            f"({sample.lookups_fanout} fan-out, {sample.lookups_mcast} "
            f"multicast)"
        )
        assert sample.rounds_mcast == sample.rounds_fanout, (
            f"{sample.overlay}: round totals diverged"
        )

    # Gate 3: exactly-once through churn and crash-restart, with the
    # downtime insert actually exercising the queue-and-flush path.
    assert continuous.queued_down > 0, (
        "no insert was queued while the rendezvous owner was down — "
        "the crash-restart gate is vacuous"
    )
    assert continuous.flushed == continuous.queued_down
    assert continuous.invalidations > 0, (
        "churn produced no proactive invalidations"
    )
    assert continuous.exactly_once, (
        f"delivery was not exactly-once: {continuous.duplicates} "
        f"duplicates, {continuous.missing} missing of "
        f"{continuous.inserts} matching inserts"
    )
