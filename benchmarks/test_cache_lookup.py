"""Client leaf cache under a skewed repeated-region workload.

A client that keeps returning to the same few regions should answer
most lookups with one hinted DHT-get instead of the Section-5 binary
search (~log D probes).  The cache never under-meters: hint probes are
ordinary metered DHT-gets, so the ≥2× reduction asserted here is an
honest count of routed operations.
"""

import itertools
import random
from dataclasses import replace

import pytest

from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht

from .conftest import publish

HOT_KEYS = 32
LOOKUPS = 2000


@pytest.fixture(scope="module")
def loaded_dht(dataset, paper_config):
    """A LocalDht pre-loaded with 8000 points (no client cache)."""
    dht = LocalDht(32)
    index = MLightIndex(dht, paper_config)
    for point in dataset[: min(len(dataset), 8000)]:
        index.insert(point)
    return dht


@pytest.fixture(scope="module")
def skewed_keys(dataset):
    """2000 lookups drawn from 32 hot keys (repeated-region skew)."""
    rng = random.Random(7)
    hot = rng.sample(dataset[: min(len(dataset), 8000)], HOT_KEYS)
    return [rng.choice(hot) for _ in range(LOOKUPS)]


def replay(client, dht, keys):
    """Metered DHT-lookups consumed by replaying *keys* on *client*."""
    before = dht.stats.lookups
    for key in keys:
        client.lookup(key)
    return dht.stats.lookups - before


@pytest.mark.smoke
def test_cache_halves_lookups(loaded_dht, paper_config, skewed_keys):
    uncached = MLightIndex(loaded_dht, paper_config)
    cached = MLightIndex(
        loaded_dht, replace(paper_config, cache_capacity=256)
    )

    uncached_lookups = replay(uncached, loaded_dht, skewed_keys)
    cached_lookups = replay(cached, loaded_dht, skewed_keys)

    stats = loaded_dht.stats
    lines = [
        f"workload: {LOOKUPS} lookups over {HOT_KEYS} hot keys",
        f"uncached DHT-lookups: {uncached_lookups}",
        f"cached DHT-lookups:   {cached_lookups}",
        f"cache hits/stale/misses: {stats.cache_hits}"
        f"/{stats.cache_stale}/{stats.cache_misses}",
    ]
    publish("cache_lookup.txt", "\n".join(lines))

    assert 2 * cached_lookups <= uncached_lookups


@pytest.mark.smoke
def test_warm_cached_lookup_time(benchmark, loaded_dht, paper_config,
                                 skewed_keys):
    """Time a warm hinted lookup (cache already holds every hot leaf)."""
    cached = MLightIndex(
        loaded_dht, replace(paper_config, cache_capacity=256)
    )
    for key in skewed_keys[:200]:
        cached.lookup(key)
    keys = itertools.cycle(skewed_keys)
    benchmark(lambda: cached.lookup(next(keys)))
