"""Hot-path microbenchmarks — the CPU fast paths vs their references.

Times the four optimised inner loops against the straightforward
implementations they replaced (kept in this file, or as shipped
oracles like ``LeafBucket.matching_naive``):

* **label_ops** — ``candidate_string`` (one per point lookup) vs
  per-character Morton assembly from ``coordinate_bits``;
* **region_derivation** — memoized ``region_of_label`` vs a
  bit-by-bit split walk from the unit region;
* **bucket_filtering** — columnar ``LeafBucket.matching`` vs the
  naive full scan;
* **fig7_query_throughput** — end-to-end range queries on a bulk-loaded
  index with the columnar store on vs forced back to the naive scan.

Every benchmark first asserts the two paths return *identical* answers,
then times them.  Results are printed and merged into
``results/BENCH_hotpath.json`` (ops/sec for both paths plus the
speedup), which doubles as the committed regression baseline: the
end-to-end benchmark fails when its measured speedup falls below 70% of
the committed one.  Speedups, not absolute rates, are compared, so the
gate is machine-independent.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.common.geometry import Region, region_of_label, unit_region
from repro.common.labels import (
    candidate_string,
    coordinate_bits,
    root_label,
)
from repro.core.bucket import LeafBucket
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.core.records import Record
from repro.dht.localhash import LocalDht
from repro.workloads.queries import uniform_range_queries

from .conftest import RESULTS_DIR, bench_size, publish

REPORT_PATH = RESULTS_DIR / "BENCH_hotpath.json"

#: The smoke gate: measured end-to-end speedup must stay above this
#: fraction of the committed baseline's.
REGRESSION_TOLERANCE = 0.7

_CANDIDATE_DEPTH = 24
_QUERY_SPAN = 0.2
_N_QUERIES = 16


# ----------------------------------------------------------------------
# Reference ("before") implementations
# ----------------------------------------------------------------------


def candidate_reference(point, max_depth: int) -> str:
    """Pre-packed ``candidate_string``: per-character Morton assembly."""
    dims = len(point)
    per_dim = -(-max_depth // dims)
    expansions = [coordinate_bits(value, per_dim) for value in point]
    interleaved = "".join(
        expansions[position][index]
        for index in range(per_dim)
        for position in range(dims)
    )[:max_depth]
    return root_label(dims) + interleaved


def region_walk(label: str, dims: int) -> Region:
    """Pre-memoization ``region_of_label``: one split per edge bit."""
    region = unit_region(dims)
    for index, bit in enumerate(label[dims + 1 :]):
        lower, upper = region.split(index % dims)
        region = upper if bit == "1" else lower
    return region


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def ops_per_sec(fn, ops: int, min_time: float = 0.15, repeats: int = 3):
    """Best observed rate of *fn* (which performs *ops* operations)."""
    best = 0.0
    for _ in range(repeats):
        rounds = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_time:
            fn()
            rounds += 1
            elapsed = time.perf_counter() - start
        best = max(best, ops * rounds / elapsed)
    return best


@pytest.fixture(scope="module")
def report():
    """Collects per-benchmark entries; merged into the committed JSON
    (and printed) once the module finishes."""
    baseline = {}
    if REPORT_PATH.exists():
        baseline = json.loads(REPORT_PATH.read_text())
    entries: dict[str, dict[str, float]] = {}
    yield {"baseline": baseline, "entries": entries}
    if not entries:
        return
    merged = dict(baseline.get("entries", {}))
    merged.update(entries)
    document = {"bench_size": bench_size(), "entries": merged}
    publish("BENCH_hotpath.json", json.dumps(document, indent=2))


def record_entry(report, name: str, before: float, after: float) -> None:
    report["entries"][name] = {
        "before_ops_per_sec": round(before, 1),
        "after_ops_per_sec": round(after, 1),
        "speedup": round(after / before, 2),
    }


@pytest.fixture(scope="module")
def points(dataset):
    return [tuple(point) for point in dataset]


@pytest.fixture(scope="module")
def loaded_index(dataset, paper_config):
    dht = LocalDht(64)
    bulk_load(dht, dataset, paper_config)
    return MLightIndex(dht, paper_config)


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


@pytest.mark.smoke
def test_label_ops(report, points):
    sample = points[: min(len(points), 2000)]
    for point in sample[:200]:
        assert candidate_string(point, _CANDIDATE_DEPTH) == (
            candidate_reference(point, _CANDIDATE_DEPTH)
        )

    def run_before():
        for point in sample:
            candidate_reference(point, _CANDIDATE_DEPTH)

    def run_after():
        for point in sample:
            candidate_string(point, _CANDIDATE_DEPTH)

    before = ops_per_sec(run_before, len(sample))
    after = ops_per_sec(run_after, len(sample))
    record_entry(report, "label_ops", before, after)
    assert after > before


@pytest.mark.smoke
def test_region_derivation(report, points):
    labels = sorted(
        {
            candidate_string(point, depth)
            for point in points[:600]
            for depth in (6, 10, 14)
        }
    )
    for label in labels[:300]:
        assert region_of_label(label, 2) == region_walk(label, 2)

    def run_before():
        for label in labels:
            region_walk(label, 2)

    def run_after():
        for label in labels:
            region_of_label(label, 2)

    before = ops_per_sec(run_before, len(labels))
    after = ops_per_sec(run_after, len(labels))
    record_entry(report, "region_derivation", before, after)
    assert after > before


@pytest.mark.smoke
def test_bucket_filtering(report, points):
    bucket = LeafBucket(root_label(2), 2)
    for index, point in enumerate(points):
        bucket.add(Record(point, index))
    queries = uniform_range_queries(8, 0.05, seed=20090622)
    for query in queries:
        assert bucket.matching(query) == bucket.matching_naive(query)

    def run_before():
        for query in queries:
            bucket.matching_naive(query)

    def run_after():
        for query in queries:
            bucket.matching(query)

    before = ops_per_sec(run_before, len(queries) * len(points))
    after = ops_per_sec(run_after, len(queries) * len(points))
    record_entry(report, "bucket_filtering", before, after)
    assert after > before


@pytest.mark.smoke
def test_fig7_query_throughput(report, loaded_index):
    """End-to-end range-query throughput, columnar store on vs off.

    Also the CI regression gate: the measured speedup must stay within
    ``REGRESSION_TOLERANCE`` of the committed baseline's (ratio-based,
    so machine speed cancels out).
    """
    index = loaded_index
    queries = uniform_range_queries(_N_QUERIES, _QUERY_SPAN, seed=20090622)

    def run_queries():
        return [sorted(index.range_query(q).records, key=lambda r: r.key)
                for q in queries]

    fast_answers = run_queries()
    original = LeafBucket.matching
    LeafBucket.matching = LeafBucket.matching_naive
    try:
        assert run_queries() == fast_answers
        before = ops_per_sec(run_queries, len(queries), min_time=0.5)
    finally:
        LeafBucket.matching = original
    after = ops_per_sec(run_queries, len(queries), min_time=0.5)
    record_entry(report, "fig7_query_throughput", before, after)

    baseline = report["baseline"].get("entries", {}).get(
        "fig7_query_throughput"
    )
    if baseline:
        measured = after / before
        floor = REGRESSION_TOLERANCE * baseline["speedup"]
        assert measured >= floor, (
            f"end-to-end query speedup regressed: measured "
            f"{measured:.2f}x < {floor:.2f}x "
            f"(70% of committed {baseline['speedup']:.2f}x)"
        )
