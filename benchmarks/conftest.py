"""Shared fixtures for the benchmark suite.

Scale control:

* default — a 12,000-point slice of the NE surrogate, so the whole
  suite finishes in a couple of minutes;
* ``REPRO_BENCH_SIZE=<n>`` — explicit cardinality;
* ``REPRO_BENCH_FULL=1`` — the paper's full 123,593 points.

Each figure bench writes its rendered tables into ``results/`` at the
repository root and prints them, so a plain benchmark run regenerates
the evaluation artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.common.config import IndexConfig
from repro.datasets.northeast import NE_CARDINALITY, northeast_surrogate

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_size() -> int:
    if os.environ.get("REPRO_BENCH_FULL"):
        return NE_CARDINALITY
    return int(os.environ.get("REPRO_BENCH_SIZE", "12000"))


@pytest.fixture(scope="session")
def dataset():
    """The NE surrogate at the configured scale."""
    return northeast_surrogate(bench_size())


@pytest.fixture(scope="session")
def paper_config():
    """The paper's Section 7 parameters (D=28, theta=100, eps=70)."""
    return IndexConfig(
        dims=2, max_depth=28, split_threshold=100,
        merge_threshold=50, expected_load=70,
    )


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
