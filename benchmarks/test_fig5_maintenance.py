"""Figs. 5a-5d — index maintenance cost.

The module fixtures regenerate the paper's four maintenance curves
(tables under ``results/``) and assert their qualitative shape; the
benchmarks time the per-insert maintenance path of each scheme on a
prebuilt index.
"""

import itertools

import pytest

from repro.experiments import fig5
from repro.experiments.harness import build_index

from .conftest import publish


@pytest.fixture(scope="module")
def datasize_series(dataset, paper_config):
    series = fig5.run_datasize_sweep(dataset, paper_config, samples=6)
    publish("fig5ab_maintenance_vs_datasize.txt",
            fig5.render(series, "data size"))
    by_name = {entry.scheme: entry for entry in series}
    # Fig. 5a/5b shapes: linear growth, m-LIGHT < PHT << DST.
    for entry in series:
        assert list(entry.lookups) == sorted(entry.lookups)
    assert by_name["mlight"].lookups[-1] < by_name["pht"].lookups[-1]
    assert by_name["dst"].lookups[-1] > 5 * by_name["pht"].lookups[-1]
    assert (
        by_name["dst"].records_moved[-1]
        > 5 * by_name["pht"].records_moved[-1]
    )
    # "saves about 40% maintenance cost against PHT" — accept 20%+.
    assert by_name["mlight"].lookups[-1] < 0.8 * by_name["pht"].lookups[-1]
    return series


@pytest.fixture(scope="module")
def threshold_series(dataset, paper_config):
    subset = dataset[: min(len(dataset), 8000)]
    series = fig5.run_threshold_sweep(
        subset, paper_config, thresholds=(50, 100, 300, 600, 900)
    )
    publish("fig5cd_maintenance_vs_threshold.txt",
            fig5.render(series, "theta_split"))
    by_name = {entry.scheme: entry for entry in series}
    # Fig. 5c/5d shapes: m-LIGHT/PHT movement roughly flat in theta;
    # DST's movement falls for small thresholds (early saturation).
    dst = by_name["dst"]
    assert dst.records_moved[0] < dst.records_moved[-1]
    mlight = by_name["mlight"]
    spread = max(mlight.lookups) / max(1, min(mlight.lookups))
    assert spread < 2.0  # "insensitive to the value of theta_split"
    return series


@pytest.mark.parametrize("scheme", ["mlight", "pht", "dst"])
def test_fig5_insert_cost(benchmark, dataset, paper_config, scheme,
                          datasize_series, threshold_series):
    """Time one insert (lookup + possible split) on a warm index."""
    index = build_index(scheme, paper_config)
    warmup = dataset[:4000]
    for point in warmup:
        index.insert(point)
    fresh = itertools.cycle(dataset[4000:5000] or dataset[:1000])

    benchmark(lambda: index.insert(next(fresh)))
    assert index.total_records() > len(warmup)
