"""Data-plane benchmarks — the record-store backends head to head.

Runs the same workload through every registered bucket backend
(``list`` / ``columnar`` / ``numpy``):

* **bulk_load** — records/second through :func:`bulk_load` into a
  ``LocalDht``; the numpy backend is fed the coordinate *matrix* so the
  batch Morton/partition path (no per-record ``Record`` objects) is
  what gets timed;
* **fig7_query_throughput** — end-to-end range queries against the
  bulk-loaded index, queries/second per backend, after asserting every
  backend returns identical answers;
* **million_record_bulk_load** — the acceptance-scale run: 1,000,000
  uniform records through the numpy path (set
  ``REPRO_BENCH_MILLION=1``; skipped otherwise so CI stays fast).

Results merge into ``results/BENCH_dataplane.json``.  The CI gate: the
numpy backend's fig7 throughput must reach ``NUMPY_GATE`` (1.5x) of the
columnar backend's at benchmark scale — vectorized mask-reduction has
to actually pay for itself, not just pass equivalence.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.core import npstore
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht
from repro.workloads.queries import uniform_range_queries

from .conftest import RESULTS_DIR, bench_size, publish

REPORT_PATH = RESULTS_DIR / "BENCH_dataplane.json"

BACKENDS = ("list", "columnar", "numpy")

#: numpy fig7 throughput must be at least this multiple of columnar's.
NUMPY_GATE = 1.5

#: The gate only bites at real benchmark scale — tiny buckets measure
#: dispatch overhead, not the scan the backends exist to accelerate.
GATE_MIN_SIZE = 8000

_N_QUERIES = 16
_QUERY_SPAN = 0.2


def dataplane_config(store: str) -> IndexConfig:
    """Paper geometry with buckets sized for backend comparison.

    Buckets hold ~size/8 records (never fewer than 200) so ``matching``
    dominates the query path; the paper's theta=100 buckets are too
    small to separate scan strategies.
    """
    threshold = max(200, bench_size() // 8)
    return IndexConfig(
        dims=2, max_depth=28, split_threshold=threshold,
        merge_threshold=threshold // 2, store=store,
    )


def bulk_items(store: str, dataset):
    """The natural bulk-load input for *store*: the numpy backend gets
    the coordinate matrix (batch path), the others the point list."""
    if store == "numpy" and npstore.HAVE_NUMPY:
        import numpy as np

        return np.asarray(dataset, dtype=np.float64)
    return dataset


@pytest.fixture(scope="module")
def report():
    baseline = {}
    if REPORT_PATH.exists():
        baseline = json.loads(REPORT_PATH.read_text())
    entries: dict[str, dict] = {}
    yield {"baseline": baseline, "entries": entries}
    if not entries:
        return
    merged = dict(baseline.get("entries", {}))
    merged.update(entries)
    document = {"bench_size": bench_size(), "entries": merged}
    publish("BENCH_dataplane.json", json.dumps(document, indent=2))


@pytest.mark.smoke
def test_bulk_load_rate(report, dataset):
    rates: dict[str, float] = {}
    for store in BACKENDS:
        config = dataplane_config(store)
        items = bulk_items(store, dataset)
        best = 0.0
        for _ in range(3):
            dht = LocalDht(64)
            start = time.perf_counter()
            placed = bulk_load(dht, items, config)
            elapsed = time.perf_counter() - start
            loaded = sum(load for _, load in placed)
            assert loaded == len(dataset)
            best = max(best, loaded / elapsed)
        rates[store] = round(best, 1)
    report["entries"]["bulk_load"] = {
        "records_per_sec": rates,
        "records": len(dataset),
    }
    assert all(rate > 0 for rate in rates.values())


@pytest.mark.smoke
def test_fig7_query_throughput(report, dataset):
    """Range-query throughput per backend, identical answers enforced.

    The CI gate lives here: numpy must clear ``NUMPY_GATE`` x columnar
    at benchmark scale, or the vectorized path has stopped earning its
    keep.
    """
    queries = uniform_range_queries(_N_QUERIES, _QUERY_SPAN, seed=20090622)
    rates: dict[str, float] = {}
    answers: dict[str, list] = {}
    for store in BACKENDS:
        config = dataplane_config(store)
        dht = LocalDht(64)
        bulk_load(dht, bulk_items(store, dataset), config)
        index = MLightIndex(dht, config)

        # Equivalence checked on sorted answers; the timed loop runs
        # the raw queries, so it measures the data plane rather than
        # the comparison scaffolding.
        answers[store] = [
            sorted(index.range_query(q).records, key=lambda r: r.key)
            for q in queries
        ]

        def run_queries():
            for q in queries:
                index.range_query(q)

        best = 0.0
        for _ in range(3):
            rounds = 0
            start = time.perf_counter()
            elapsed = 0.0
            while elapsed < 0.5:
                run_queries()
                rounds += 1
                elapsed = time.perf_counter() - start
            best = max(best, len(queries) * rounds / elapsed)
        rates[store] = round(best, 1)

    for store in BACKENDS[1:]:
        assert answers[store] == answers["list"], (
            f"{store} answers differ from the list oracle"
        )

    entry: dict = {"queries_per_sec": rates}
    if npstore.HAVE_NUMPY:
        ratio = rates["numpy"] / rates["columnar"]
        entry["numpy_vs_columnar"] = round(ratio, 2)
        if bench_size() >= GATE_MIN_SIZE:
            assert ratio >= NUMPY_GATE, (
                f"numpy fig7 throughput {rates['numpy']:.0f} q/s is only "
                f"{ratio:.2f}x columnar's {rates['columnar']:.0f} q/s "
                f"(gate {NUMPY_GATE}x at size {bench_size()})"
            )
    report["entries"]["fig7_query_throughput"] = entry


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_MILLION"),
    reason="set REPRO_BENCH_MILLION=1 for the 1M-record acceptance run",
)
@pytest.mark.skipif(
    not npstore.HAVE_NUMPY, reason="acceptance run exercises the numpy path"
)
def test_million_record_bulk_load(report):
    """Acceptance scale: one million records through the numpy path."""
    import numpy as np

    n_records = 1_000_000
    seed = np.random.default_rng(20090622)
    points = seed.random((n_records, 2))
    config = IndexConfig(
        dims=2, max_depth=28, split_threshold=4096,
        merge_threshold=2048, store="numpy",
    )
    dht = LocalDht(64)
    start = time.perf_counter()
    placed = bulk_load(dht, points, config)
    elapsed = time.perf_counter() - start
    assert sum(load for _, load in placed) == n_records

    index = MLightIndex(dht, config)
    rng = random.Random(20090622)
    for _ in range(4):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        result = index.range_query(Region((x, y), (x + 0.05, y + 0.05)))
        expected = int(n_records * 0.05 * 0.05)
        assert 0.5 * expected <= len(result.records) <= 2.0 * expected

    report["entries"]["million_record_bulk_load"] = {
        "records": n_records,
        "seconds": round(elapsed, 2),
        "records_per_sec": round(n_records / elapsed, 1),
        "leaf_buckets": index.tree_size(),
    }
