"""Adaptive-plane benchmark — E13, the skewed-read relief gate.

Runs :mod:`repro.experiments.skew_experiment` at benchmark scale: a
Zipf(1.1) open-loop request stream against an 8-peer Chord ring under
queueing latency, once with the index as-is and once with
``IndexConfig(adaptive=...)`` enabling hotspot replication and learned
routing shortcuts.

The CI gate: the adaptive mode must improve **both** p99 lookup
latency and max-peer query load by at least ``RELIEF_GATE`` (2x) over
the non-adaptive baseline, while returning bit-identical answers
(equal digests) at recall 1.0 — adaptivity must be a pure performance
layer, never a correctness trade.

Artefacts: ``results/BENCH_adaptive.json`` (machine-readable samples
and ratios) and ``results/e13_adaptive_skew.txt`` (the rendered E13
table).
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.experiments import skew_experiment

from .conftest import bench_size, publish

#: Both relief ratios (p99 latency, max-peer load) must clear this.
RELIEF_GATE = 2.0

#: Below this scale the tree is too small for stable queueing numbers;
#: the equivalence assertions still run, the relief gate does not.
GATE_MIN_SIZE = 2000


def _n_ops() -> int:
    """Stream length scaled so the measured window dominates warm-up."""
    size = bench_size()
    if size >= 100_000:
        return 8000
    if size >= 8000:
        return 4000
    return 2000


@pytest.mark.smoke
def test_e13_adaptive_skew_relief(dataset, paper_config):
    """E13 with the ISSUE's acceptance gate."""
    samples = skew_experiment.run_skew_experiment(
        dataset, paper_config, n_ops=_n_ops()
    )
    baseline, adaptive = samples
    publish("e13_adaptive_skew.txt", skew_experiment.render(samples))

    p99_ratio = baseline.latency["p99"] / max(adaptive.latency["p99"], 1e-9)
    load_ratio = baseline.max_peer_load / max(adaptive.max_peer_load, 1)
    document = {
        "bench_size": bench_size(),
        "n_ops": _n_ops(),
        "skew": baseline.skew,
        "gate": RELIEF_GATE,
        "p99_ratio": round(p99_ratio, 2),
        "max_peer_load_ratio": round(load_ratio, 2),
        "answers_equal": baseline.answers_digest == adaptive.answers_digest,
        "samples": [asdict(sample) for sample in samples],
    }
    publish("BENCH_adaptive.json", json.dumps(document, indent=2))

    # Correctness is unconditional: same answers, full recall, and the
    # plane must actually have engaged (otherwise the ratios measure
    # noise, not relief).
    assert baseline.answers_digest == adaptive.answers_digest, (
        "adaptive answers diverged from the baseline"
    )
    assert baseline.recall == 1.0 and adaptive.recall == 1.0
    assert adaptive.shortcut_hits > 0 and adaptive.promotions > 0

    if bench_size() < GATE_MIN_SIZE:
        return
    assert p99_ratio >= RELIEF_GATE, (
        f"adaptive p99 {adaptive.latency['p99']:.1f} is only "
        f"{p99_ratio:.2f}x better than baseline "
        f"{baseline.latency['p99']:.1f} (gate {RELIEF_GATE}x)"
    )
    assert load_ratio >= RELIEF_GATE, (
        f"adaptive max-peer load {adaptive.max_peer_load} is only "
        f"{load_ratio:.2f}x better than baseline "
        f"{baseline.max_peer_load} (gate {RELIEF_GATE}x)"
    )
