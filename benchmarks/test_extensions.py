"""Extension experiments and features: E9/E10 tables, k-NN and
aggregation timings."""

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.core.aggregate import count_in
from repro.experiments import churn_experiment, scaling
from repro.experiments.harness import build_index
from repro.workloads.queries import point_queries

from .conftest import publish


@pytest.fixture(scope="module")
def scaling_samples(paper_config):
    samples = scaling.run_dimensionality_sweep(
        3000, paper_config, dims_list=(1, 2, 3, 4)
    )
    publish("e9_dimensionality.txt", scaling.render(samples))
    probes = [s.mean_lookup_probes for s in samples]
    assert max(probes) - min(probes) < 2.0  # lookup is O(log D), not O(m)
    lookups = [s.mean_query_lookups for s in samples]
    assert lookups[0] < lookups[-1]  # boundary growth with m
    return samples


@pytest.fixture(scope="module")
def churn_samples(dataset, paper_config):
    config = IndexConfig(
        dims=2, max_depth=18, split_threshold=50, merge_threshold=25
    )
    samples = churn_experiment.run_churn_availability(
        dataset[:1500], config, replication_factors=(1, 2, 3),
        n_peers=16, n_crashes=3,
    )
    publish("e10_churn_availability.txt", churn_experiment.render(samples))
    by_factor = {s.replication: s for s in samples}
    assert by_factor[3].recall >= by_factor[1].recall
    assert by_factor[3].recall == 1.0
    return samples


def test_e9_dimensionality_table(benchmark, scaling_samples, paper_config):
    """Time a 3-D lookup on a built index (the E9 workload's probe)."""
    from dataclasses import replace

    config = replace(paper_config, dims=3)
    index = build_index("mlight", config)
    from repro.datasets.synthetic import uniform_points

    points = uniform_points(3000, dims=3, seed=1)
    for point in points:
        index.insert(point)
    keys = point_queries(points, 64, seed=2)
    state = {"i": 0}

    def one_lookup():
        key = keys[state["i"] % len(keys)]
        state["i"] += 1
        return index.lookup(key)

    benchmark(one_lookup)


def test_e10_churn_table(benchmark, churn_samples, dataset, paper_config):
    """Time replica repair on a replicated ring (the E10 hot path)."""
    from repro.dht.chord import ChordDht
    from repro.core.index import MLightIndex

    config = IndexConfig(
        dims=2, max_depth=18, split_threshold=50, merge_threshold=25
    )
    dht = ChordDht.build(16, replication=3)
    index = MLightIndex(dht, config)
    for point in dataset[:800]:
        index.insert(point)

    benchmark.pedantic(dht.repair_replicas, rounds=3, iterations=1)


@pytest.fixture(scope="module")
def mixed_samples(dataset, paper_config):
    from repro.experiments import mixed_workload

    samples = mixed_workload.run_mixed_workload(
        dataset[:6000], paper_config, delete_fraction=0.4
    )
    publish("e11_mixed_workload.txt", mixed_workload.render(samples))
    by_name = {s.scheme: s for s in samples}
    assert by_name["mlight"].lookups < by_name["pht"].lookups
    assert (
        by_name["mlight"].records_moved < by_name["pht"].records_moved
    )
    return samples


def test_e11_mixed_workload_delete(benchmark, mixed_samples, dataset,
                                   paper_config):
    """Time a delete (lookup + possible merge cascade) on m-LIGHT."""
    index = build_index("mlight", paper_config)
    live = list(dataset[:5000])
    for point in live:
        index.insert(point)
    state = {"i": 0}

    def delete_and_reinsert():
        point = live[state["i"] % len(live)]
        state["i"] += 1
        index.delete(point)
        index.insert(point)

    benchmark(delete_and_reinsert)


def test_knn_query_time(benchmark, dataset, paper_config):
    """Time an exact 10-NN on the NE surrogate."""
    index = build_index("mlight", paper_config)
    for point in dataset[:8000]:
        index.insert(point)
    pins = point_queries(dataset[:8000], 32, seed=3)
    state = {"i": 0}

    def one_knn():
        pin = pins[state["i"] % len(pins)]
        state["i"] += 1
        return index.knn(pin, 10)

    result = benchmark(one_knn)
    assert len(result.neighbors) == 10


def test_aggregate_query_time(benchmark, dataset, paper_config):
    """Time a COUNT over a mid-size region."""
    index = build_index("mlight", paper_config)
    for point in dataset[:8000]:
        index.insert(point)
    query = Region((0.36, 0.30), (0.66, 0.60))

    result = benchmark(lambda: count_in(index, query))
    assert result.aggregate.count > 0
