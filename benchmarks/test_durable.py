"""Durability-plane benchmark — E14, the crash-restart recovery gate.

Runs :mod:`repro.experiments.restart_experiment` at benchmark scale: an
m-LIGHT tree over a 16-peer durable Chord ring, a three-crash burst,
optional inserts while the victims are down, then ``Dht.restart`` on
every victim.

The CI gates encode the restart analogue of the paper's Theorem 5
locality argument — recovery work tracks ownership churn, never data
size:

* with a durable backend every cell recovers to recall 1.0 while the
  crash itself visibly degrades recall (otherwise the experiment
  measured nothing);
* the cell with **zero** downtime writes moves **zero** repair bytes —
  replay is purely local;
* with downtime writes, repair traffic stays a small fraction of the
  whole store (``REPAIR_BYTES_FRACTION``) and the repaired key count a
  small fraction of the stored keys (``REPAIR_KEYS_FRACTION``).

Artefacts: ``results/BENCH_durable.json`` (machine-readable samples
and ratios) and ``results/e14_restart_recovery.txt`` (the rendered
E14 table).
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.experiments import restart_experiment

from .conftest import bench_size, publish

#: Repair traffic must stay below this fraction of the whole store's
#: wire size — sublinear in data size, linear in downtime churn.
REPAIR_BYTES_FRACTION = 0.25

#: Keys moved during recovery must stay below this fraction of the
#: distinct keys stored ring-wide.
REPAIR_KEYS_FRACTION = 0.25


def _slice(dataset):
    """E14 runs at the E10/E12 "tiny" scale: restart latency is per-ring
    work, not per-point, so a few thousand points exercise every path."""
    return dataset[: min(len(dataset), 2000)]


@pytest.mark.smoke
def test_e14_restart_recovery(dataset, paper_config):
    """E14 with the ISSUE's acceptance gates."""
    points = _slice(dataset)
    samples = restart_experiment.run_restart_recovery(points, paper_config)
    publish(
        "e14_restart_recovery.txt", restart_experiment.render(samples)
    )

    durable = [s for s in samples if s.durability != "none"]
    baseline = [s for s in samples if s.durability == "none"]
    assert durable and baseline

    document = {
        "bench_size": bench_size(),
        "points": len(points),
        "repair_bytes_fraction_gate": REPAIR_BYTES_FRACTION,
        "repair_keys_fraction_gate": REPAIR_KEYS_FRACTION,
        "samples": [asdict(sample) for sample in samples],
    }
    publish("BENCH_durable.json", json.dumps(document, indent=2))

    for sample in durable:
        # The crash must actually cost recall (else the recovery gate
        # is vacuous), and restart must win all of it back.
        assert sample.recall_down < 1.0, (
            f"{sample.durability}/{sample.inserts_down}: crash burst "
            f"did not degrade recall — nothing to recover"
        )
        assert sample.recall_after == 1.0, (
            f"{sample.durability}/{sample.inserts_down}: recall only "
            f"recovered to {sample.recall_after:.3f} after restart"
        )
        assert sample.replayed > 0, "durable restart replayed no keys"
        if sample.inserts_down == 0:
            assert sample.repair_bytes == 0, (
                f"restart with no downtime writes moved "
                f"{sample.repair_bytes} repair bytes — recovery work "
                f"must track ownership churn, not store size"
            )
        else:
            bound = sample.store_bytes * REPAIR_BYTES_FRACTION
            assert sample.repair_bytes <= bound, (
                f"repair traffic {sample.repair_bytes}B exceeds "
                f"{REPAIR_BYTES_FRACTION:.0%} of the "
                f"{sample.store_bytes}B store"
            )
            assert (
                sample.repaired
                <= sample.store_keys * REPAIR_KEYS_FRACTION
            ), (
                f"{sample.repaired} repaired keys exceeds "
                f"{REPAIR_KEYS_FRACTION:.0%} of the "
                f"{sample.store_keys}-key store"
            )

    # The no-durability baseline brings routing back but not the data.
    for sample in baseline:
        assert sample.replayed == 0 and sample.repair_bytes == 0
        assert sample.recall_after < 1.0, (
            "rejoining empty peers recovered full recall — the crash "
            "burst lost no owned buckets, so the durable comparison "
            "is vacuous"
        )
