"""Figs. 6a-6b — storage load balance of the splitting strategies.

Regenerates the threshold-vs-data-aware comparison and asserts the
paper's headline effect (data-aware splitting produces fewer empty
buckets and a tighter bucket-load distribution), then times the two
strategies' insert paths.
"""

import itertools

import pytest

from repro.experiments import fig6
from repro.experiments.harness import build_index

from .conftest import publish


@pytest.fixture(scope="module")
def loadbalance_series(dataset, paper_config):
    series = fig6.run_loadbalance_experiment(
        dataset, paper_config, n_samples=6
    )
    publish("fig6ab_load_balance.txt", fig6.render(series))
    by_name = {entry.strategy: entry for entry in series}
    threshold = by_name["threshold"].samples
    data_aware = by_name["data-aware"].samples
    # Fig. 6b: data-aware splitting produces fewer empty buckets
    # (paper: ~35% fewer), comparing the grown trees.
    assert (
        data_aware[-1].empty_fraction <= threshold[-1].empty_fraction
    )
    # Fig. 6a: bucket-load distribution no worse under data-aware
    # splitting at full size (paper: ~15% lower variance).
    assert (
        data_aware[-1].bucket_variance
        <= threshold[-1].bucket_variance * 1.1
    )
    return series


@pytest.mark.parametrize("scheme", ["mlight", "mlight-da"])
def test_fig6_strategy_insert_cost(benchmark, dataset, paper_config,
                                   scheme, loadbalance_series):
    """Time one insert under each splitting strategy.

    The data-aware strategy runs Algorithm 1 on every load change, so
    this measures its local-computation overhead directly.
    """
    index = build_index(scheme, paper_config)
    for point in dataset[:4000]:
        index.insert(point)
    fresh = itertools.cycle(dataset[4000:5000] or dataset[:1000])
    benchmark(lambda: index.insert(next(fresh)))
