"""E12 table and fault-plane timings: recall and retry cost vs
injected fault rate, plus the overhead of the injection wrapper."""

import pytest

from repro.common.config import IndexConfig
from repro.core.index import MLightIndex
from repro.dht.faults import FaultPlan, FaultyDht
from repro.dht.localhash import LocalDht
from repro.dht.retry import RetryingDht
from repro.experiments import fault_experiment
from repro.workloads.queries import uniform_range_queries

from .conftest import publish


@pytest.fixture(scope="module")
def fault_samples(dataset, paper_config):
    config = IndexConfig(
        dims=2, max_depth=18, split_threshold=50, merge_threshold=25
    )
    samples = fault_experiment.run_fault_recall(
        dataset[:1200], config,
        fault_rates=(0.0, 0.1, 0.2, 0.3),
        replication_factors=(1, 2, 3),
        n_peers=16,
    )
    publish("e12_fault_recall.txt", fault_experiment.render(samples))

    by_cell = {(s.replication, s.fault_rate): s for s in samples}
    # Zero faults, replication >= 2: the crash is repaired, nothing is
    # injected, and recall is exact.
    for replication in (2, 3):
        clean = by_cell[(replication, 0.0)]
        assert clean.recall == 1.0
        assert clean.faults_injected == 0
        assert clean.degraded == 0
        assert clean.retries == 0
    # Positive rates really inject, and the retry budget really pays:
    # retries and backoff grow with the rate.
    for replication in (1, 2, 3):
        hot = by_cell[(replication, 0.3)]
        assert hot.faults_injected > 0
        assert hot.retries > 0
        assert hot.backoff_waits > 0
        assert hot.retries >= by_cell[(replication, 0.1)].retries
    return samples


@pytest.mark.smoke
def test_e12_fault_recall_table(benchmark, fault_samples):
    """Time one degraded range query through the full resilience stack
    (fault plane + retries) — the E12 hot path."""
    config = IndexConfig(
        dims=2, max_depth=14, split_threshold=20, merge_threshold=10
    )
    faulty = FaultyDht(LocalDht(16), FaultPlan(3, drop_rate=0.15))
    dht = RetryingDht(faulty, attempts=3, backoff_base=0.01)
    index = MLightIndex(dht, config)
    from repro.datasets.synthetic import uniform_points

    with faulty.suspended():
        for point in uniform_points(2000, dims=2, seed=4):
            index.insert(point)
    queries = uniform_range_queries(32, 0.2, dims=2, seed=5)
    state = {"i": 0}

    def one_query():
        query = queries[state["i"] % len(queries)]
        state["i"] += 1
        return index.range_query(query)

    benchmark(one_query)


@pytest.mark.smoke
def test_fault_wrapper_overhead(benchmark, dataset):
    """A zero-rate plan should cost near-nothing on the query path."""
    config = IndexConfig(
        dims=2, max_depth=14, split_threshold=20, merge_threshold=10
    )
    faulty = FaultyDht(LocalDht(16), FaultPlan(0))
    index = MLightIndex(RetryingDht(faulty), config)
    for point in dataset[:2000]:
        index.insert(point)
    queries = uniform_range_queries(32, 0.2, dims=2, seed=6)
    state = {"i": 0}

    def one_query():
        query = queries[state["i"] % len(queries)]
        state["i"] += 1
        result = index.range_query(query)
        assert result.complete
        return result

    benchmark(one_query)
