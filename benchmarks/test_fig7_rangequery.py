"""Figs. 7a-7b — range-query bandwidth and latency.

Regenerates the five-variant comparison across range spans (tables
under ``results/``) and asserts the paper's orderings, then times one
representative query per variant on prebuilt indexes.  A third table
(fig7c) replays the lookahead sweep on a Chord ring over the simulated
network, where latency is *measured* as simulated clock time — each
batched round costs its critical path, not the sum of its probes — so
the rounds proxy of Fig. 7b is checked against an actual clock.
"""

import pytest

from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.experiments import fig7
from repro.experiments.harness import build_index
from repro.workloads.queries import uniform_range_queries

from .conftest import publish

#: Spans used by the timed benchmarks (the table uses DEFAULT_SPANS).
_BENCH_SPAN = 0.2

#: Span for the simulated-clock sweep: wide enough that the basic
#: variant needs several waves, so lookahead has latency to reclaim.
_CLOCK_SPAN = 0.5


@pytest.fixture(scope="module")
def query_dataset(dataset):
    # Range queries over DST at full depth are the costliest part of
    # the suite; cap the build size so the bench stays snappy while
    # REPRO_BENCH_FULL still exercises the paper's cardinality.
    return dataset


@pytest.fixture(scope="module")
def rangequery_series(query_dataset, paper_config):
    series = fig7.run_rangequery_experiment(
        query_dataset, paper_config, queries_per_span=10
    )
    publish("fig7ab_range_query.txt", fig7.render(series))
    by_name = {entry.variant: entry for entry in series}
    spans = by_name["mlight-basic"].spans
    for position in range(len(spans)):
        basic_bw = by_name["mlight-basic"].bandwidth[position]
        # Fig. 7a: m-LIGHT basic is the most bandwidth-efficient;
        # DST is an order of magnitude above everyone.
        assert basic_bw <= by_name["mlight-parallel-2"].bandwidth[position]
        assert basic_bw < by_name["pht"].bandwidth[position]
        assert by_name["dst"].bandwidth[position] > 5 * basic_bw
        # Fig. 7b: parallel-4 <= parallel-2 <= basic <= PHT.
        assert (
            by_name["mlight-parallel-4"].latency[position]
            <= by_name["mlight-parallel-2"].latency[position]
            <= by_name["mlight-basic"].latency[position]
            <= by_name["pht"].latency[position]
        )
    # Fig. 7b: DST wins for small ranges but degrades with span.
    dst = by_name["dst"].latency
    assert dst[0] <= by_name["mlight-basic"].latency[0]
    assert dst[-1] > dst[0]
    return series


@pytest.fixture(scope="module")
def chord_index(query_dataset, paper_config):
    """An m-LIGHT index bulk-loaded onto a Chord ring over SimNetwork."""
    dht = ChordDht.build(32)
    points = query_dataset[: min(len(query_dataset), 4000)]
    bulk_load(dht, points, paper_config)
    return MLightIndex(dht, paper_config), dht.network


@pytest.mark.smoke
def test_fig7c_critical_path_latency(chord_index):
    """Fig. 7b's premise on a real clock: with each batched round
    charged its critical path, lookahead=4 answers the same queries in
    less simulated time than the basic variant while spending more
    lookups (the paper's bandwidth-for-latency trade)."""
    index, network = chord_index
    queries = uniform_range_queries(8, _CLOCK_SPAN, seed=20090622)
    elapsed, rounds, lookups = {}, {}, {}
    for lookahead in (1, 2, 4):
        start = network.clock.now
        rounds[lookahead] = lookups[lookahead] = 0
        for query in queries:
            result = index.range_query(query, lookahead=lookahead)
            rounds[lookahead] += result.rounds
            lookups[lookahead] += result.lookups
        elapsed[lookahead] = network.clock.now - start

    lines = [
        f"{len(queries)} queries of span {_CLOCK_SPAN} on a 32-peer "
        "Chord ring (simulated clock, per-round critical path)",
        f"{'lookahead':>9}  {'rounds':>6}  {'lookups':>7}  "
        f"{'sim latency':>11}",
    ]
    for lookahead in (1, 2, 4):
        lines.append(
            f"{lookahead:>9}  {rounds[lookahead]:>6}  "
            f"{lookups[lookahead]:>7}  {elapsed[lookahead]:>11.1f}"
        )
    publish("fig7c_critical_latency.txt", "\n".join(lines))

    assert elapsed[4] < elapsed[1]
    assert rounds[4] < rounds[1]
    assert lookups[4] >= lookups[1]


@pytest.fixture(scope="module")
def built_indexes(query_dataset, paper_config):
    indexes = {}
    for scheme in ("mlight", "pht", "dst"):
        index = build_index(scheme, paper_config)
        for point in query_dataset:
            index.insert(point)
        indexes[scheme] = index
    return indexes


@pytest.mark.parametrize(
    "variant, scheme, lookahead",
    [
        ("mlight-basic", "mlight", 1),
        ("mlight-parallel-2", "mlight", 2),
        ("mlight-parallel-4", "mlight", 4),
        ("pht", "pht", None),
        ("dst", "dst", None),
    ],
)
def test_fig7_query_time(benchmark, built_indexes, rangequery_series,
                         variant, scheme, lookahead):
    """Wall-clock time of one mid-size range query per variant."""
    index = built_indexes[scheme]
    queries = uniform_range_queries(16, _BENCH_SPAN, seed=20090622)
    state = {"position": 0}

    def run_one():
        query = queries[state["position"] % len(queries)]
        state["position"] += 1
        if lookahead is None:
            return index.range_query(query)
        return index.range_query(query, lookahead=lookahead)

    result = benchmark(run_one)
    assert result.records is not None
