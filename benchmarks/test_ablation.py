"""Ablation benchmarks A1-A3 (design choices called out in DESIGN.md).

A1: the naming function — versus the identity label-to-key mapping.
A2: binary-search lookup — versus linear probing.
A3: DHT substrate swap — index costs must be substrate-invariant.
"""

import itertools

import pytest

from repro.experiments import ablation
from repro.experiments.harness import build_index
from repro.workloads.queries import point_queries

from .conftest import publish


@pytest.fixture(scope="module")
def ablation_dataset(dataset):
    return dataset[: min(len(dataset), 8000)]


@pytest.fixture(scope="module")
def naming_rows(ablation_dataset, paper_config):
    rows = ablation.run_naming_ablation(ablation_dataset, paper_config)
    publish("ablation_a1_naming.txt",
            ablation.render(rows, "A1: naming function vs naive mapping"))
    by_name = {row.name: row for row in rows}
    assert by_name["mlight"].lookups < by_name["naive-mapping"].lookups
    assert (
        by_name["mlight"].records_moved
        < by_name["naive-mapping"].records_moved
    )
    return rows


@pytest.fixture(scope="module")
def lookup_rows(ablation_dataset, paper_config):
    keys = point_queries(ablation_dataset, 300, seed=1)
    rows = ablation.run_lookup_ablation(
        ablation_dataset, keys, paper_config
    )
    publish("ablation_a2_lookup.txt",
            ablation.render(rows, "A2: binary search vs linear probing"))
    by_name = {row.name: row for row in rows}
    assert (
        by_name["binary-search"].lookups < by_name["linear-probing"].lookups
    )
    return rows


@pytest.fixture(scope="module")
def substrate_rows(ablation_dataset, paper_config):
    rows = ablation.run_substrate_ablation(
        ablation_dataset[:1500], paper_config, n_peers=16
    )
    publish("ablation_a3_substrates.txt",
            ablation.render(rows, "A3: DHT substrate swap"))
    return rows


@pytest.fixture(scope="module")
def bulkload_rows(ablation_dataset, paper_config):
    rows = ablation.run_bulkload_ablation(
        ablation_dataset[:4000], paper_config
    )
    publish("ablation_a4_bulkload.txt",
            ablation.render(rows, "A4: bulk load vs incremental build"))
    by_name = {row.name: row for row in rows}
    assert by_name["bulk-load"].lookups < by_name["incremental"].lookups
    assert (
        by_name["bulk-load"].records_moved
        <= by_name["incremental"].records_moved
    )
    return rows


def test_a4_bulk_load_time(benchmark, ablation_dataset, paper_config,
                           bulkload_rows):
    """Time a full bulk load of 4000 records (single-shot)."""
    from repro.core.bulkload import bulk_load
    from repro.core.split import DataAwareSplit
    from repro.dht.localhash import LocalDht

    subset = ablation_dataset[:4000]
    strategy = DataAwareSplit(paper_config.expected_load)

    def build():
        bulk_load(LocalDht(32), subset, paper_config, strategy)

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_a1_naming_split_cost(benchmark, ablation_dataset, paper_config,
                              naming_rows):
    """Time naive-mapping inserts (full-transfer splits, linear lookups)."""
    index = build_index("naive", paper_config)
    for point in ablation_dataset[:2000]:
        index.insert(point)
    fresh = itertools.cycle(ablation_dataset[2000:3000])
    benchmark(lambda: index.insert(next(fresh)))


def test_a2_lookup_binary_vs_linear(benchmark, ablation_dataset,
                                    paper_config, lookup_rows):
    """Time the production binary-search lookup."""
    index = build_index("mlight", paper_config)
    for point in ablation_dataset[:4000]:
        index.insert(point)
    keys = itertools.cycle(ablation_dataset[:4000])
    benchmark(lambda: index.lookup(next(keys)))


def test_a3_substrate_chord_routing(benchmark, paper_config,
                                    substrate_rows, dataset):
    """Time an insert routed through the full Chord overlay."""
    from repro.dht.chord import ChordDht
    from repro.core.index import MLightIndex

    index = MLightIndex(ChordDht.build(16), paper_config)
    for point in dataset[:500]:
        index.insert(point)
    fresh = itertools.cycle(dataset[500:700])
    benchmark(lambda: index.insert(next(fresh)))
