"""Setup shim.

The evaluation environment is offline and lacks the ``wheel`` package,
so PEP-660 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on machines with wheel) work everywhere.
"""

from setuptools import setup

setup()
