"""Tests for the Kademlia overlay."""

import pytest

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.hashing import key_digest, xor_distance
from repro.dht.kademlia import BUCKET_SIZE, KademliaDht, KademliaNode
from repro.net.simnet import SimNetwork


def xor_oracle(dht: KademliaDht, key: str) -> str:
    return dht.peer_of(key)


class TestRoutingTable:
    def test_observe_and_buckets(self):
        net = SimNetwork()
        node = KademliaNode("kad-a", net)
        other = KademliaNode("kad-b", net)
        node.observe(other.ident, other.name)
        contacts = node.closest_contacts(other.ident, 2)
        assert (other.ident, other.name) in contacts

    def test_never_stores_self(self):
        net = SimNetwork()
        node = KademliaNode("kad-a", net)
        node.observe(node.ident, node.name)
        assert all(not bucket for bucket in node.buckets)

    def test_bucket_capacity_keeps_live_oldest(self):
        net = SimNetwork()
        node = KademliaNode("kad-a", net)
        # Fill one conceptual region with many live contacts.
        others = [KademliaNode(f"kad-{i:03d}", net) for i in range(64)]
        for other in others:
            node.observe(other.ident, other.name)
        for bucket in node.buckets:
            assert len(bucket) <= BUCKET_SIZE

    def test_closest_contacts_sorted_by_xor(self):
        net = SimNetwork()
        node = KademliaNode("kad-a", net)
        others = [KademliaNode(f"kad-{i:03d}", net) for i in range(20)]
        for other in others:
            node.observe(other.ident, other.name)
        target = key_digest("target")
        contacts = node.closest_contacts(target, 10)
        distances = [xor_distance(ident, target) for ident, _ in contacts]
        assert distances == sorted(distances)


class TestOverlay:
    def test_lookup_agrees_with_xor_oracle(self):
        dht = KademliaDht.build(24)
        for index in range(50):
            key = f"key-{index}"
            assert dht.lookup(key) == xor_oracle(dht, key)

    def test_put_get_remove(self):
        dht = KademliaDht.build(12)
        dht.put("k", "v", records_moved=1)
        assert dht.get("k") == "v"
        assert dht.remove("k") == "v"
        with pytest.raises(DhtKeyError):
            dht.remove("k")

    def test_value_lands_on_closest_node(self):
        dht = KademliaDht.build(16)
        dht.put("payload", 42)
        owner = dht.node(xor_oracle(dht, "payload"))
        assert owner.store.get("payload") == 42

    def test_hops_bounded(self):
        dht = KademliaDht.build(32)
        dht.stats.reset()
        for index in range(30):
            dht.lookup(f"key-{index}")
        assert dht.stats.hops / 30 < 3 * BUCKET_SIZE

    def test_build_rejects_zero(self):
        with pytest.raises(ReproError):
            KademliaDht.build(0)

    def test_join_pulls_owned_keys(self):
        dht = KademliaDht.build(8)
        for index in range(60):
            dht.put(f"key-{index}", index)
        dht.join("kad-late")
        late = dht.node("kad-late")
        for key, _ in late.store.items():
            assert xor_oracle(dht, key) == "kad-late"
        assert sum(1 for _ in dht.items()) == 60
        # Storage still routable.
        for index in range(0, 60, 7):
            assert dht.get(f"key-{index}") == index

    def test_duplicate_join_rejected(self):
        dht = KademliaDht.build(4)
        with pytest.raises(ReproError):
            dht.join("kad-0000")
