"""Edge-case tests filling coverage gaps across modules."""

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.dht.chord import ChordDht
from repro.dht.kademlia import BUCKET_SIZE, KademliaDht, KademliaNode
from repro.dht.localhash import LocalDht
from repro.net.events import EventScheduler
from repro.net.simnet import SimNetwork


class TestEventHandleTime:
    def test_exposes_firing_time(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(4.5, lambda: None)
        assert handle.time == 4.5


class TestRegionCorners:
    def test_corner_low_inside_half_open_cell(self):
        from repro.common.geometry import region_of_label

        cell = region_of_label("00101", 2)
        assert cell.contains_point(cell.corner_low())


class TestSfcDebugHelper:
    def test_z_cell_low_corner_bits(self):
        from repro.baselines.sfc import z_cell_low_corner_bits

        text = z_cell_low_corner_bits((0.5, 0.25), 3)
        assert text == "100|010"


class TestChordEdges:
    def test_leave_last_node_empties_ring(self):
        dht = ChordDht.build(1)
        dht.put("k", 1)
        dht.leave("chord-0000")
        with pytest.raises(ReproError):
            dht.lookup("k")

    def test_leave_down_to_one_node(self):
        dht = ChordDht.build(3)
        for index in range(12):
            dht.put(f"key-{index}", index)
        peers = dht.peers()
        dht.leave(peers[0])
        dht.stabilize_all(3)
        dht.leave(peers[1])
        dht.stabilize_all(3)
        # Sole survivor holds everything.
        assert sum(1 for _ in dht.items()) == 12
        for index in range(12):
            assert dht.get(f"key-{index}") == index

    def test_gateway_error_on_empty_ring(self):
        dht = ChordDht()
        with pytest.raises(ReproError):
            dht.lookup("anything")


class TestKademliaEviction:
    def test_dead_oldest_contact_evicted(self):
        net = SimNetwork()
        node = KademliaNode("kad-home", net)
        # Find many contacts falling into one bucket of `node`.
        same_bucket: list[KademliaNode] = []
        index = 0
        target_bucket = None
        while len(same_bucket) < BUCKET_SIZE + 1:
            other = KademliaNode(f"kad-cand-{index}", net)
            index += 1
            bucket_index = node._bucket_index(other.ident)
            if target_bucket is None:
                target_bucket = bucket_index
            if bucket_index == target_bucket:
                same_bucket.append(other)
            else:
                net.unregister(other.name)
        for other in same_bucket[:BUCKET_SIZE]:
            node.observe(other.ident, other.name)
        bucket = node.buckets[target_bucket]
        assert len(bucket) == BUCKET_SIZE
        oldest = bucket[0]
        # While the oldest is alive, a newcomer is rejected.
        newcomer = same_bucket[BUCKET_SIZE]
        node.observe(newcomer.ident, newcomer.name)
        assert (newcomer.ident, newcomer.name) not in bucket
        # Kill the oldest: now the newcomer replaces it.
        net.unregister(oldest[1])
        node.observe(newcomer.ident, newcomer.name)
        assert (newcomer.ident, newcomer.name) in bucket
        assert oldest not in bucket


class TestLoaderDelimiter:
    def test_custom_delimiter(self, tmp_path):
        from repro.datasets.loader import load_points

        path = tmp_path / "points.csv"
        path.write_text("0.1,0.2\n0.3,0.4\n")
        points = load_points(path, delimiter=",", normalize=False)
        assert points == [(0.1, 0.2), (0.3, 0.4)]


class TestPeekMissing:
    def test_returns_none(self):
        assert LocalDht(4).peek("missing") is None


class TestInsertManyEdge:
    def test_empty_iterable(self):
        from repro.core.index import MLightIndex

        index = MLightIndex(
            LocalDht(4),
            IndexConfig(dims=2, max_depth=8, split_threshold=4,
                        merge_threshold=2),
        )
        assert index.insert_many([]) == 0


class TestKademliaJoinFirstNode:
    def test_join_into_empty_overlay(self):
        dht = KademliaDht()
        dht.join("kad-first")
        dht.put("k", 1)
        assert dht.get("k") == 1


class TestWireByteAccounting:
    def test_store_puts_account_codec_bytes(self):
        from repro.core.bucket import LeafBucket
        from repro.core.codec import encoded_bucket_size
        from repro.core.records import Record
        from repro.dht.api import ENVELOPE_WIRE_BYTES, estimate_wire_size

        bucket = LeafBucket("001", 2)
        bucket.add(Record((0.5, 0.5)))
        bucket.add(Record((0.6, 0.6)))
        # Record-bearing payloads are priced at their exact encoded
        # size — the same bytes a wire frame would carry.
        assert estimate_wire_size(bucket) == encoded_bucket_size(bucket)
        assert estimate_wire_size("plain") == ENVELOPE_WIRE_BYTES
        assert estimate_wire_size(None) == 0

    def test_network_bytes_grow_with_bucket_size(self):
        from repro.core.bucket import LeafBucket
        from repro.core.records import Record

        dht = ChordDht.build(8)
        small = LeafBucket("001", 2)
        dht.put("a", small)
        bytes_small = dht.network.stats.bytes_sent
        big = LeafBucket("001", 2)
        for i in range(50):
            big.add(Record((i / 100.0, 0.5)))
        dht.put("b", big)
        # 50 extra records at dims * 8 coordinate bytes each; routing
        # variance between the two keys stays far below that.
        assert dht.network.stats.bytes_sent - bytes_small > 50 * 8
