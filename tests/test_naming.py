"""Property tests for the naming function — the paper's Theorems 1-5."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import InvalidLabelError
from repro.common.labels import candidate_string, root_label, virtual_root
from repro.core.naming import (
    moved_child,
    name_run_end,
    naming_function,
    naming_function_recursive,
    survivor_child,
)
from tests.conftest import internal_nodes_of, labels_strategy, random_tree_leaves


class TestPaperExamples:
    """The worked examples of Section 3.4 (with # == '001')."""

    @pytest.mark.parametrize(
        "label, expected",
        [
            ("001" + "0101111", "001" + "0101"),
            ("001" + "0011111", "001" + "001"),
            ("001" + "101111", "001" + "101"),
            ("001", "00"),
            # From the lookup example of Section 5:
            ("001" + "1011100001", "001" + "101110000"),
            ("001" + "10111", "001" + "101"),
            ("001" + "1011", "001" + "101"),
            ("001" + "101110", "001" + "10111"),
            # From the range-query example of Section 6:
            ("001" + "10", "001" + "1"),
            ("001" + "10101", "001" + "1"),
            ("001" + "10110", "001" + "1011"),
        ],
    )
    def test_2d_examples(self, label, expected):
        assert naming_function(label, 2) == expected

    def test_virtual_root_rejected(self):
        with pytest.raises(InvalidLabelError):
            naming_function("00", 2)

    def test_invalid_label_rejected(self):
        with pytest.raises(InvalidLabelError):
            naming_function("11", 2)


class TestClosedFormMatchesRecursion:
    @given(labels_strategy(2, 16))
    def test_2d(self, label):
        assert naming_function(label, 2) == naming_function_recursive(label, 2)

    @given(labels_strategy(3, 16))
    def test_3d(self, label):
        assert naming_function(label, 3) == naming_function_recursive(label, 3)

    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_md(self, dims, data):
        bits = data.draw(st.text(alphabet="01", max_size=20))
        label = root_label(dims) + bits
        assert naming_function(label, dims) == naming_function_recursive(
            label, dims
        )


class TestNameIsProperPrefix:
    @given(labels_strategy(2, 16))
    def test_2d(self, label):
        name = naming_function(label, 2)
        assert label.startswith(name)
        assert len(name) < len(label)
        assert len(name) >= 2  # never shorter than the virtual root


class TestBijection:
    """Theorems 2 and 4: fmd maps the leaf set of *any* space kd-tree
    bijectively onto its internal-node set (virtual root included)."""

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bijection_on_random_trees(self, dims, seed):
        rng = random.Random(seed)
        leaves = random_tree_leaves(rng, dims, max_depth=10)
        internals = internal_nodes_of(leaves, dims)
        assert len(leaves) == len(internals)  # virtual root balances
        names = {naming_function(leaf, dims) for leaf in leaves}
        assert len(names) == len(leaves)  # injective
        assert names == internals  # onto

    def test_singleton_tree(self):
        # A tree of just the root leaf maps to the virtual root.
        assert naming_function(root_label(2), 2) == virtual_root(2)


class TestIncrementalSplit:
    """Theorem 5: of a splitting leaf's children, one keeps fmd(λ) and
    the other is named λ itself."""

    @given(labels_strategy(2, 16))
    def test_2d(self, label):
        survivor = survivor_child(label, 2)
        moved = moved_child(label, 2)
        assert {survivor, moved} == {label + "0", label + "1"}
        assert naming_function(survivor, 2) == naming_function(label, 2)
        assert naming_function(moved, 2) == label

    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_md(self, dims, data):
        bits = data.draw(st.text(alphabet="01", max_size=18))
        label = root_label(dims) + bits
        assert naming_function(survivor_child(label, dims), dims) == (
            naming_function(label, dims)
        )
        assert naming_function(moved_child(label, dims), dims) == label


class TestCornerPreservation:
    """Theorems 1 and 3, at full-tree granularity.

    For an internal node ω with at least two full levels beneath it,
    the leaves covering the 2^m corners of ω's region are named exactly
    {fmd(ω), ω, ω0, ω1, ..., ω1...1}.  (Internal nodes whose children
    are leaves degenerate to the two names of Theorem 5.)
    """

    @pytest.mark.parametrize("dims, depth", [(2, 6), (3, 6), (1, 8)])
    def test_full_tree_corners(self, dims, depth):
        root = root_label(dims)
        epsilon = 1e-9
        from repro.common.geometry import region_of_label

        extensions = [
            format(value, f"0{dims}b") for value in range(2**dims)
        ]
        checked = 0
        for level in range(0, depth - dims):
            for code in range(2**level):
                omega = root + format(code, f"0{level}b") if level else root
                region = region_of_label(omega, dims)
                corners = []
                for mask in range(2**dims):
                    corners.append(
                        tuple(
                            region.lows[d] + epsilon
                            if mask >> d & 1 == 0
                            else region.highs[d] - epsilon
                            for d in range(dims)
                        )
                    )
                names = {
                    naming_function(
                        candidate_string(corner, depth), dims
                    )
                    for corner in corners
                }
                assert len(names) == 2**dims
                assert names == self._theorem_names(omega, dims)
                checked += 1
        assert checked > 0

    @staticmethod
    def _theorem_names(omega: str, dims: int) -> set[str]:
        """The 2^m names of Theorem 3: fmd(ω), ω, and every extension
        of ω by 1 to m-1 bits (for m=2: fmd(ω), ω, ω0, ω1)."""
        names = {naming_function(omega, dims), omega}
        for length in range(1, dims):
            for value in range(2**length):
                names.add(omega + format(value, f"0{length}b"))
        return names


class TestNameRuns:
    """The contiguous-run structure behind the binary-search lookup."""

    @given(labels_strategy(2, 20))
    def test_run_members_share_the_name(self, label):
        if len(label) < 4:
            return
        name = naming_function(label, 2)
        end = name_run_end(label, len(name), 2)
        assert end >= len(name) + 1
        for length in range(len(name) + 1, min(end, len(label)) + 1):
            assert naming_function(label[:length], 2) == name

    @given(labels_strategy(2, 20))
    def test_past_run_end_name_differs(self, label):
        if len(label) < 4:
            return
        name = naming_function(label, 2)
        end = name_run_end(label, len(name), 2)
        if end + 1 <= len(label):
            assert naming_function(label[: end + 1], 2) != name

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidLabelError):
            name_run_end("0010", 1, 2)
        with pytest.raises(InvalidLabelError):
            name_run_end("0010", 4, 2)
