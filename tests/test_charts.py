"""Tests for the ASCII chart renderer."""

import pytest

from repro.common.errors import ReproError
from repro.experiments.charts import (
    MARKS,
    chart_loadbalance,
    chart_maintenance,
    chart_rangequery,
    render_chart,
)


class TestRenderChart:
    def test_marks_and_legend_present(self):
        text = render_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, [0, 1, 2], title="T"
        )
        assert "T" in text
        assert "o a" in text and "x b" in text
        assert "o" in text.splitlines()[1:][0] or "o" in text

    def test_monotone_series_render_monotone(self):
        text = render_chart({"up": [0, 5, 10]}, [0, 1, 2], height=11,
                            width=21)
        rows = [line.split("|")[1] for line in text.splitlines()
                if "|" in line]
        # The last column's mark is above the first column's mark.
        first_row = next(i for i, row in enumerate(rows) if row[0] == "o")
        last_row = next(i for i, row in enumerate(rows) if row[-1] == "o")
        assert last_row < first_row

    def test_log_scale_compresses_big_gaps(self):
        linear = render_chart(
            {"a": [1, 1, 1], "b": [1000, 1000, 1000]}, [0, 1, 2]
        )
        logged = render_chart(
            {"a": [1, 1, 1], "b": [1000, 1000, 1000]}, [0, 1, 2],
            log_y=True,
        )
        assert "log10" in logged
        assert "log10" not in linear

    def test_constant_series_ok(self):
        text = render_chart({"flat": [5, 5, 5]}, [0, 1, 2])
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            render_chart({}, [0, 1])
        with pytest.raises(ReproError):
            render_chart({"a": [1, 2]}, [0, 1, 2])
        with pytest.raises(ReproError):
            render_chart({"a": [1]}, [0])
        with pytest.raises(ReproError):
            render_chart({"a": [1, 2]}, [0, 1], width=2)

    def test_many_series_cycle_marks(self):
        series = {f"s{i}": [i, i + 1] for i in range(len(MARKS) + 2)}
        text = render_chart(series, [0, 1])
        assert "s0" in text and f"s{len(MARKS) + 1}" in text


class TestFigureAdapters:
    @pytest.fixture(scope="class")
    def small_results(self):
        from repro.common.config import IndexConfig
        from repro.datasets.northeast import northeast_surrogate
        from repro.experiments import fig5, fig6, fig7

        config = IndexConfig(
            dims=2, max_depth=16, split_threshold=25,
            merge_threshold=12, expected_load=18,
        )
        points = northeast_surrogate(1200, seed=3)
        return {
            "fig5": fig5.run_datasize_sweep(points, config, samples=3),
            "fig6": fig6.run_loadbalance_experiment(
                points, config, n_samples=3, n_peers=16, virtual_nodes=8
            ),
            "fig7": fig7.run_rangequery_experiment(
                points, config, spans=(0.1, 0.3), queries_per_span=2
            ),
        }

    def test_chart_maintenance(self, small_results):
        for measure in ("lookups", "moved"):
            text = chart_maintenance(small_results["fig5"], measure)
            assert "dst" in text and "mlight" in text

    def test_chart_rangequery(self, small_results):
        for measure in ("bandwidth", "latency"):
            text = chart_rangequery(small_results["fig7"], measure)
            assert "mlight-basic" in text

    def test_chart_loadbalance(self, small_results):
        for measure in ("empty", "variance"):
            text = chart_loadbalance(small_results["fig6"], measure)
            assert "threshold" in text and "data-aware" in text
