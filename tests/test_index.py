"""Integration and property tests for the MLightIndex facade."""

import random

import pytest
from repro.common.config import IndexConfig
from repro.common.errors import InvalidPointError
from repro.common.geometry import Region
from repro.core.index import MLightIndex
from repro.core.keys import bucket_key
from repro.core.naming import naming_function
from repro.core.split import DataAwareSplit
from repro.dht.localhash import LocalDht
from repro.metrics.counters import CostMeter
from tests.conftest import brute_force_range


def small_config(**overrides):
    defaults = dict(
        dims=2, max_depth=16, split_threshold=8,
        merge_threshold=4, expected_load=6,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


def make_index(**overrides):
    return MLightIndex(LocalDht(16), small_config(**overrides))


class TestBootstrap:
    def test_starts_with_root_bucket(self):
        index = make_index()
        assert index.tree_size() == 1
        bucket = index.dht.peek(bucket_key("00"))
        assert bucket.label == "001"

    def test_attach_to_existing_index(self):
        dht = LocalDht(16)
        first = MLightIndex(dht, small_config())
        first.insert((0.5, 0.5), "v")
        second = MLightIndex(dht, small_config())
        assert second.total_records() == 1
        assert second.exact_match((0.5, 0.5))[0].value == "v"


class TestInsertLookup:
    def test_insert_and_exact_match(self):
        index = make_index()
        index.insert((0.25, 0.75), "hello")
        matches = index.exact_match((0.25, 0.75))
        assert [record.value for record in matches] == ["hello"]

    def test_duplicate_keys_all_kept(self):
        index = make_index()
        index.insert((0.5, 0.5), "a")
        index.insert((0.5, 0.5), "b")
        assert {r.value for r in index.exact_match((0.5, 0.5))} == {"a", "b"}

    def test_rejects_out_of_range_key(self):
        index = make_index()
        with pytest.raises(InvalidPointError):
            index.insert((1.2, 0.5))

    def test_insert_many_forms(self):
        from repro.core.records import Record

        index = make_index()
        count = index.insert_many(
            [
                (0.1, 0.1),
                ((0.2, 0.2), "pair"),
                Record((0.3, 0.3), "record"),
            ]
        )
        assert count == 3
        assert index.total_records() == 3

    def test_splits_grow_the_tree(self):
        rng = random.Random(1)
        index = make_index()
        for _ in range(100):
            index.insert((rng.random(), rng.random()))
        assert index.tree_size() > 1
        index.check_invariants()
        for bucket in index.buckets():
            assert bucket.load <= index.config.split_threshold


class TestIncrementalSplitCosts:
    def test_split_transfers_one_child_only(self):
        """Theorem 5 in action: a clean two-way split costs one routed
        put carrying ~half the records."""
        index = make_index(split_threshold=8, max_depth=16)
        # Spread across both halves so the split is one level.
        points = [
            (x, y)
            for x in (0.1, 0.5, 0.9)
            for y in (0.1, 0.5, 0.9)
        ]
        for point in points[:8]:
            index.insert(point)
        with CostMeter(index.dht) as meter:
            index.insert(points[8])
        # Insert itself moves one record; the split then puts one child.
        assert meter.delta.puts >= 1
        split_movement = meter.delta.records_moved - 1
        assert 0 < split_movement < 9

    def test_bucket_keys_follow_naming_function(self):
        rng = random.Random(2)
        index = make_index()
        for _ in range(200):
            index.insert((rng.random(), rng.random()))
        for key, value in index.dht.items():
            if key.startswith("ml:"):
                assert key == bucket_key(
                    naming_function(value.label, 2)
                )


class TestDelete:
    def test_delete_returns_false_when_absent(self):
        index = make_index()
        assert not index.delete((0.4, 0.4))

    def test_delete_by_value(self):
        index = make_index()
        index.insert((0.5, 0.5), "a")
        index.insert((0.5, 0.5), "b")
        assert index.delete((0.5, 0.5), "b")
        assert [r.value for r in index.exact_match((0.5, 0.5))] == ["a"]

    def test_merges_shrink_the_tree(self):
        rng = random.Random(3)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(300)]
        for point in points:
            index.insert(point)
        grown = index.tree_size()
        for point in points[:280]:
            assert index.delete(point)
        index.check_invariants()
        assert index.tree_size() < grown
        assert index.total_records() == 20

    def test_merge_transfers_one_bucket(self):
        index = make_index(split_threshold=4, merge_threshold=3)
        points = [(0.1, 0.1), (0.2, 0.2), (0.8, 0.8), (0.9, 0.9), (0.6, 0.4)]
        for point in points:
            index.insert(point)
        assert index.tree_size() > 1
        with CostMeter(index.dht) as meter:
            for point in points:
                index.delete(point)
        index.check_invariants()
        assert index.tree_size() == 1
        assert meter.delta.removes >= 1


class TestRangeQueries:
    @pytest.mark.parametrize("lookahead", [1, 2, 4])
    def test_matches_brute_force(self, lookahead):
        rng = random.Random(4)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(400)]
        for point in points:
            index.insert(point)
        for _ in range(15):
            lows = (rng.random() * 0.7, rng.random() * 0.7)
            highs = (lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3)
            query = Region(lows, highs)
            result = index.range_query(query, lookahead=lookahead)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    def test_after_deletions(self):
        rng = random.Random(5)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(300)]
        for point in points:
            index.insert(point)
        removed = points[:150]
        for point in removed:
            index.delete(point)
        survivors = points[150:]
        query = Region((0.1, 0.1), (0.9, 0.9))
        result = index.range_query(query)
        assert sorted(r.key for r in result.records) == (
            brute_force_range(survivors, query)
        )


class TestDataAwareIndex:
    def test_constructor(self):
        index = MLightIndex.with_data_aware_splitting(
            LocalDht(16), small_config()
        )
        assert isinstance(index.strategy, DataAwareSplit)

    def test_behaves_correctly_end_to_end(self):
        rng = random.Random(6)
        index = MLightIndex.with_data_aware_splitting(
            LocalDht(16), small_config()
        )
        points = [(rng.random() ** 2, rng.random()) for _ in range(400)]
        for point in points:
            index.insert(point)
        index.check_invariants()
        query = Region((0.0, 0.2), (0.4, 0.8))
        result = index.range_query(query)
        assert sorted(r.key for r in result.records) == (
            brute_force_range(points, query)
        )
        for point in points[:200]:
            assert index.delete(point)
        index.check_invariants()


class TestRandomizedWorkload:
    """Randomised insert/delete interleavings against a brute-force
    oracle, with invariants checked along the way."""

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_operations(self, seed):
        rng = random.Random(seed)
        index = make_index(split_threshold=5, merge_threshold=3)
        live: list[tuple] = []
        for step in range(400):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                assert index.delete(victim)
            else:
                point = (rng.random(), rng.random())
                live.append(point)
                index.insert(point)
            if step % 100 == 99:
                index.check_invariants()
                assert index.total_records() == len(live)
        query = Region((0.2, 0.2), (0.8, 0.8))
        assert sorted(
            r.key for r in index.range_query(query).records
        ) == brute_force_range(live, query)


class TestThreeDimensional:
    def test_3d_end_to_end(self):
        rng = random.Random(9)
        config = IndexConfig(
            dims=3, max_depth=15, split_threshold=8, merge_threshold=4
        )
        index = MLightIndex(LocalDht(16), config)
        points = [
            (rng.random(), rng.random(), rng.random()) for _ in range(300)
        ]
        for point in points:
            index.insert(point)
        index.check_invariants()
        query = Region((0.1, 0.2, 0.0), (0.6, 0.9, 0.5))
        result = index.range_query(query)
        assert sorted(r.key for r in result.records) == (
            brute_force_range(points, query)
        )
