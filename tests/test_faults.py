"""Tests for the fault-injection plane and graceful degradation.

Covers the reproducibility contract (same plan seed, same faults,
bit-for-bit), each injectable fault kind, the backoff/deadline budget
of the retry wrapper, and the partial-result contract of the query
engines: probes that stay unreachable degrade the answer to
``complete=False`` with unresolved regions — they never surface
``NodeUnreachableError`` to the query caller.
"""

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.rng import make_rng
from repro.core.cache import LeafCache
from repro.core.index import MLightIndex
from repro.core.keys import bucket_key
from repro.core.naming import naming_function
from repro.core.rangequery import RangeQueryEngine
from repro.dht.api import BatchFailure
from repro.dht.chord import ChordDht
from repro.dht.faults import (
    FAULT_KINDS,
    FaultInjectedError,
    FaultPlan,
    FaultyDht,
)
from repro.dht.localhash import LocalDht
from repro.dht.retry import RetryingDht

CONFIG = IndexConfig(
    dims=2, max_depth=12, split_threshold=10, merge_threshold=5
)


def uniform_points(count, seed=5):
    rng = make_rng(seed)
    return [(rng.random(), rng.random()) for _ in range(count)]


def leaf_key(index, point):
    """The DHT key of the leaf bucket covering *point*."""
    label = index.lookup(point).bucket.label
    return bucket_key(naming_function(label, CONFIG.dims))


class TestFaultPlan:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_negative_rate_rejected(self, kind):
        with pytest.raises(ReproError):
            FaultPlan(**{f"{kind}_rate": -0.1})

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_rate_of_one_rejected(self, kind):
        with pytest.raises(ReproError):
            FaultPlan(**{f"{kind}_rate": 1.0})

    def test_rates_summing_to_one_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(drop_rate=0.5, timeout_rate=0.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(timeout_delay=-1.0)

    def test_same_seed_same_decisions(self):
        make = lambda: FaultPlan(
            7, drop_rate=0.2, timeout_rate=0.1, slow_rate=0.1,
            stale_rate=0.1,
        )
        a, b = make(), make()
        decisions = [a.decide("get", f"k{i}") for i in range(300)]
        assert decisions == [b.decide("get", f"k{i}") for i in range(300)]
        assert len({d for d in decisions if d}) == 4  # all kinds drawn

    def test_different_seed_different_decisions(self):
        a = FaultPlan(1, drop_rate=0.3)
        b = FaultPlan(2, drop_rate=0.3)
        assert [a.decide("get", "k") for _ in range(100)] != [
            b.decide("get", "k") for _ in range(100)
        ]

    def test_reset_rewinds_the_stream(self):
        plan = FaultPlan(3, drop_rate=0.4, slow_rate=0.2)
        first = [plan.decide("get", f"k{i}") for i in range(50)]
        plan.reset()
        assert [plan.decide("get", f"k{i}") for i in range(50)] == first

    def test_dead_keys_drop_without_consuming_draws(self):
        plain = FaultPlan(9, drop_rate=0.3)
        dead = FaultPlan(9, drop_rate=0.3, dead_keys=["victim"])
        for i in range(100):
            assert dead.decide("get", "victim") == "drop"
            # The random stream stays aligned with the plain plan.
            assert dead.decide("get", f"k{i}") == plain.decide(
                "get", f"k{i}"
            )


class TestFaultyDhtKinds:
    def test_drop_raises_and_meters(self):
        faulty = FaultyDht(LocalDht(8), FaultPlan(0, drop_rate=0.99))
        with faulty.suspended():
            faulty.put("k", "v")
        with pytest.raises(FaultInjectedError):
            faulty.get("k")
        assert faulty.stats.faults_dropped == 1
        assert faulty.stats.faults_injected == 1

    def test_timeout_charges_clock_then_raises(self):
        faulty = FaultyDht(
            LocalDht(8),
            FaultPlan(0, timeout_rate=0.99, timeout_delay=4.0),
        )
        before = faulty.clock.now
        with pytest.raises(FaultInjectedError):
            faulty.get("k")
        assert faulty.clock.now == before + 4.0
        assert faulty.stats.faults_timed_out == 1

    def test_slow_charges_clock_and_succeeds(self):
        faulty = FaultyDht(
            LocalDht(8), FaultPlan(0, slow_rate=0.99, slow_delay=1.5)
        )
        with faulty.suspended():
            faulty.put("k", "v")
        before = faulty.clock.now
        assert faulty.get("k") == "v"
        assert faulty.clock.now == before + 1.5
        assert faulty.stats.faults_slowed == 1

    def test_stale_read_returns_superseded_value(self):
        faulty = FaultyDht(LocalDht(8), FaultPlan(0, stale_rate=0.99))
        with faulty.suspended():
            faulty.put("k", "old")
            faulty.put("k", "new")
        assert faulty.get("k") == "old"
        assert faulty.stats.faults_stale == 1

    def test_stale_read_of_once_written_key_is_live(self):
        """A key with no superseded version has nothing stale to serve."""
        faulty = FaultyDht(LocalDht(8), FaultPlan(0, stale_rate=0.99))
        with faulty.suspended():
            faulty.put("k", "only")
        assert faulty.get("k") == "only"
        assert faulty.stats.faults_stale == 0

    def test_stale_tracks_rewrite_local(self):
        faulty = FaultyDht(LocalDht(8), FaultPlan(0, stale_rate=0.99))
        with faulty.suspended():
            faulty.put("k", "old")
        faulty.rewrite_local("k", "new")
        assert faulty.get("k") == "old"

    def test_suspended_consumes_no_draws(self):
        plan = FaultPlan(4, drop_rate=0.3)
        twin = FaultPlan(4, drop_rate=0.3)
        faulty = FaultyDht(LocalDht(8), plan)
        with faulty.suspended():
            for i in range(50):
                faulty.put(f"k{i}", i)
        assert [plan.decide("get", "k") for _ in range(50)] == [
            twin.decide("get", "k") for _ in range(50)
        ]

    def test_one_faulted_slot_does_not_poison_the_batch(self):
        faulty = FaultyDht(
            LocalDht(8), FaultPlan(0, dead_keys=["k3"])
        )
        with faulty.suspended():
            for i in range(6):
                faulty.put(f"k{i}", i)
        outcomes = faulty.get_many_outcomes(
            [f"k{i}" for i in range(6)]
        )
        assert isinstance(outcomes[3], BatchFailure)
        for i in (0, 1, 2, 4, 5):
            assert outcomes[i] == i
        assert faulty.stats.faults_dropped == 1


class TestZeroFaultEquivalence:
    """A zero-rate plan must be an exact no-op on every substrate."""

    @pytest.mark.parametrize(
        "make", [lambda: LocalDht(8), lambda: ChordDht.build(8)],
        ids=["local", "chord"],
    )
    def test_bit_identical_behaviour_and_meters(self, make):
        plain = make()
        wrapped = FaultyDht(make(), FaultPlan(0))
        points = uniform_points(150)
        results = []
        for dht in (plain, wrapped):
            index = MLightIndex(dht, CONFIG)
            for point in points:
                index.insert(point)
            result = index.range_query(((0.2, 0.2), (0.8, 0.8)))
            assert result.complete
            assert result.unresolved == ()
            results.append(
                (sorted(r.key for r in result.records), result.lookups,
                 result.rounds, result.batch_rounds)
            )
        assert results[0] == results[1]
        assert plain.stats.snapshot() == wrapped.stats.snapshot()
        assert wrapped.stats.faults_injected == 0


class TestRetryBackoff:
    def dead_stack(self, **kwargs):
        faulty = FaultyDht(
            LocalDht(8), FaultPlan(0, dead_keys=["victim"])
        )
        with faulty.suspended():
            faulty.put("victim", 1)
        return faulty, RetryingDht(faulty, **kwargs)

    def test_backoff_advances_simulated_clock(self):
        faulty, dht = self.dead_stack(
            attempts=3, backoff_base=0.1, backoff_factor=2.0
        )
        before = faulty.clock.now
        with pytest.raises(FaultInjectedError):
            dht.get("victim")
        # Waits before retries 1 and 2: 0.1 * 2**0 + 0.1 * 2**1.
        assert faulty.clock.now == pytest.approx(before + 0.3)
        assert dht.stats.backoff_waits == 2
        assert dht.stats.retries == 2
        assert dht.backoff_time == pytest.approx(0.3)

    def test_jitter_is_seeded_and_reproducible(self):
        times = []
        for _ in range(2):
            _, dht = self.dead_stack(
                attempts=4, backoff_base=0.1, jitter=0.05, seed=13
            )
            with pytest.raises(FaultInjectedError):
                dht.get("victim")
            times.append(dht.backoff_time)
        assert times[0] == times[1]
        _, other = self.dead_stack(
            attempts=4, backoff_base=0.1, jitter=0.05, seed=14
        )
        with pytest.raises(FaultInjectedError):
            other.get("victim")
        assert other.backoff_time != times[0]

    def test_deadline_caps_the_attempt_budget(self):
        # Backoff schedule 1, 2, 4, ... against a deadline of 2.5:
        # only the first wait fits, so exactly one retry happens.
        faulty, dht = self.dead_stack(
            attempts=10, backoff_base=1.0, deadline=2.5
        )
        with pytest.raises(FaultInjectedError):
            dht.get("victim")
        assert dht.stats.retries == 1
        assert faulty.clock.now == pytest.approx(1.0)

    def test_batch_retries_respect_deadline(self):
        faulty, dht = self.dead_stack(
            attempts=10, backoff_base=1.0, deadline=2.5
        )
        outcomes = dht.get_many_outcomes(["victim"])
        assert isinstance(outcomes[0], BatchFailure)
        assert dht.stats.retries == 1

    def test_zero_base_keeps_immediate_retries(self):
        faulty, dht = self.dead_stack(attempts=3)
        before = faulty.clock.now
        with pytest.raises(FaultInjectedError):
            dht.get("victim")
        assert faulty.clock.now == before
        assert dht.stats.backoff_waits == 0
        assert dht.stats.retries == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": -1.0},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RetryingDht(LocalDht(8), **kwargs)

    def test_retries_recover_from_random_faults(self):
        """Transient injected faults are absorbed by the retry budget."""
        faulty = FaultyDht(LocalDht(8), FaultPlan(1, drop_rate=0.2))
        dht = RetryingDht(faulty, attempts=8, backoff_base=0.01)
        index = MLightIndex(dht, CONFIG)
        points = uniform_points(200)
        for point in points:
            index.insert(point)
        result = index.range_query(((0.0, 0.0), (1.0, 1.0)))
        assert result.complete
        assert len(result.records) == 200
        assert dht.stats.faults_injected > 0
        assert dht.stats.retries > 0


class TestDegradedQueries:
    """Probes dead beyond the retry budget degrade, never raise."""

    def build(self, *, batched, cache=None):
        faulty = FaultyDht(LocalDht(8), FaultPlan(0))
        dht = RetryingDht(faulty, attempts=2)
        index = MLightIndex(dht, CONFIG)
        points = uniform_points(250)
        for point in points:
            index.insert(point)
        engine = RangeQueryEngine(
            dht, CONFIG.dims, CONFIG.max_depth, cache=cache,
            batched=batched,
        )
        return faulty, index, engine, points

    @pytest.mark.parametrize("batched", [False, True])
    def test_dead_bucket_yields_partial_result(self, batched):
        faulty, index, engine, points = self.build(batched=batched)
        whole = ((0.0, 0.0), (1.0, 1.0))
        full = engine.query(whole)
        assert full.complete and len(full.records) == 250

        victim_bucket = index.lookup((0.5, 0.5)).bucket
        faulty.plan.dead_keys = frozenset(
            {bucket_key(naming_function(victim_bucket.label, CONFIG.dims))}
        )
        partial = engine.query(whole)
        assert not partial.complete
        assert len(partial.unresolved) >= 1
        # The dead bucket's own records are necessarily lost (its key
        # is the only way to read them).  More may be: the dead key
        # also names every ancestor target the victim is the corner
        # leaf of, and a failed ancestor probe loses that whole
        # subquery.
        missing = {r.key for r in full.records} - {
            r.key for r in partial.records
        }
        assert {r.key for r in victim_bucket.records} <= missing
        # The contract: every lost record is accounted for by an
        # enumerated unresolved region — coverage loss is never silent.
        def covered(point):
            return any(
                all(
                    low <= value <= high
                    for low, high, value in zip(
                        region.lows, region.highs, point
                    )
                )
                for region in partial.unresolved
            )
        assert all(covered(key) for key in missing)
        # And nothing returned is wrong: partial records are a subset.
        assert {r.key for r in partial.records} <= {
            r.key for r in full.records
        }

    @pytest.mark.parametrize("batched", [False, True])
    def test_same_dead_key_same_partial_result(self, batched):
        runs = []
        for _ in range(2):
            faulty, index, engine, _ = self.build(batched=batched)
            faulty.plan.dead_keys = frozenset(
                {leaf_key(index, (0.5, 0.5))}
            )
            result = engine.query(((0.0, 0.0), (1.0, 1.0)))
            runs.append(
                (sorted(r.key for r in result.records),
                 result.unresolved, result.lookups, result.rounds,
                 faulty.stats.snapshot())
            )
        assert runs[0] == runs[1]

    def test_random_faults_beyond_budget_never_raise(self):
        faulty = FaultyDht(
            LocalDht(8), FaultPlan(2, drop_rate=0.25, timeout_rate=0.1)
        )
        dht = RetryingDht(faulty, attempts=2)
        index = MLightIndex(dht, CONFIG)
        with faulty.suspended():
            for point in uniform_points(250):
                index.insert(point)
        engine = RangeQueryEngine(
            dht, CONFIG.dims, CONFIG.max_depth, batched=True
        )
        with faulty.suspended():
            full = {
                r.key
                for r in engine.query(((0.0, 0.0), (1.0, 1.0))).records
            }
        incomplete = 0
        for _ in range(20):
            result = engine.query(((0.0, 0.0), (1.0, 1.0)))
            got = {r.key for r in result.records}
            # Partial answers lose coverage, never correctness.
            assert got <= full
            if not result.complete:
                incomplete += 1
                assert result.unresolved
            else:
                assert got == full
        assert incomplete > 0  # the budget really was exceeded

    def test_knn_degrades_with_complete_flag(self):
        faulty, index, engine, points = self.build(batched=True)
        exact = index.knn((0.5, 0.5), 5)
        assert exact.complete
        faulty.plan.dead_keys = frozenset(
            {leaf_key(index, (0.5, 0.5))}
        )
        degraded = index.knn((0.5, 0.5), 5)
        assert not degraded.complete
        # The neighbours listed are real records at true distances.
        keys = {p for p in points}
        for neighbor in degraded.neighbors:
            assert tuple(neighbor.record.key) in keys


class TestDeadHintEviction:
    def test_dead_hint_is_forgotten(self):
        """A cache hint whose peer is unreachable must be evicted, not
        re-proposed to every subsequent lookup in the region."""
        cache = LeafCache()
        faulty = FaultyDht(LocalDht(8), FaultPlan(0))
        dht = RetryingDht(faulty, attempts=2)
        index = MLightIndex(dht, CONFIG, cache=cache)
        for point in uniform_points(250):
            index.insert(point)
        point = (0.5, 0.5)
        index.lookup(point)  # warm the cache with the covering leaf
        hits_before = dht.stats.cache_hits
        assert index.lookup(point).lookups == 1  # hinted fast path
        assert dht.stats.cache_hits == hits_before + 1

        faulty.plan.dead_keys = frozenset({leaf_key(index, point)})
        # The covering leaf itself is dead, so the lookup cannot
        # succeed — but it must evict the dead hint on the way out.
        with pytest.raises(NodeUnreachableError):
            index.lookup(point)

        faulty.plan.dead_keys = frozenset()
        misses_before = dht.stats.cache_misses
        result = index.lookup(point)
        # No hint proposed: the dead one is gone, so this was a cold
        # binary search that re-warms the cache.
        assert dht.stats.cache_misses == misses_before + 1
        assert result.bucket.covers(point)
        assert index.lookup(point).lookups == 1  # warm again

    def test_degraded_range_query_evicts_dead_hints(self):
        cache = LeafCache()
        faulty = FaultyDht(LocalDht(8), FaultPlan(0))
        dht = RetryingDht(faulty, attempts=2)
        index = MLightIndex(dht, CONFIG, cache=cache)
        for point in uniform_points(250):
            index.insert(point)
        label = index.lookup((0.5, 0.5)).bucket.label
        assert label in cache
        faulty.plan.dead_keys = frozenset(
            {bucket_key(naming_function(label, CONFIG.dims))}
        )
        engine = RangeQueryEngine(
            dht, CONFIG.dims, CONFIG.max_depth, cache=cache, batched=True
        )
        result = engine.query(((0.0, 0.0), (1.0, 1.0)))
        assert not result.complete
