"""Tests for load-balance statistics and cost metering."""

import pytest

from repro.common.errors import ReproError
from repro.core.bucket import LeafBucket
from repro.core.records import Record
from repro.dht.localhash import LocalDht
from repro.metrics.counters import CostDelta, CostMeter
from repro.metrics.loadbalance import (
    empty_bucket_fraction,
    gini_coefficient,
    load_variance,
    normalized_load_variance,
    peer_record_loads,
)


class TestVariance:
    def test_uniform_loads_zero_variance(self):
        assert load_variance([5, 5, 5, 5]) == 0.0
        assert normalized_load_variance([5, 5, 5]) == 0.0

    def test_known_value(self):
        assert load_variance([0, 10]) == 25.0
        assert normalized_load_variance([0, 10]) == 1.0

    def test_scale_invariance_of_normalized(self):
        loads = [1, 2, 3, 4]
        scaled = [10, 20, 30, 40]
        assert normalized_load_variance(loads) == pytest.approx(
            normalized_load_variance(scaled)
        )

    def test_all_zero_loads(self):
        assert normalized_load_variance([0, 0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            load_variance([])
        with pytest.raises(ReproError):
            normalized_load_variance([])


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([3, 3, 3]) == pytest.approx(0.0)

    def test_total_inequality_approaches_one(self):
        value = gini_coefficient([0] * 99 + [100])
        assert value > 0.9

    def test_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            gini_coefficient([])


class TestEmptyBuckets:
    def test_fraction(self):
        buckets = [LeafBucket("001", 2), LeafBucket("001", 2)]
        buckets[0].add(Record((0.5, 0.5)))
        assert empty_bucket_fraction(buckets) == 0.5

    def test_no_buckets_rejected(self):
        with pytest.raises(ReproError):
            empty_bucket_fraction([])


class TestPeerLoads:
    def test_counts_records_per_peer(self):
        dht = LocalDht(4)
        bucket = LeafBucket("001", 2)
        bucket.add(Record((0.5, 0.5)))
        bucket.add(Record((0.6, 0.6)))
        dht.put("ml:00", bucket)
        dht.put("other:x", "not a bucket")
        loads = peer_record_loads(dht)
        assert sum(loads) == 2
        assert len(loads) == 4


class TestCostMeter:
    def test_measures_increments(self):
        dht = LocalDht(4)
        dht.put("warmup", 1)
        with CostMeter(dht) as meter:
            dht.put("a", 1, records_moved=3)
            dht.get("a")
        assert meter.delta.lookups == 2
        assert meter.delta.puts == 1
        assert meter.delta.gets == 1
        assert meter.delta.records_moved == 3

    def test_deltas_add(self):
        a = CostDelta(1, 2, 3, 4, 5, 6)
        b = CostDelta(10, 20, 30, 40, 50, 60)
        total = a + b
        assert total.lookups == 11
        assert total.hops == 66
