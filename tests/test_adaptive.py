"""Adaptive read plane (E13 tentpole): detector, shortcuts, replicas,
the ``get_direct`` seam, and the interplay with the client leaf cache.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveDht,
    BucketReadCounters,
    HotspotDetector,
    READS_SOURCE,
    ReplicaDirectory,
    ShortcutTable,
    is_replica_key,
    primary_of,
    replica_key,
    replica_keys,
)
from repro.common.config import IndexConfig
from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.rng import make_rng
from repro.core.bulkload import bulk_load
from repro.core.cache import LeafCache
from repro.core.index import MLightIndex
from repro.datasets.synthetic import uniform_points
from repro.dht.chord import ChordDht
from repro.dht.localhash import LocalDht
from repro.dht.retry import RetryingDht
from repro.obs.registry import MetricsRegistry
from repro.workloads.queries import uniform_range_queries
from repro.workloads.traces import request_trace, zipf_sampler


# ----------------------------------------------------------------------
# Satellite 1: Zipfian sampling
# ----------------------------------------------------------------------


def test_zipf_sampler_zero_skew_is_uniform_bit_identical():
    draws, reference = make_rng(42), make_rng(42)
    sample = zipf_sampler(100, 0.0, draws)
    assert [sample() for _ in range(200)] == [
        reference.randrange(100) for _ in range(200)
    ]


def test_zipf_sampler_concentrates_on_low_ranks():
    sample = zipf_sampler(1000, 1.1, make_rng(7))
    ranks = [sample() for _ in range(4000)]
    assert all(0 <= rank < 1000 for rank in ranks)
    head = sum(1 for rank in ranks if rank == 0)
    # Zipf(1.1) over 1000 ranks gives rank 0 ~13% of the draws.
    assert head > 0.05 * len(ranks)
    assert head > 20 * max(1, sum(1 for rank in ranks if rank == 500))
    # Deterministic under a fixed seed.
    again = zipf_sampler(1000, 1.1, make_rng(7))
    assert [again() for _ in range(4000)] == ranks


def test_zipf_sampler_rejects_negative_skew():
    with pytest.raises(ReproError):
        zipf_sampler(10, -0.1, make_rng(0))


def test_request_trace_skew_targets_hot_keys():
    points = uniform_points(200, dims=2, seed=0)
    trace = request_trace(
        points, 600, lookup_fraction=1.0, range_fraction=0.0,
        insert_fraction=0.0, skew=1.5, seed=3,
    )
    hits = [operation.key for operation in trace]
    assert hits.count(points[0]) > 10 * max(1, hits.count(points[150]))
    # skew=0 stays on the uniform path and the pre-skew trace shape.
    uniform = request_trace(points, 600, skew=0.0, seed=3)
    legacy = request_trace(points, 600, seed=3)
    assert uniform == legacy


# ----------------------------------------------------------------------
# Hotspot detection
# ----------------------------------------------------------------------


def _detector(window_samples=2, hot_share=0.5, min_reads=4):
    registry = MetricsRegistry()
    counters = BucketReadCounters()
    registry.register(READS_SOURCE, counters)
    return registry, counters, HotspotDetector(
        registry,
        window_samples=window_samples,
        hot_share=hot_share,
        min_reads=min_reads,
    )


def test_detector_flags_hot_and_decays():
    _, counters, detector = _detector()
    for _ in range(10):
        counters.inc("ml:a")
    counters.inc("ml:b")
    hot = detector.sample()
    assert "ml:a" in hot and "ml:b" not in hot
    assert detector.share("ml:a") > 0.8
    # Traffic stops: once the window slides past the burst, nothing is
    # hot any more.
    detector.sample()
    assert detector.sample() == frozenset()
    assert detector.window_reads == 0


def test_detector_min_reads_gates_noise():
    _, counters, detector = _detector(min_reads=100)
    for _ in range(10):
        counters.inc("ml:a")
    assert detector.sample() == frozenset()


def test_detector_survives_counter_rollback():
    registry, counters, detector = _detector()
    for _ in range(8):
        counters.inc("ml:a")
    assert "ml:a" in detector.sample()
    registry.reset()  # a phase reset rolls every counter back to zero
    for _ in range(6):
        counters.inc("ml:c")
    # No negative delta: the new-epoch tally counts whole, the old
    # burst ages out of the sliding window one sample later.
    detector.sample()
    assert detector.window_reads >= 6
    hot = detector.sample()
    assert "ml:c" in hot and "ml:a" not in hot
    assert detector.window_reads == 6


# ----------------------------------------------------------------------
# Shortcut table
# ----------------------------------------------------------------------


def test_shortcut_table_lru_eviction():
    table = ShortcutTable(capacity=2)
    table.observe("k1", "p1")
    table.observe("k2", "p2")
    assert table.propose("k1") == "p1"  # k1 is now most recent
    table.observe("k3", "p3")  # evicts k2, the least recent
    assert table.propose("k2") is None
    assert table.propose("k1") == "p1" and table.propose("k3") == "p3"


def test_shortcut_table_generation_invalidation():
    table = ShortcutTable(capacity=4)
    table.observe("k", "p")
    assert "k" in table
    table.bump_generation()
    assert "k" not in table
    assert table.propose("k") is None  # lazily evicted
    assert len(table) == 0
    table.observe("k", "p2")
    assert table.propose("k") == "p2"


def test_shortcut_table_forget_and_bounds():
    with pytest.raises(ReproError):
        ShortcutTable(capacity=0)
    table = ShortcutTable(capacity=4)
    table.observe("k", "p")
    table.forget("k")
    assert table.propose("k") is None


# ----------------------------------------------------------------------
# Replica naming and directory
# ----------------------------------------------------------------------


def test_replica_naming_round_trip():
    key = "ml:0110"
    copies = replica_keys(key, 2)
    assert copies == ["ml:0110#r1", "ml:0110#r2"]
    assert all(is_replica_key(copy) for copy in copies)
    assert not is_replica_key(key)
    assert all(primary_of(copy) == key for copy in copies)
    assert replica_key(key, 3) == "ml:0110#r3"


def test_replica_directory_pick_spreads_and_is_seeded():
    directory = ReplicaDirectory(seed=5)
    assert directory.pick("k") == "k"  # unreplicated keys pass through
    directory.add("k", 2)
    picks = [directory.pick("k") for _ in range(60)]
    assert set(picks) == {"k", "k#r1", "k#r2"}
    again = ReplicaDirectory(seed=5)
    again.add("k", 2)
    assert [again.pick("k") for _ in range(60)] == picks
    assert directory.drop("k") == 2
    assert directory.pick("k") == "k"
    assert directory.drop("k") == 0


# ----------------------------------------------------------------------
# The plane over a raw substrate
# ----------------------------------------------------------------------

#: Aggressive tuning so a handful of reads exercises every path.
FAST = AdaptiveConfig(
    sample_every=8, window_samples=2, hot_share=0.3, min_window_reads=4,
    max_replicas=2, cool_windows=2, shortcut_capacity=16, learn_after=1,
)


def test_plane_promotes_demotes_and_filters_items():
    inner = LocalDht(8)
    plane = AdaptiveDht(inner, FAST)
    plane.put("ml:00", "hot-value")
    plane.put("ml:01", "cold-value")
    for _ in range(16):
        assert plane.get("ml:00") == "hot-value"
    assert plane.replicas.count("ml:00") == 2
    assert plane.adaptive_stats.promotions == 1
    raw_keys = {key for key, _ in inner.items()}
    assert set(replica_keys("ml:00", 2)) <= raw_keys
    # The plane's view hides its private replica copies.
    assert {key for key, _ in plane.items()} == {"ml:00", "ml:01"}

    # Writes refresh the copies synchronously: a replica read after an
    # update must see the new value.
    plane.put("ml:00", "updated")
    values = {plane.get("ml:00") for _ in range(12)}
    assert values == {"updated"}
    assert plane.adaptive_stats.replica_reads > 0

    # Traffic moves elsewhere; after cool_windows cold samples the key
    # decays back to K=0 and the copies are gone.
    for _ in range(40):
        plane.get("ml:01")
    assert plane.replicas.count("ml:00") == 0
    assert plane.adaptive_stats.demotions >= 1
    raw_keys = {key for key, _ in inner.items()}
    assert not any(primary_of(k) == "ml:00" and is_replica_key(k)
                   for k in raw_keys)


def test_plane_learns_shortcuts_and_heals_lost_copies():
    inner = LocalDht(8)
    plane = AdaptiveDht(inner, FAST)
    plane.put("ml:00", "v")
    plane.get("ml:00")  # first routed read learns the owner
    assert plane.shortcuts.propose("ml:00") == inner.peer_of("ml:00")
    plane.get("ml:00")
    assert plane.adaptive_stats.shortcut_hits >= 1

    # Promote, then silently lose one copy: the replica read heals —
    # demote plus a primary answer, never a None.
    for _ in range(16):
        plane.get("ml:00")
    assert plane.replicas.count("ml:00") == 2
    for copy in replica_keys("ml:00", 2):
        inner.remove(copy)
    assert all(plane.get("ml:00") == "v" for _ in range(12))
    assert plane.adaptive_stats.replica_heals >= 1
    # The key may legitimately be re-promoted (it is still hot); any
    # copies back on the substrate must hold the healed value.
    for copy in replica_keys("ml:00", plane.replicas.count("ml:00")):
        assert inner.peek(copy) == "v"


def test_plane_remove_tears_replicas_down():
    inner = LocalDht(8)
    plane = AdaptiveDht(inner, FAST)
    plane.put("ml:00", "v")
    for _ in range(16):
        plane.get("ml:00")
    assert plane.replicas.count("ml:00") == 2
    assert plane.remove("ml:00") == "v"
    assert plane.replicas.count("ml:00") == 0
    assert not any(is_replica_key(key) for key, _ in inner.items())
    assert plane.shortcuts.propose("ml:00") is None


# ----------------------------------------------------------------------
# get_direct across substrates
# ----------------------------------------------------------------------


def test_get_direct_local_semantics_and_metering():
    dht = LocalDht(8)
    dht.put("k", 42)
    owner = dht.peer_of("k")
    before = dht.stats.snapshot()
    assert dht.get_direct(owner, "k") == 42
    after = dht.stats.snapshot()
    assert after["lookups"] == before["lookups"] + 1
    assert after["gets"] == before["gets"] + 1
    # A peer that does not hold the key answers None (a stale shortcut
    # outcome), an unknown peer is unreachable (a dead one).
    other = next(peer for peer in dht.peers() if peer != owner)
    assert dht.get_direct(other, "k") is None
    with pytest.raises(NodeUnreachableError):
        dht.get_direct("no-such-peer", "k")


def test_get_direct_chord_and_retry_wrapper():
    dht = ChordDht.build(4)
    dht.put("ml:demo", "v")
    owner = dht.lookup("ml:demo")
    assert dht.get_direct(owner, "ml:demo") == "v"
    wrapped = RetryingDht(LocalDht(4), attempts=2)
    wrapped.put("k", 1)
    assert wrapped.get_direct(wrapped.peer_of("k"), "k") == 1


# ----------------------------------------------------------------------
# Index integration: config plumbing and answer equivalence
# ----------------------------------------------------------------------


def test_index_config_adaptive_validation_and_none_passthrough():
    with pytest.raises(ReproError):
        IndexConfig(adaptive=42)
    IndexConfig(adaptive=AdaptiveConfig())  # accepted
    dht = LocalDht(4)
    config = IndexConfig(dims=2, split_threshold=10, merge_threshold=5)
    bulk_load(dht, uniform_points(60, dims=2, seed=0), config)
    index = MLightIndex(dht, config)
    # adaptive=None builds no plane: the index talks to the very same
    # substrate object, so the run is bit-equivalent to a pre-adaptive
    # build by construction.
    assert index.adaptive is None
    assert index.dht is dht


def test_adaptive_index_answers_match_baseline():
    points = uniform_points(400, dims=2, seed=7)
    base_config = IndexConfig(
        dims=2, split_threshold=10, merge_threshold=5, cache_capacity=8,
    )
    adaptive_config = replace(
        base_config,
        adaptive=AdaptiveConfig(
            sample_every=16, window_samples=2, hot_share=0.1,
            min_window_reads=8, max_replicas=2, cool_windows=2,
            shortcut_capacity=64, learn_after=1,
        ),
    )
    answers = {}
    for name, config in (("base", base_config), ("adaptive", adaptive_config)):
        dht = LocalDht(8)
        bulk_load(dht, points, config)
        index = MLightIndex(dht, config)
        sample = zipf_sampler(len(points), 1.2, make_rng(5))
        run = [
            index.lookup(points[sample()]).bucket.label
            for _ in range(300)
        ]
        for query in uniform_range_queries(8, 0.05, seed=11):
            result = index.range_query(query)
            run.append(tuple(sorted(record.key for record in result.records)))
        index.check_invariants()
        answers[name] = run
        if name == "adaptive":
            tallies = index.adaptive.adaptive_stats
            assert tallies.promotions > 0
            assert tallies.shortcut_hits > 0
    assert answers["base"] == answers["adaptive"]


# ----------------------------------------------------------------------
# Satellite 4: LeafCache + replication interplay
# ----------------------------------------------------------------------


def test_failed_replica_read_evicts_leaf_cache_hint(monkeypatch):
    adaptive = AdaptiveConfig(
        sample_every=4, window_samples=1, hot_share=0.5,
        min_window_reads=2, max_replicas=1, cool_windows=1000,
        shortcut_capacity=0, learn_after=99,
    )
    config = IndexConfig(
        dims=2, split_threshold=8, merge_threshold=4, cache_capacity=8,
        adaptive=adaptive,
    )
    dht = LocalDht(8)
    points = uniform_points(150, dims=2, seed=1)
    bulk_load(dht, points, config)
    index = MLightIndex(dht, config)
    plane = index.adaptive
    target = points[0]

    # Reads are spread deterministically at the first replica whenever
    # one exists, so the failure below is guaranteed to be a *replica*
    # read, not a lucky primary pick.
    monkeypatch.setattr(
        ReplicaDirectory,
        "pick",
        lambda self, key: replica_key(key, 1) if self.count(key) else key,
    )
    for _ in range(10):
        result = index.lookup(target)
    hot_label = result.bucket.label
    hot_keys = [
        key for key in plane.replicas.keys()
        if plane.inner.get(key) is not None
        and plane.inner.get(key).covers(target)
    ]
    assert len(hot_keys) == 1, "the target's leaf should be promoted"
    hot_key = hot_keys[0]
    assert hot_label in index.cache

    # Kill the replica's location: reads *and* writes of the copy key
    # raise, as they would for a dead peer (promotion against a dead
    # location must abort, not silently "succeed").
    inner = plane.inner
    real_get = type(inner).get.__get__(inner)
    real_put = type(inner).put.__get__(inner)
    dead = replica_key(hot_key, 1)

    def failing_get(key):
        if key == dead:
            raise NodeUnreachableError(dead)
        return real_get(key)

    def failing_put(key, value, *, records_moved=0):
        if key == dead:
            raise NodeUnreachableError(dead)
        return real_put(key, value, records_moved=records_moved)

    monkeypatch.setattr(inner, "get", failing_get)
    monkeypatch.setattr(inner, "put", failing_put)
    forgotten = []
    real_forget = LeafCache.forget

    def spying_forget(self, label):
        forgotten.append(label)
        return real_forget(self, label)

    monkeypatch.setattr(LeafCache, "forget", spying_forget)

    hits_before = dht.stats.snapshot()["cache_hits"]
    recovered = index.lookup(target)

    # The hinted probe hit the dead replica: the hint was evicted
    # (probe_failed), the key demoted, and the binary-search fallback
    # answered from the live primary — correct result, no cache hit.
    assert recovered.bucket.covers(target)
    assert hot_label in forgotten
    assert dht.stats.snapshot()["cache_hits"] == hits_before
    assert recovered.lookups > 1
    assert plane.replicas.count(hot_key) == 0
    assert plane.adaptive_stats.demotions >= 1
    # The recovery lookup re-observed the live leaf; the next lookup is
    # one cache-hinted probe against the primary again.
    follow_up = index.lookup(target)
    assert follow_up.lookups == 1
    assert dht.stats.snapshot()["cache_hits"] == hits_before + 1


def test_merge_tears_down_and_rehomes_replicas():
    adaptive = AdaptiveConfig(
        sample_every=4, window_samples=1, hot_share=0.4,
        min_window_reads=2, max_replicas=2, cool_windows=1000,
        shortcut_capacity=8, learn_after=1,
    )
    config = IndexConfig(
        dims=2, split_threshold=8, merge_threshold=6, cache_capacity=8,
        adaptive=adaptive,
    )
    dht = LocalDht(8)
    points = uniform_points(120, dims=2, seed=3)
    bulk_load(dht, points, config)
    index = MLightIndex(dht, config)
    plane = index.adaptive
    before = index.tree_size()

    target = points[0]
    for _ in range(10):
        index.lookup(target)
    assert plane.replicas.keys(), "skewed reads should promote a leaf"

    def raw_replica_keys():
        return {
            key for key, _ in plane.inner.items() if is_replica_key(key)
        }

    assert raw_replica_keys()

    # Delete everything: merges remove dead bucket keys (replica
    # teardown via the remove intercept) and rewrite each surviving
    # sibling in place (replica refresh via rewrite_local — Theorem 5
    # re-homes exactly one key per merge).
    for point in points:
        index.delete(point)
    index.check_invariants()
    assert index.tree_size() < before

    # No orphans and no leaks: every copy still on the substrate is
    # exactly accounted for by the directory.
    expected = set()
    for key in plane.replicas.keys():
        expected.update(replica_keys(key, plane.replicas.count(key)))
    assert raw_replica_keys() == expected

    # Whatever remains replicated still answers coherently.
    assert index.lookup(target).bucket.covers(target)


# ----------------------------------------------------------------------
# E13 experiment plumbing
# ----------------------------------------------------------------------


def test_skew_experiment_smoke():
    from repro.experiments import skew_experiment

    points = uniform_points(400, dims=2, seed=0)
    config = IndexConfig(dims=2, split_threshold=20, merge_threshold=10)
    samples = skew_experiment.run_skew_experiment(
        points, config, n_peers=4, n_ops=400, qps=0.5,
    )
    baseline, adaptive = samples
    assert (baseline.mode, adaptive.mode) == ("baseline", "adaptive")
    assert baseline.answers_digest == adaptive.answers_digest
    assert baseline.recall == 1.0 and adaptive.recall == 1.0
    assert baseline.measured == adaptive.measured > 0
    rendered = skew_experiment.render(samples)
    assert "E13" in rendered and "adaptive" in rendered
