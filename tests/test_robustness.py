"""Robustness of the headline conclusions across seeds and workloads.

The figure benchmarks assert shapes for one seed; these tests re-check
the orderings for several independent dataset/workload seeds at reduced
scale, guarding against lucky-seed conclusions.
"""

import math

import pytest

from repro.common.config import IndexConfig
from repro.datasets.northeast import northeast_surrogate
from repro.experiments import fig5, fig7
from repro.experiments.harness import build_index
from repro.workloads.queries import point_queries


@pytest.mark.parametrize("seed", [101, 202, 303])
class TestSeedRobustness:
    def test_fig5_ordering_holds(self, seed):
        config = IndexConfig(
            dims=2, max_depth=24, split_threshold=25, merge_threshold=12
        )
        points = northeast_surrogate(2000, seed=seed)
        series = fig5.run_datasize_sweep(points, config, samples=2)
        by_name = {entry.scheme: entry for entry in series}
        assert (
            by_name["mlight"].lookups[-1]
            < by_name["pht"].lookups[-1]
            < by_name["dst"].lookups[-1]
        )
        assert (
            by_name["mlight"].records_moved[-1]
            < by_name["pht"].records_moved[-1]
            < by_name["dst"].records_moved[-1]
        )

    def test_fig7_ordering_holds(self, seed):
        config = IndexConfig(
            dims=2, max_depth=24, split_threshold=25, merge_threshold=12
        )
        points = northeast_surrogate(2000, seed=seed)
        series = fig7.run_rangequery_experiment(
            points, config, spans=(0.1, 0.4), queries_per_span=4,
            seed=seed,
        )
        by_name = {entry.variant: entry for entry in series}
        for position in range(2):
            assert (
                by_name["mlight-basic"].bandwidth[position]
                < by_name["pht"].bandwidth[position]
                < by_name["dst"].bandwidth[position]
            )
            assert (
                by_name["mlight-parallel-4"].latency[position]
                <= by_name["mlight-parallel-2"].latency[position]
                <= by_name["mlight-basic"].latency[position]
            )


class TestComplexityGuards:
    """Quantitative regression guards on the core asymptotics."""

    def test_lookup_probe_bound_on_real_data(self):
        """Binary search over D+1 candidates: worst case stays within
        a small constant of ceil(log2(D+1))."""
        config = IndexConfig(
            dims=2, max_depth=28, split_threshold=25, merge_threshold=12
        )
        index = build_index("mlight", config)
        points = northeast_surrogate(5000, seed=404)
        for point in points:
            index.insert(point)
        bound = math.ceil(math.log2(config.max_depth + 1)) + 3
        worst = max(
            index.lookup(key).lookups
            for key in point_queries(points, 200, seed=1)
        )
        assert worst <= bound

    def test_maintenance_cost_amortises_constant(self):
        """Per-insert maintenance (beyond the lookup) is O(1) amortised:
        doubling the data roughly doubles total cost."""
        config = IndexConfig(
            dims=2, max_depth=24, split_threshold=25, merge_threshold=12
        )
        points = northeast_surrogate(8000, seed=505)

        def total_cost(n):
            index = build_index("mlight", config)
            for point in points[:n]:
                index.insert(point)
            return index.dht.stats.lookups

        half = total_cost(4000)
        full = total_cost(8000)
        assert full < 2.6 * half  # superlinear blow-up would trip this

    def test_range_query_cost_proportional_to_answer(self):
        """Bandwidth scales with the buckets the answer spans, not the
        tree size: output-sensitive querying."""
        config = IndexConfig(
            dims=2, max_depth=24, split_threshold=25, merge_threshold=12
        )
        index = build_index("mlight", config)
        points = northeast_surrogate(8000, seed=606)
        for point in points:
            index.insert(point)
        tree = index.tree_size()
        from repro.common.geometry import Region

        tiny = index.range_query(Region((0.47, 0.44), (0.49, 0.46)))
        assert tiny.lookups < tree / 10
