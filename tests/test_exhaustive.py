"""Exhaustive verification over *every* small space kd-tree.

Random trees (tests elsewhere) sample the space; here we enumerate all
full binary trees up to a leaf budget (Catalan numbers: 1, 1, 2, 5, 14,
42 trees for 1..6 leaves) and check, for each tree:

* the naming bijection (Theorems 2/4) — exactly, not probabilistically;
* lookup against the covering-leaf oracle for a grid of probe points;
* range queries against brute force for a grid of rectangles, in both
  basic and parallel modes.

If any of the label-algebra or engine logic had an edge case on some
tree shape (lopsided chains, complete trees, single leaves), this finds
it deterministically.
"""

import itertools

import pytest

from repro.common.geometry import Region, region_of_label
from repro.common.labels import root_label
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key
from repro.core.lookup import lookup_point
from repro.core.naming import naming_function
from repro.core.rangequery import RangeQueryEngine
from repro.core.records import Record
from repro.dht.localhash import LocalDht
from tests.conftest import internal_nodes_of


def all_trees(dims: int, max_leaves: int, max_depth: int):
    """Yield every leaf set reachable by splitting up to the budget."""
    seen: set[frozenset] = set()
    frontier = [frozenset([root_label(dims)])]
    while frontier:
        tree = frontier.pop()
        if tree in seen:
            continue
        seen.add(tree)
        if len(tree) >= max_leaves:
            continue
        for leaf in tree:
            if len(leaf) - dims - 1 >= max_depth:
                continue
            split = (tree - {leaf}) | {leaf + "0", leaf + "1"}
            if split not in seen:
                frontier.append(split)
    return [sorted(tree) for tree in sorted(seen, key=sorted)]


def materialize(leaves, dims, points):
    """Buckets on a LocalDht, with *points* distributed into cells."""
    dht = LocalDht(8)
    regions = {leaf: region_of_label(leaf, dims) for leaf in leaves}
    buckets = {leaf: LeafBucket(leaf, dims) for leaf in leaves}
    for point in points:
        for leaf, region in regions.items():
            if region.contains_point(point):
                buckets[leaf].add(Record(point))
                break
    for leaf, bucket in buckets.items():
        dht.put(bucket_key(naming_function(leaf, dims)), bucket)
    return dht


def grid_points(dims: int, per_dim: int):
    axis = [(i + 0.37) / per_dim for i in range(per_dim)]
    return list(itertools.product(axis, repeat=dims))


class TestExhaustive2D:
    # A 6-leaf tree can be a depth-5 chain, so the depth cap must be 5
    # for the enumeration to be exactly Catalan.
    TREES = all_trees(2, max_leaves=6, max_depth=5)

    def test_enumeration_is_catalan(self):
        by_size = {}
        for tree in self.TREES:
            by_size[len(tree)] = by_size.get(len(tree), 0) + 1
        # Catalan(k-1) trees with k leaves (depth cap not binding here).
        assert by_size[1] == 1
        assert by_size[2] == 1
        assert by_size[3] == 2
        assert by_size[4] == 5
        assert by_size[5] == 14
        assert by_size[6] == 42

    def test_bijection_on_every_tree(self):
        for leaves in self.TREES:
            names = {naming_function(leaf, 2) for leaf in leaves}
            assert len(names) == len(leaves)
            assert names == internal_nodes_of(leaves, 2)

    def test_lookup_on_every_tree(self):
        probes = grid_points(2, 5)
        for leaves in self.TREES:
            dht = materialize(leaves, 2, [])
            for point in probes:
                found = lookup_point(dht, point, 2, 6)
                assert found.bucket.covers(point), (leaves, point)

    @pytest.mark.parametrize("lookahead", [1, 2])
    def test_range_queries_on_every_tree(self, lookahead):
        points = grid_points(2, 6)
        corners = [0.0, 0.3, 0.55, 1.0]
        queries = [
            Region((x1, y1), (x2, y2))
            for x1, x2 in itertools.combinations(corners, 2)
            for y1, y2 in itertools.combinations(corners, 2)
        ]
        for leaves in self.TREES:
            dht = materialize(leaves, 2, points)
            engine = RangeQueryEngine(dht, 2, 6)
            for query in queries:
                got = sorted(
                    record.key
                    for record in engine.query(
                        query, lookahead=lookahead
                    ).records
                )
                expected = sorted(
                    point
                    for point in points
                    if query.contains_point_closed(point)
                )
                assert got == expected, (leaves, query)


class TestExhaustive1D:
    TREES = all_trees(1, max_leaves=7, max_depth=6)

    def test_bijection_on_every_tree(self):
        for leaves in self.TREES:
            names = {naming_function(leaf, 1) for leaf in leaves}
            assert len(names) == len(leaves)
            assert names == internal_nodes_of(leaves, 1)

    def test_lookup_and_ranges_on_every_tree(self):
        points = [((i + 0.5) / 16,) for i in range(16)]
        queries = [
            Region((low / 8,), (high / 8,))
            for low, high in itertools.combinations(range(9), 2)
        ]
        for leaves in self.TREES:
            dht = materialize(leaves, 1, points)
            engine = RangeQueryEngine(dht, 1, 7)
            for point in points[::3]:
                assert lookup_point(dht, point, 1, 7).bucket.covers(point)
            for query in queries[::4]:
                got = sorted(
                    record.key for record in engine.query(query).records
                )
                expected = sorted(
                    p for p in points if query.contains_point_closed(p)
                )
                assert got == expected, (leaves, query)


class TestExhaustive3D:
    TREES = all_trees(3, max_leaves=5, max_depth=4)

    def test_bijection_on_every_tree(self):
        for leaves in self.TREES:
            names = {naming_function(leaf, 3) for leaf in leaves}
            assert len(names) == len(leaves)
            assert names == internal_nodes_of(leaves, 3)

    def test_range_queries_on_every_tree(self):
        points = grid_points(3, 3)
        queries = [
            Region((0.0, 0.0, 0.0), (0.5, 0.5, 0.5)),
            Region((0.2, 0.0, 0.4), (0.9, 0.6, 1.0)),
            Region((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
            Region((0.5, 0.5, 0.5), (0.5, 0.5, 0.5)),
        ]
        for leaves in self.TREES:
            dht = materialize(leaves, 3, points)
            engine = RangeQueryEngine(dht, 3, 6)
            for query in queries:
                got = sorted(
                    record.key for record in engine.query(query).records
                )
                expected = sorted(
                    p for p in points if query.contains_point_closed(p)
                )
                assert got == expected, (leaves, query)
