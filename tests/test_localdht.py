"""Tests for the oracle DHT and the facade's metering semantics."""

import pytest

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.localhash import LocalDht


class TestOwnership:
    def test_peer_of_deterministic(self):
        first = LocalDht(16)
        second = LocalDht(16)
        for index in range(50):
            key = f"key-{index}"
            assert first.peer_of(key) == second.peer_of(key)

    def test_keys_spread_over_peers(self):
        dht = LocalDht(16)
        owners = {dht.peer_of(f"key-{i}") for i in range(500)}
        assert len(owners) >= 12  # most peers receive something

    def test_single_peer_owns_everything(self):
        dht = LocalDht(1)
        assert dht.peer_of("anything") == "peer-0000"

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            LocalDht(0)
        with pytest.raises(ReproError):
            LocalDht(4, virtual_nodes=0)

    def test_virtual_nodes_even_out_arcs(self):
        """With vnodes, per-peer key counts concentrate near the mean."""
        keys = [f"key-{i}" for i in range(4000)]

        def spread(dht):
            counts = {}
            for key in keys:
                owner = dht.peer_of(key)
                counts[owner] = counts.get(owner, 0) + 1
            loads = [counts.get(p, 0) for p in dht.peers()]
            mean = sum(loads) / len(loads)
            return (
                sum((x - mean) ** 2 for x in loads) / len(loads) / mean**2
            )

        plain = spread(LocalDht(32, virtual_nodes=1))
        virtual = spread(LocalDht(32, virtual_nodes=64))
        assert virtual < plain


class TestOperationsAndMetering:
    def test_put_get_roundtrip(self):
        dht = LocalDht(8)
        dht.put("k", {"v": 1})
        assert dht.get("k") == {"v": 1}

    def test_get_missing_returns_none(self):
        assert LocalDht(8).get("missing") is None

    def test_remove(self):
        dht = LocalDht(8)
        dht.put("k", 1)
        assert dht.remove("k") == 1
        with pytest.raises(DhtKeyError):
            dht.remove("k")

    def test_every_operation_counts_one_lookup(self):
        dht = LocalDht(8)
        dht.lookup("a")
        dht.put("a", 1)
        dht.get("a")
        dht.remove("a")
        assert dht.stats.lookups == 4
        assert dht.stats.puts == 1
        assert dht.stats.gets == 1
        assert dht.stats.removes == 1

    def test_records_moved_accounting(self):
        dht = LocalDht(8)
        dht.put("a", "bucket", records_moved=7)
        dht.put("b", "bucket", records_moved=0)
        dht.remove("a", records_moved=3)
        assert dht.stats.records_moved == 10

    def test_rewrite_local_is_free(self):
        dht = LocalDht(8)
        dht.put("a", 1)
        before = dht.stats.snapshot()
        dht.rewrite_local("a", 2)
        assert dht.stats.snapshot() == before
        assert dht.peek("a") == 2

    def test_rewrite_local_requires_existing_key(self):
        dht = LocalDht(8)
        with pytest.raises(DhtKeyError):
            dht.rewrite_local("ghost", 1)

    def test_peek_and_items_are_free(self):
        dht = LocalDht(8)
        dht.put("a", 1)
        before = dht.stats.snapshot()
        assert dht.peek("a") == 1
        assert dict(dht.items()) == {"a": 1}
        assert dht.stats.snapshot() == before

    def test_stats_reset(self):
        dht = LocalDht(8)
        dht.put("a", 1)
        dht.stats.reset()
        assert dht.stats.snapshot()["lookups"] == 0

    def test_value_stored_on_responsible_peer(self):
        dht = LocalDht(8)
        dht.put("k", "value")
        owner = dht.peer_of("k")
        assert dht.lookup("k") == owner

    def test_load_by_peer_with_weights(self):
        dht = LocalDht(4)
        dht.put("a", [1, 2, 3])
        dht.put("b", [1])
        loads = dht.load_by_peer(weigh=len)
        assert sum(loads.values()) == 4
        assert set(loads) == set(dht.peers())
