"""All three indexes coexisting on one shared DHT.

The paper motivates over-DHT indexing with shared public substrates
(OpenDHT): multiple applications — here, all three index structures —
store into the *same* DHT.  Key namespaces (``ml:``, ``pht:``,
``dst:``, ``naive:``) must keep them fully isolated.
"""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.baselines.dst import DstIndex
from repro.baselines.pht import PhtIndex
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


@pytest.fixture()
def shared_world():
    config = IndexConfig(
        dims=2, max_depth=14, split_threshold=10, merge_threshold=5
    )
    dht = LocalDht(16)
    indexes = {
        "mlight": MLightIndex(dht, config),
        "pht": PhtIndex(dht, config),
        "dst": DstIndex(dht, config),
    }
    rng = random.Random(7)
    # Different datasets per index — cross-talk would corrupt answers.
    datasets = {
        name: [(rng.random(), rng.random()) for _ in range(150)]
        for name in indexes
    }
    for name, index in indexes.items():
        for point in datasets[name]:
            index.insert(point, value=name)
    return dht, indexes, datasets


class TestSharedSubstrate:
    def test_disjoint_key_namespaces(self, shared_world):
        dht, _, _ = shared_world
        prefixes = {key.split(":", 1)[0] for key, _ in dht.items()}
        assert prefixes == {"ml", "pht", "dst"}

    def test_each_index_answers_only_its_own_data(self, shared_world):
        _, indexes, datasets = shared_world
        query = Region((0.1, 0.1), (0.8, 0.8))
        for name, index in indexes.items():
            result = index.range_query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(datasets[name], query)
            )
            assert all(r.value == name for r in result.records)

    def test_deleting_from_one_leaves_others_intact(self, shared_world):
        _, indexes, datasets = shared_world
        for point in datasets["mlight"][:100]:
            assert indexes["mlight"].delete(point)
        assert indexes["pht"].total_records() == 150
        assert indexes["dst"].total_records() == 150
        assert indexes["mlight"].total_records() == 50
        indexes["mlight"].check_invariants()
