"""Tests for the unified result/config API.

Frozen result dataclasses built in one place, ``Record.coerce`` as the
single normalisation rule for bulk entry points, region coercion at the
query entry points, and config-driven split-strategy selection.
"""

import dataclasses
import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import InvalidRegionError, ReproError
from repro.common.geometry import Region, as_region
from repro.core.bucket import LeafBucket
from repro.core.index import MLightIndex, build_strategy
from repro.core.records import Record
from repro.core.results import (
    KnnResult,
    LookupResult,
    Neighbor,
    RangeQueryBuilder,
    RangeQueryResult,
)
from repro.core.split import DataAwareSplit, ThresholdSplit
from repro.dht.localhash import LocalDht


def make_index(**overrides):
    defaults = dict(
        dims=2, max_depth=16, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    return MLightIndex(LocalDht(16), IndexConfig(**defaults))


class TestFrozenResults:
    def test_lookup_result_is_frozen(self):
        result = LookupResult(LeafBucket("001", 2), 3, 3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.lookups = 99

    def test_range_result_is_frozen(self):
        result = RangeQueryResult()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.rounds = 99

    def test_knn_result_is_frozen(self):
        result = KnnResult((), 0, 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.neighbors = ()
        neighbor = Neighbor(Record.make((0.1, 0.2)), 0.5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            neighbor.distance = 0.0

    def test_results_share_cost_field_names(self):
        for cls in (LookupResult, RangeQueryResult, KnnResult):
            fields = {field.name for field in dataclasses.fields(cls)}
            assert {"lookups", "rounds"} <= fields

    def test_builder_is_the_construction_site(self):
        builder = RangeQueryBuilder()
        builder.lookups = 4
        builder.rounds = 2
        assert builder.collect("0010", [Record.make((0.1, 0.1))])
        assert not builder.collect("0010", [])  # revisit: deduplicated
        result = builder.build()
        assert isinstance(result, RangeQueryResult)
        assert result.lookups == 4 and result.rounds == 2
        assert result.visited_leaves == frozenset({"0010"})
        assert len(result.records) == 1

    def test_live_query_returns_frozen_result(self):
        index = make_index()
        rng = random.Random(0)
        for _ in range(50):
            index.insert((rng.random(), rng.random()))
        result = index.range_query(Region((0.0, 0.0), (0.5, 0.5)))
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.records = ()


class TestRegionCoercion:
    def test_range_query_accepts_plain_tuple(self):
        index = make_index()
        rng = random.Random(1)
        for _ in range(80):
            index.insert((rng.random(), rng.random()))
        region = Region((0.2, 0.2), (0.7, 0.7))
        via_region = index.range_query(region)
        via_tuple = index.range_query(((0.2, 0.2), (0.7, 0.7)))
        assert sorted(r.key for r in via_region.records) == sorted(
            r.key for r in via_tuple.records
        )

    def test_as_region_passthrough(self):
        region = Region((0.1, 0.1), (0.9, 0.9))
        assert as_region(region) is region

    def test_as_region_accepts_lists(self):
        region = as_region(([0.1, 0.2], [0.3, 0.4]))
        assert region == Region((0.1, 0.2), (0.3, 0.4))

    def test_as_region_rejects_junk(self):
        with pytest.raises(InvalidRegionError):
            as_region("not a region")
        with pytest.raises(InvalidRegionError):
            as_region((0.1, 0.2))  # a point, not a (lows, highs) pair


class TestRecordCoercion:
    def test_record_passthrough(self):
        record = Record.make((0.1, 0.2), "x")
        coerced = Record.coerce(record, dims=2)
        assert coerced.key == (0.1, 0.2) and coerced.value == "x"

    def test_pair_form(self):
        coerced = Record.coerce(((0.1, 0.2), "payload"), dims=2)
        assert coerced.key == (0.1, 0.2) and coerced.value == "payload"

    def test_bare_key_form(self):
        coerced = Record.coerce([0.1, 0.2], dims=2)
        assert coerced.key == (0.1, 0.2) and coerced.value is None

    def test_junk_raises_type_error(self):
        with pytest.raises(TypeError):
            Record.coerce(42)
        with pytest.raises(TypeError):
            Record.coerce("0.1,0.2")

    def test_insert_many_accepts_all_spellings(self):
        index = make_index()
        count = index.insert_many([
            Record.make((0.1, 0.1), "a"),
            ((0.2, 0.2), "b"),
            (0.3, 0.3),
        ])
        assert count == 3
        assert index.total_records() == 3
        assert index.exact_match((0.2, 0.2))[0].value == "b"


class TestConfigStrategy:
    def test_default_is_threshold(self):
        config = IndexConfig(dims=2)
        assert isinstance(build_strategy(config), ThresholdSplit)
        assert isinstance(
            MLightIndex(LocalDht(8), config).strategy, ThresholdSplit
        )

    def test_data_aware_selected_by_config(self):
        config = IndexConfig(dims=2, strategy="data-aware")
        index = MLightIndex(LocalDht(8), config)
        assert isinstance(index.strategy, DataAwareSplit)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            IndexConfig(dims=2, strategy="psychic")

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(ReproError):
            IndexConfig(dims=2, cache_capacity=-1)

    def test_explicit_strategy_instance_still_wins(self):
        strategy = DataAwareSplit(32)
        index = MLightIndex(LocalDht(8), IndexConfig(dims=2), strategy)
        assert index.strategy is strategy

    def test_deprecated_alias_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning):
            index = MLightIndex.with_data_aware_splitting(
                LocalDht(8), IndexConfig(dims=2)
            )
        assert isinstance(index.strategy, DataAwareSplit)
        assert index.config.strategy == "data-aware"

    def test_cache_disabled_by_default(self):
        index = make_index()
        assert index.cache is None

    def test_cache_built_from_config(self):
        index = make_index(cache_capacity=32)
        assert index.cache is not None
        assert index.cache.capacity == 32


class TestStatsSurface:
    def test_snapshot_carries_cache_counters(self):
        dht = LocalDht(8)
        snapshot = dht.stats.snapshot()
        for key in ("cache_hits", "cache_stale", "cache_misses"):
            assert key in snapshot and snapshot[key] == 0

    def test_reset_zeroes_cache_counters(self):
        dht = LocalDht(8)
        dht.stats.cache_hits = 5
        dht.stats.cache_stale = 2
        dht.stats.cache_misses = 7
        dht.stats.reset()
        assert dht.stats.snapshot()["cache_hits"] == 0
        assert dht.stats.snapshot()["cache_stale"] == 0
        assert dht.stats.snapshot()["cache_misses"] == 0
